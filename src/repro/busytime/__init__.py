"""Busy-time scheduling: GREEDYTRACKING, FIRSTFIT, 2-approximations, preemption."""

from .bounds import (
    best_lower_bound,
    demand_profile_lower_bound,
    mass_lower_bound,
    span_lower_bound,
)
from .demand_profile import (
    DemandProfile,
    compute_demand_profile,
    pad_to_multiple_of_g,
)
from .exact import (
    brute_force_busy_time_interval,
    exact_busy_time_flexible,
    exact_busy_time_interval,
)
from .firstfit import first_fit, fits_in_bundle
from .flexible import INTERVAL_ALGORITHMS, schedule_flexible
from .greedy_tracking import extract_tracks, greedy_tracking, proper_witness_set
from .local_search import improve_schedule
from .maximization import greedy_throughput, maximize_throughput_exact
from .kumar_rudra import assign_levels, kumar_rudra, two_color_level
from .preemptive import (
    PreemptivePiece,
    PreemptiveSchedule,
    greedy_unbounded_preemptive,
    preemptive_bounded,
)
from .stats import ScheduleStats, compute_stats
from .span_search import earliest_fit_span, span_search_exact
from .schedule import Bundle, BusyTimeSchedule, BusyVerificationError
from .special_cases import clique_greedy, proper_clique_exact, proper_greedy
from .tracks import is_track, longest_track, track_length
from .two_approx import chain_peeling_two_approx, extract_chain
from .online import (
    arrival_order,
    nested_adversarial_instance,
    online_best_fit,
    online_first_fit,
)
from .unbounded import UnboundedPlacement, opt_infinity, pin_instance
from .widths import (
    WidthBundle,
    WidthInstance,
    WidthJob,
    WidthSchedule,
    first_fit_with_widths,
    khandekar_narrow_wide,
    width_mass_lower_bound,
    width_profile_lower_bound,
)

__all__ = [
    "Bundle",
    "BusyTimeSchedule",
    "BusyVerificationError",
    "DemandProfile",
    "INTERVAL_ALGORITHMS",
    "PreemptivePiece",
    "ScheduleStats",
    "PreemptiveSchedule",
    "UnboundedPlacement",
    "WidthBundle",
    "WidthInstance",
    "WidthJob",
    "WidthSchedule",
    "arrival_order",
    "assign_levels",
    "best_lower_bound",
    "brute_force_busy_time_interval",
    "chain_peeling_two_approx",
    "clique_greedy",
    "compute_demand_profile",
    "compute_stats",
    "demand_profile_lower_bound",
    "earliest_fit_span",
    "exact_busy_time_flexible",
    "exact_busy_time_interval",
    "extract_chain",
    "extract_tracks",
    "first_fit",
    "fits_in_bundle",
    "greedy_throughput",
    "improve_schedule",
    "greedy_tracking",
    "greedy_unbounded_preemptive",
    "is_track",
    "kumar_rudra",
    "longest_track",
    "first_fit_with_widths",
    "khandekar_narrow_wide",
    "mass_lower_bound",
    "maximize_throughput_exact",
    "nested_adversarial_instance",
    "online_best_fit",
    "online_first_fit",
    "opt_infinity",
    "pad_to_multiple_of_g",
    "pin_instance",
    "preemptive_bounded",
    "proper_clique_exact",
    "proper_greedy",
    "proper_witness_set",
    "schedule_flexible",
    "span_search_exact",
    "span_lower_bound",
    "track_length",
    "width_mass_lower_bound",
    "width_profile_lower_bound",
    "two_color_level",
]
