"""Tests for the combinatorial OPT_inf search (repro.busytime.span_search)."""

import pytest

from repro.busytime import (
    earliest_fit_span,
    opt_infinity,
    pin_instance,
    span_search_exact,
)
from repro.core import Instance, span
from repro.instances import random_flexible_instance


class TestEarliestFit:
    def test_upper_bounds_opt(self, rng):
        for _ in range(10):
            inst = random_flexible_instance(6, 10, rng=rng)
            upper, starts = earliest_fit_span(inst)
            assert upper >= opt_infinity(inst).busy_time - 1e-9
            pinned = pin_instance(inst, starts)
            assert span(j.window for j in pinned.jobs) == pytest.approx(upper)

    def test_empty(self):
        value, starts = earliest_fit_span(Instance(tuple()))
        assert value == 0.0
        assert starts == {}


class TestSpanSearch:
    def test_matches_milp(self, rng):
        """The two independent exact solvers agree."""
        for _ in range(25):
            n = int(rng.integers(1, 9))
            T = int(rng.integers(2, 13))
            inst = random_flexible_instance(n, T, rng=rng)
            value, starts = span_search_exact(inst)
            assert value == pytest.approx(
                opt_infinity(inst).busy_time, abs=1e-9
            )

    def test_starts_realize_value(self, rng):
        for _ in range(12):
            inst = random_flexible_instance(6, 10, rng=rng)
            value, starts = span_search_exact(inst)
            pinned = pin_instance(inst, starts)
            assert span(j.window for j in pinned.jobs) == pytest.approx(
                value, abs=1e-9
            )

    def test_starts_within_windows(self, rng):
        inst = random_flexible_instance(7, 11, rng=rng)
        _, starts = span_search_exact(inst)
        for jid, s in starts.items():
            assert inst.job_by_id(jid).can_start_at(s)

    def test_empty(self):
        assert span_search_exact(Instance(tuple())) == (0.0, {})

    def test_single_job(self):
        inst = Instance.from_tuples([(0, 5, 3)])
        value, starts = span_search_exact(inst)
        assert value == pytest.approx(3.0)

    def test_consolidation(self):
        inst = Instance.from_tuples([(0, 6, 2), (0, 6, 2), (2, 8, 2)])
        value, _ = span_search_exact(inst)
        assert value == pytest.approx(2.0)

    def test_forced_split(self):
        # two rigid jobs far apart plus a flexible bridge that fits either
        inst = Instance.from_tuples([(0, 2, 2), (8, 10, 2), (0, 10, 2)])
        value, starts = span_search_exact(inst)
        assert value == pytest.approx(4.0)

    def test_guard(self, rng):
        inst = random_flexible_instance(20, 25, rng=rng)
        with pytest.raises(ValueError, match="limited"):
            span_search_exact(inst)

    def test_rejects_non_integral(self):
        inst = Instance.from_intervals([(0.0, 1.5)])
        with pytest.raises(ValueError):
            span_search_exact(inst)
