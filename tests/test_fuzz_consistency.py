"""Seeded fuzz sweeps: cross-algorithm consistency on medium instances.

Unlike the exact-baseline tests (small n), these sweeps run every algorithm
on medium-size random instances and check all *relative* invariants that
must hold regardless of the optimum:

* every schedule verifies;
* every cost respects every lower bound;
* guarantee ordering: nothing exceeds its proven factor times the profile;
* monotonicity in g (more capacity never hurts any of our deterministic
  algorithms' bounds relative to the profile);
* pipeline consistency between direct and flexible entry points.
"""

import numpy as np
import pytest

from repro.activetime import minimal_feasible_schedule, round_active_time
from repro.busytime import (
    best_lower_bound,
    chain_peeling_two_approx,
    first_fit,
    greedy_tracking,
    greedy_unbounded_preemptive,
    kumar_rudra,
    mass_lower_bound,
    opt_infinity,
    preemptive_bounded,
    schedule_flexible,
)
from repro.instances import (
    random_active_time_instance,
    random_flexible_instance,
    random_interval_instance,
)

SEEDS = [11, 23, 47, 89, 131]


@pytest.mark.parametrize("seed", SEEDS)
def test_interval_fuzz(seed):
    rng = np.random.default_rng(seed)
    for _ in range(4):
        n = int(rng.integers(10, 40))
        g = int(rng.integers(1, 6))
        inst = random_interval_instance(n, 1.5 * n, rng=rng)
        lb = best_lower_bound(inst, g)
        for fn, factor in (
            (first_fit, 4),
            (greedy_tracking, 3),
            (chain_peeling_two_approx, 2),
            (kumar_rudra, 2),
        ):
            s = fn(inst, g)
            s.verify()
            assert lb - 1e-6 <= s.total_busy_time <= factor * lb + 1e-6


@pytest.mark.parametrize("seed", SEEDS)
def test_active_time_fuzz(seed):
    rng = np.random.default_rng(seed)
    for _ in range(3):
        n = int(rng.integers(8, 20))
        T = int(rng.integers(10, 24))
        g = int(rng.integers(1, 5))
        inst = random_active_time_instance(n, T, rng=rng)
        try:
            sol = round_active_time(inst, g, strict=True)
        except RuntimeError:
            continue
        sol.schedule.verify()
        assert sol.guarantee_holds
        assert sol.repair_slots == []
        mf = minimal_feasible_schedule(inst, g)
        mf.verify()
        # both are feasible solutions of the same instance: each at least
        # the LP bound
        assert mf.cost >= sol.lp_objective - 1e-6
        assert sol.cost >= sol.lp_objective - 1e-6


@pytest.mark.parametrize("seed", SEEDS)
def test_flexible_fuzz(seed):
    rng = np.random.default_rng(seed)
    for _ in range(3):
        n = int(rng.integers(8, 25))
        T = n + int(rng.integers(5, 15))
        g = int(rng.integers(1, 5))
        inst = random_flexible_instance(n, T, rng=rng)
        placement = opt_infinity(inst)
        pre_inf = greedy_unbounded_preemptive(inst)
        pre_inf.verify()
        pre_g = preemptive_bounded(inst, g)
        pre_g.verify()
        s = schedule_flexible(inst, g)
        s.verify()
        lower = max(placement.busy_time, mass_lower_bound(inst, g))
        # the chain of models: preemptive-inf <= nonpreemptive-inf <= ...
        assert pre_inf.total_busy_time <= placement.busy_time + 1e-6
        assert pre_inf.total_busy_time <= pre_g.total_busy_time + 1e-6
        assert placement.busy_time <= s.total_busy_time + 1e-6
        assert s.total_busy_time <= 3 * lower + 1e-6
        assert pre_g.total_busy_time <= 2 * max(
            pre_inf.total_busy_time, mass_lower_bound(inst, g)
        ) + 1e-6


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_monotone_in_g_fuzz(seed):
    """Profile-relative cost can fluctuate, but absolute cost of each
    deterministic algorithm never increases when capacity doubles."""
    rng = np.random.default_rng(seed)
    inst = random_interval_instance(25, 40.0, rng=rng)
    for fn in (first_fit, greedy_tracking, chain_peeling_two_approx):
        costs = [fn(inst, g).total_busy_time for g in (1, 2, 4, 8, 16)]
        # allow tiny numerical jitter between adjacent capacities
        for a, b in zip(costs, costs[1:]):
            assert b <= a + 1e-6
