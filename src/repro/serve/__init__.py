"""`repro.serve` — dependency-free HTTP/JSONL serving over the batch engine.

* :mod:`~repro.serve.server` — the asyncio HTTP/1.1 front end
  (``GET /algos``, ``GET /healthz``, ``POST /solve``, ``POST /batch``)
  over one shared runner + result cache: one event loop multiplexes
  thousands of keep-alive connections, each ``/batch`` streams behind a
  bounded backpressure buffer, and ``/solve`` leases workers at urgent
  priority.
* :mod:`~repro.serve.client` — a persistent-connection http.client
  speaking the same wire format, for sweeps that target a remote
  server.

Start a server with ``repro serve`` or :func:`create_server`.
"""

from .client import ServeClient, ServeClientError, task_request
from .server import (
    DEFAULT_PORT,
    ReproAsyncServer,
    ReproHTTPServer,
    RequestError,
    ServeApp,
    create_server,
    parse_task_request,
)

__all__ = [
    "DEFAULT_PORT",
    "ReproAsyncServer",
    "ReproHTTPServer",
    "RequestError",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "create_server",
    "parse_task_request",
    "task_request",
]
