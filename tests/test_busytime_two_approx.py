"""Tests for the chain-peeling 2-approximation (Theorem 3)."""

import pytest

from repro.busytime import (
    chain_peeling_two_approx,
    demand_profile_lower_bound,
    exact_busy_time_interval,
    extract_chain,
)
from repro.core import Instance, Job, coverage_counts, merge_intervals, span
from repro.instances import figure8, random_interval_instance


class TestExtractChain:
    def test_empty(self):
        assert extract_chain([]) == []

    def test_single_job(self):
        jobs = [Job(0, 2, 2, id=0)]
        assert extract_chain(jobs) == jobs

    def test_chain_covers_region(self, rng):
        for _ in range(15):
            inst = random_interval_instance(10, 18.0, rng=rng)
            jobs = list(inst.jobs)
            chain = extract_chain(jobs)
            region = merge_intervals(j.window for j in jobs)
            covered = merge_intervals(j.window for j in chain)
            assert span(region) == pytest.approx(span(covered))

    def test_chain_overlap_at_most_two(self, rng):
        for _ in range(15):
            inst = random_interval_instance(12, 20.0, rng=rng)
            chain = extract_chain(list(inst.jobs))
            cov = coverage_counts([j.window for j in chain])
            assert max((c for _, c in cov), default=0) <= 2

    def test_parity_classes_are_tracks(self, rng):
        from repro.busytime import is_track

        for _ in range(15):
            inst = random_interval_instance(12, 20.0, rng=rng)
            chain = extract_chain(list(inst.jobs))
            assert is_track(chain[0::2])
            assert is_track(chain[1::2])

    def test_max_deadline_pick(self):
        # at x=0 both jobs cover; the later-deadline one must be picked
        a = Job(0, 1, 1, id=0)
        b = Job(0, 3, 3, id=1)
        chain = extract_chain([a, b])
        assert chain[0].id == 1


class TestChainPeeling:
    def test_verifies(self, interval_instance):
        s = chain_peeling_two_approx(interval_instance, 2)
        s.verify()

    def test_within_2x_profile(self, rng):
        for _ in range(25):
            inst = random_interval_instance(12, 20.0, rng=rng)
            g = int(rng.integers(1, 5))
            s = chain_peeling_two_approx(inst, g)
            s.verify()
            assert s.total_busy_time <= 2 * demand_profile_lower_bound(
                inst, g
            ) + 1e-6

    def test_within_2x_opt_small(self, rng):
        for _ in range(8):
            inst = random_interval_instance(6, 10.0, rng=rng)
            g = int(rng.integers(1, 4))
            opt = exact_busy_time_interval(inst, g).total_busy_time
            s = chain_peeling_two_approx(inst, g)
            assert s.total_busy_time <= 2 * opt + 1e-6

    def test_figure8_gadget(self):
        gad = figure8(eps=0.2, eps_prime=0.1)
        s = chain_peeling_two_approx(gad.instance, gad.g)
        s.verify()
        assert s.total_busy_time <= 2 * gad.facts["opt_busy_time"] + 1e-9

    def test_figure8_adversarial_partition_cost(self):
        """The paper's adversarial bundling costs 2 + eps and is feasible."""
        eps, epsp = 0.2, 0.1
        gad = figure8(eps=eps, eps_prime=epsp)
        from repro.busytime import BusyTimeSchedule

        groups = [
            [gad.instance.job_by_id(j) for j in bundle]
            for bundle in gad.witness["adversarial_bundles"]
        ]
        s = BusyTimeSchedule.from_bundle_jobs(gad.instance, gad.g, groups)
        s.verify()
        # [0,2] busy 1+eps ; [1,3,4] busy 1+eps  -> NOT the adversarial form;
        # the witness splits the unit jobs, paying twice the unit span:
        assert s.total_busy_time >= 2.0
        assert s.total_busy_time == pytest.approx(
            gad.facts["adversarial_cost"], abs=eps
        )

    def test_empty(self):
        s = chain_peeling_two_approx(Instance(tuple()), 2)
        assert s.total_busy_time == 0.0

    def test_disjoint_jobs_two_bundles_max(self):
        inst = Instance.from_intervals([(i * 2, i * 2 + 1) for i in range(6)])
        s = chain_peeling_two_approx(inst, 3)
        # one chain takes everything; parity split -> at most 2 bundles
        assert s.num_machines <= 2
        assert s.total_busy_time == pytest.approx(6.0)
