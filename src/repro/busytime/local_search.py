"""Local-search post-optimization for busy-time schedules.

The paper's algorithms carry worst-case guarantees; in practice their output
often leaves easy wins on the table (FIRSTFIT especially).  This module
improves any feasible schedule without breaking feasibility:

* **job moves** — relocate one job to another machine when that strictly
  reduces total busy time (the donor's span shrinks more than the
  recipient's grows);
* **bundle merges** — fuse two machines when their union respects the
  capacity bound (always a weak improvement: span is subadditive).

:func:`improve_schedule` alternates both to a local optimum.  Guarantees are
preserved trivially — the cost never increases — so running it after any
k-approximation still yields a k-approximation; the bench-style tests
measure how much it recovers on random instances and on the Figure-8
adversarial bundling.
"""

from __future__ import annotations

from ..core.intervals import coverage_counts, span
from ..core.jobs import TIME_EPS, Job
from .schedule import Bundle, BusyTimeSchedule

__all__ = ["improve_schedule", "merge_bundles_once", "move_jobs_once"]


def _feasible_group(jobs: list[Job], g: int) -> bool:
    cov = coverage_counts([j.window for j in jobs])
    return all(c <= g for _, c in cov)


def _cost(groups: list[list[Job]]) -> float:
    return sum(span(j.window for j in grp) for grp in groups if grp)


def merge_bundles_once(groups: list[list[Job]], g: int) -> bool:
    """Merge the best feasible bundle pair; returns True when one merged.

    Merging never increases cost (``Sp(A ∪ B) <= Sp(A) + Sp(B)``); the pair
    with the largest saving is taken.
    """
    best: tuple[float, int, int] | None = None
    for i in range(len(groups)):
        for k in range(i + 1, len(groups)):
            union = groups[i] + groups[k]
            if not _feasible_group(union, g):
                continue
            saving = (
                span(j.window for j in groups[i])
                + span(j.window for j in groups[k])
                - span(j.window for j in union)
            )
            if best is None or saving > best[0] + TIME_EPS:
                best = (saving, i, k)
    if best is None:
        return False
    _, i, k = best
    groups[i] = groups[i] + groups[k]
    del groups[k]
    return True


def move_jobs_once(groups: list[list[Job]], g: int) -> bool:
    """Perform the single best cost-reducing job relocation, if any."""
    base_spans = [span(j.window for j in grp) for grp in groups]
    best: tuple[float, int, int, int] | None = None  # (gain, src, job_idx, dst)
    for src, grp in enumerate(groups):
        for idx, job in enumerate(grp):
            rest = grp[:idx] + grp[idx + 1 :]
            shrink = base_spans[src] - span(j.window for j in rest)
            if shrink <= TIME_EPS:
                continue  # removing this job frees no span
            for dst, target in enumerate(groups):
                if dst == src:
                    continue
                if not _feasible_group(target + [job], g):
                    continue
                grow = (
                    span(j.window for j in target + [job]) - base_spans[dst]
                )
                gain = shrink - grow
                if gain > TIME_EPS and (best is None or gain > best[0]):
                    best = (gain, src, idx, dst)
    if best is None:
        return False
    _, src, idx, dst = best
    job = groups[src].pop(idx)
    groups[dst].append(job)
    if not groups[src]:
        del groups[src]
    return True


def improve_schedule(
    schedule: BusyTimeSchedule, *, max_rounds: int = 1000
) -> BusyTimeSchedule:
    """Run merge/move local search to a local optimum.

    The returned schedule has total busy time at most the input's; job
    pinning (start times) is untouched, so any approximation guarantee on
    the input carries over.
    """
    groups: list[list[Job]] = [list(b.jobs) for b in schedule.bundles]
    for _ in range(max_rounds):
        if merge_bundles_once(groups, schedule.g):
            continue
        if move_jobs_once(groups, schedule.g):
            continue
        break
    improved = BusyTimeSchedule(
        instance=schedule.instance,
        g=schedule.g,
        bundles=tuple(Bundle(tuple(grp)) for grp in groups if grp),
        starts=dict(schedule.starts),
    )
    if improved.total_busy_time > schedule.total_busy_time + 1e-9:
        # local search must never regress; fall back defensively
        return schedule
    return improved
