"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``active``
    Solve an active-time instance from a JSON/CSV file:
    ``python -m repro active jobs.json --g 2 --algorithm rounding``
``busy``
    Solve a busy-time instance:
    ``python -m repro busy jobs.csv --g 3 --algorithm greedy_tracking``
``gadget``
    Materialize one of the paper's constructions to a file:
    ``python -m repro gadget figure3 --g 5 --out fig3.json``
``bounds``
    Print all lower bounds for a busy-time instance.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .activetime import (
    exact_active_time,
    minimal_feasible_schedule,
    round_active_time,
    unit_jobs_optimal_schedule,
)
from .analysis import format_table
from .busytime import (
    INTERVAL_ALGORITHMS,
    best_lower_bound,
    demand_profile_lower_bound,
    exact_busy_time_interval,
    mass_lower_bound,
    schedule_flexible,
    span_lower_bound,
)
from .analysis.experiments import EXPERIMENTS, run_all, run_experiment
from .instances import figure1, figure3, figure6, figure8, figure9, figure10, lp_gap
from .io import load_instance, save_instance

__all__ = ["main"]

ACTIVE_ALGORITHMS = ("rounding", "minimal", "exact", "unit")
GADGETS = {
    "figure1": lambda args: figure1(),
    "figure3": lambda args: figure3(args.g),
    "lp_gap": lambda args: lp_gap(args.g),
    "figure6": lambda args: figure6(args.g, eps=args.eps),
    "figure8": lambda args: figure8(eps=args.eps, eps_prime=args.eps / 2),
    "figure9": lambda args: figure9(args.g, eps=args.eps),
    "figure10": lambda args: figure10(args.g, eps=args.eps, eps_prime=args.eps / 2),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Active/busy-time scheduling (Chang-Khuller-Mukherjee, SPAA 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_active = sub.add_parser("active", help="solve an active-time instance")
    p_active.add_argument("path", help="instance file (.json or .csv)")
    p_active.add_argument("--g", type=int, required=True, help="slot capacity")
    p_active.add_argument(
        "--algorithm", choices=ACTIVE_ALGORITHMS, default="rounding"
    )

    p_busy = sub.add_parser("busy", help="solve a busy-time instance")
    p_busy.add_argument("path", help="instance file (.json or .csv)")
    p_busy.add_argument("--g", type=int, required=True, help="machine capacity")
    p_busy.add_argument(
        "--algorithm",
        choices=sorted(INTERVAL_ALGORITHMS) + ["exact"],
        default="greedy_tracking",
    )

    p_gadget = sub.add_parser("gadget", help="materialize a paper gadget")
    p_gadget.add_argument("name", choices=sorted(GADGETS))
    p_gadget.add_argument("--g", type=int, default=3)
    p_gadget.add_argument("--eps", type=float, default=0.1)
    p_gadget.add_argument("--out", help="write the instance to this file")

    p_bounds = sub.add_parser("bounds", help="busy-time lower bounds")
    p_bounds.add_argument("path", help="instance file (.json or .csv)")
    p_bounds.add_argument("--g", type=int, required=True)

    p_exp = sub.add_parser(
        "experiments", help="run registered paper experiments"
    )
    p_exp.add_argument(
        "keys", nargs="*", help=f"subset of {sorted(EXPERIMENTS)} (default all)"
    )

    return parser


def _cmd_active(args) -> int:
    instance = load_instance(args.path)
    if args.algorithm == "rounding":
        sol = round_active_time(instance, args.g)
        schedule = sol.schedule
        extra = f"LP bound {sol.lp_objective:.3f}, ratio {sol.ratio_vs_lp:.3f}"
    elif args.algorithm == "minimal":
        schedule = minimal_feasible_schedule(instance, args.g)
        extra = "guarantee 3x"
    elif args.algorithm == "unit":
        schedule = unit_jobs_optimal_schedule(instance, args.g)
        extra = "exact (unit jobs)"
    else:
        schedule = exact_active_time(instance, args.g)
        extra = "exact (MILP)"
    schedule.verify()
    print(f"instance : {instance.describe()}")
    print(f"algorithm: {args.algorithm} ({extra})")
    print(f"active time: {schedule.cost} slots")
    print(f"active slots: {list(schedule.active_slots)}")
    return 0


def _cmd_busy(args) -> int:
    instance = load_instance(args.path)
    if args.algorithm == "exact":
        schedule = exact_busy_time_interval(instance, args.g)
    else:
        schedule = schedule_flexible(instance, args.g, algorithm=args.algorithm)
    schedule.verify()
    print(f"instance : {instance.describe()}")
    print(f"algorithm: {args.algorithm}")
    print(f"busy time: {schedule.total_busy_time:g}")
    print(f"machines : {schedule.num_machines}")
    rows = [
        [k + 1, b.busy_time, len(b), b.job_ids()]
        for k, b in enumerate(schedule.bundles)
    ]
    print(format_table("bundles", ["machine", "busy", "jobs", "ids"], rows))
    return 0


def _cmd_gadget(args) -> int:
    gadget = GADGETS[args.name](args)
    print(f"gadget  : {gadget.name} (g={gadget.g})")
    print(f"instance: {gadget.instance.describe()}")
    for key, value in gadget.facts.items():
        print(f"  {key}: {value}")
    if args.out:
        save_instance(gadget.instance, args.out, gadget=gadget.name, g=gadget.g)
        print(f"written to {args.out}")
    return 0


def _cmd_bounds(args) -> int:
    instance = load_instance(args.path)
    rows = [
        ["mass  (Obs. 2)", mass_lower_bound(instance, args.g)],
        ["span  (Obs. 3)", span_lower_bound(instance)],
        ["profile (Obs. 4)", demand_profile_lower_bound(instance, args.g)],
        ["best", best_lower_bound(instance, args.g)],
    ]
    print(
        format_table(
            f"lower bounds, {instance.describe()}, g={args.g}",
            ["bound", "value"],
            rows,
        )
    )
    return 0


def _cmd_experiments(args) -> int:
    if args.keys:
        for key in args.keys:
            print(run_experiment(key))
            print()
    else:
        print(run_all())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "active": _cmd_active,
        "busy": _cmd_busy,
        "gadget": _cmd_gadget,
        "bounds": _cmd_bounds,
        "experiments": _cmd_experiments,
    }
    try:
        return handlers[args.command](args)
    except (ValueError, RuntimeError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
