"""REP006 — determinism in content-digest paths.

``Task.digest`` (built by ``task_digest``/``canonical_task``) and the
resident-model ``structure_digest`` are the engine's *addresses*: the
result cache, server-side dedupe, fabric re-dispatch and warm-start
affinity all assume that equal inputs produce equal digests across
processes and hosts.  The PR 8 digest-drift bug (params ordering
leaking into the wire digest) is the motivating incident: one
nondeterministic byte and every cache tier silently stops hitting.

This rule walks a name-level call graph from the digest entry points
(``task_digest``, ``structure_digest``, ``instance_digest``) and flags,
inside every transitively reachable function:

* wall-clock and randomness sources — ``time.time()`` & friends,
  ``random.*``, ``uuid.*``, ``os.urandom``, ``datetime.now/utcnow``,
  and direct calls of names imported *from* ``time``/``random``/
  ``uuid``;
* dict-order-dependent iteration — looping over ``.items()`` /
  ``.keys()`` / ``.values()`` in ``for`` statements or comprehensions
  without a ``sorted(...)`` wrapper (insertion order is deterministic
  per process but not part of any cross-process contract; canonical
  forms must sort).

The call graph is name-based and over-approximate (see
:mod:`repro.lint.callgraph`); a function that shares a name with a
digest helper but is provably unrelated can be waived with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..base import Finding, Rule, TreeContext, register
from ..callgraph import function_table, reachable_names

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Digest computation roots; reachability fans out from these names.
ENTRY_POINTS = ("task_digest", "structure_digest", "instance_digest")

_TIME_ATTRS = {"time", "time_ns", "monotonic", "monotonic_ns",
               "perf_counter", "perf_counter_ns"}
_DATETIME_ATTRS = {"now", "utcnow", "today"}
_NONDET_MODULES = {"random", "uuid"}
_IMPORT_TAINT_MODULES = {"time", "random", "uuid"}


def _tainted_imports(tree: ast.AST) -> Set[str]:
    """Names imported from time/random/uuid (``from time import time``)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module in _IMPORT_TAINT_MODULES:
                for alias in node.names:
                    names.add(alias.asname or alias.name)
    return names


def _nondet_call(node: ast.Call, tainted: Set[str]) -> str | None:
    """A human-readable label if ``node`` is a nondeterminism source."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner, attr = func.value.id, func.attr
        if owner == "time" and attr in _TIME_ATTRS:
            return f"time.{attr}()"
        if owner in _NONDET_MODULES:
            return f"{owner}.{attr}()"
        if owner == "os" and attr == "urandom":
            return "os.urandom()"
        if owner in ("datetime", "dt") and attr in _DATETIME_ATTRS:
            return f"{owner}.{attr}()"
    elif isinstance(func, ast.Name) and func.id in tainted:
        return f"{func.id}() (imported from a clock/random module)"
    return None


def _unsorted_dict_iters(func: ast.AST) -> List[ast.Call]:
    """``.items()/.keys()/.values()`` calls used directly as loop or
    comprehension iterables (a ``sorted(...)`` wrapper moves the call
    out of the iterable position, so wrapped uses pass)."""
    iters: List[ast.AST] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
    flagged = []
    for it in iters:
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in ("items", "keys", "values")
            and not it.args
        ):
            flagged.append(it)
    return flagged


@register
class DigestDeterminismRule(Rule):
    __doc__ = __doc__

    id = "REP006"
    title = "nondeterminism (clock/random/dict order) in a digest path"

    def check_tree(self, tree: TreeContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        table = function_table(m.tree for m in tree.modules)
        reachable = reachable_names(table, ENTRY_POINTS)
        if not reachable:
            return iter(findings)
        for module in tree.modules:
            tainted = _tainted_imports(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, _FuncDef):
                    continue
                if node.name not in reachable:
                    continue
                for call in ast.walk(node):
                    if isinstance(call, ast.Call):
                        label = _nondet_call(call, tainted)
                        if label:
                            findings.append(module.finding(
                                "REP006", call,
                                f"{label} inside {node.name}(), which is "
                                "reachable from digest computation — "
                                "digests must be pure functions of their "
                                "inputs",
                            ))
                for it in _unsorted_dict_iters(node):
                    findings.append(module.finding(
                        "REP006", it,
                        f"unsorted dict iteration (.{it.func.attr}()) "
                        f"inside {node.name}(), which is reachable from "
                        "digest computation — wrap in sorted(...) for a "
                        "canonical order",
                    ))
        return iter(findings)
