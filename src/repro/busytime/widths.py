"""Busy time with job widths (demands) — the Khandekar et al. generalization.

The paper's introduction discusses the model where each interval job ``j``
additionally has a *width* (demand) ``w_j``; a machine may run any set of
jobs whose total width is at most ``g`` at every instant.  Khandekar et al.
give a 5-approximation by splitting jobs into *narrow* (``w <= g/2``) and
*wide* (``w > g/2``): wide jobs pairwise exclude each other on a machine, so
they are packed as a unit-capacity instance, while FIRSTFIT packs the narrow
jobs against the fractional capacity.

This module implements that scheme plus the width-aware lower bounds:

* mass: ``sum_j w_j * p_j / g``;
* span: ``Sp(J)``;
* width profile: ``integral of ceil(W(t)/g)`` where ``W(t)`` is the total
  width active at ``t`` — machines busy at ``t`` is at least ``W(t)/g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.intervals import span
from ..core.jobs import TIME_EPS, Instance, Job
from ..core.validation import require_capacity, require_interval_jobs

__all__ = [
    "WidthJob",
    "WidthInstance",
    "WidthBundle",
    "WidthSchedule",
    "width_mass_lower_bound",
    "width_profile_lower_bound",
    "first_fit_with_widths",
    "khandekar_narrow_wide",
]


@dataclass(frozen=True)
class WidthJob:
    """An interval job with a machine-capacity demand."""

    job: Job
    width: float

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"job {self.job.id}: width must be positive")
        if not self.job.is_interval:
            raise ValueError(
                f"job {self.job.id}: width model requires interval jobs"
            )

    @property
    def window(self) -> tuple[float, float]:
        return self.job.window


@dataclass(frozen=True)
class WidthInstance:
    """A collection of width jobs."""

    jobs: tuple[WidthJob, ...]

    @classmethod
    def from_tuples(
        cls, quads: Iterable[tuple[float, float, float]]
    ) -> "WidthInstance":
        """Build from ``(release, deadline, width)`` triples (interval jobs)."""
        out = []
        for i, (r, d, w) in enumerate(quads):
            out.append(WidthJob(Job(r, d, d - r, id=i), w))
        return cls(tuple(out))

    @classmethod
    def uniform(cls, instance: Instance, width: float = 1.0) -> "WidthInstance":
        """Lift a unit-width interval instance into the width model."""
        require_interval_jobs(instance, "width model")
        return cls(tuple(WidthJob(j, width) for j in instance.jobs))

    @property
    def n(self) -> int:
        return len(self.jobs)

    def max_width(self) -> float:
        return max((wj.width for wj in self.jobs), default=0.0)

    def total_width_at(self, t: float) -> float:
        """``W(t)``: total width of jobs whose interval covers ``t``."""
        return sum(
            wj.width for wj in self.jobs if wj.job.is_live_at(t)
        )

    def event_points(self) -> list[float]:
        pts = {wj.job.release for wj in self.jobs}
        pts |= {wj.job.deadline for wj in self.jobs}
        return sorted(pts)


@dataclass(frozen=True)
class WidthBundle:
    """Width jobs sharing one machine."""

    jobs: tuple[WidthJob, ...]

    @property
    def busy_time(self) -> float:
        return span(wj.window for wj in self.jobs)

    def peak_width(self) -> float:
        """Largest total width active at any instant."""
        events: list[tuple[float, float]] = []
        for wj in self.jobs:
            a, b = wj.window
            events.append((a, wj.width))
            events.append((b, -wj.width))
        events.sort(key=lambda e: (e[0], e[1]))
        depth = peak = 0.0
        for _, delta in events:
            depth += delta
            peak = max(peak, depth)
        return peak


@dataclass(frozen=True)
class WidthSchedule:
    """A feasible width-model solution."""

    instance: WidthInstance
    g: int
    bundles: tuple[WidthBundle, ...]

    @property
    def total_busy_time(self) -> float:
        return sum(b.busy_time for b in self.bundles)

    @property
    def num_machines(self) -> int:
        return len(self.bundles)

    def verify(self) -> None:
        """Every job exactly once; per-machine width peak at most ``g``."""
        seen: set[int] = set()
        for k, b in enumerate(self.bundles):
            for wj in b.jobs:
                if wj.job.id in seen:
                    raise AssertionError(
                        f"job {wj.job.id} scheduled twice"
                    )
                seen.add(wj.job.id)
            if b.peak_width() > self.g + 1e-9:
                raise AssertionError(
                    f"machine {k}: peak width {b.peak_width()} exceeds {self.g}"
                )
        missing = {wj.job.id for wj in self.instance.jobs} - seen
        if missing:
            raise AssertionError(f"jobs never scheduled: {sorted(missing)}")


# ----------------------------------------------------------------------
# Lower bounds
# ----------------------------------------------------------------------
def width_mass_lower_bound(instance: WidthInstance, g: int) -> float:
    """``sum_j w_j p_j / g``."""
    require_capacity(g)
    return sum(wj.width * wj.job.length for wj in instance.jobs) / g


def width_profile_lower_bound(instance: WidthInstance, g: int) -> float:
    """``integral of ceil(W(t) / g) dt`` over the horizon."""
    require_capacity(g)
    pts = instance.event_points()
    total = 0.0
    for a, b in zip(pts, pts[1:]):
        if b - a <= TIME_EPS:
            continue
        w = instance.total_width_at(0.5 * (a + b))
        if w > TIME_EPS:
            import math

            total += math.ceil(w / g - 1e-9) * (b - a)
    return total


# ----------------------------------------------------------------------
# Algorithms
# ----------------------------------------------------------------------
def _fits(members: Sequence[WidthJob], candidate: WidthJob, g: float) -> bool:
    """Would adding ``candidate`` keep peak width within ``g``?"""
    window = candidate.window
    events: list[tuple[float, float]] = [
        (window[0], candidate.width),
        (window[1], -candidate.width),
    ]
    for wj in members:
        a, b = wj.window
        if a < window[1] - TIME_EPS and b > window[0] + TIME_EPS:
            events.append((max(a, window[0]), wj.width))
            events.append((min(b, window[1]), -wj.width))
    events.sort(key=lambda e: (e[0], e[1]))
    depth = 0.0
    for _, delta in events:
        depth += delta
        if depth > g + 1e-9:
            return False
    return True


def first_fit_with_widths(
    instance: WidthInstance, g: int, *, capacity: float | None = None
) -> WidthSchedule:
    """FIRSTFIT under width constraints (non-increasing length order)."""
    require_capacity(g)
    cap = g if capacity is None else capacity
    ordered = sorted(
        instance.jobs,
        key=lambda wj: (-wj.job.length, wj.job.release, wj.job.id),
    )
    bundles: list[list[WidthJob]] = []
    for wj in ordered:
        if wj.width > cap + 1e-9:
            raise ValueError(
                f"job {wj.job.id}: width {wj.width} exceeds capacity {cap}"
            )
        for members in bundles:
            if _fits(members, wj, cap):
                members.append(wj)
                break
        else:
            bundles.append([wj])
    return WidthSchedule(
        instance=instance,
        g=g,
        bundles=tuple(WidthBundle(tuple(b)) for b in bundles),
    )


def khandekar_narrow_wide(instance: WidthInstance, g: int) -> WidthSchedule:
    """The narrow/wide split 5-approximation of Khandekar et al.

    * wide jobs (``w > g/2``) pairwise exclude each other, so they are
      packed as a unit-capacity interval instance (FIRSTFIT with one job at
      a time per machine);
    * narrow jobs (``w <= g/2``) are packed by width-aware FIRSTFIT.
    """
    require_capacity(g)
    if instance.n == 0:
        return WidthSchedule(instance, g, tuple())
    if instance.max_width() > g + 1e-9:
        raise ValueError("some job is wider than the machine capacity g")

    narrow = [wj for wj in instance.jobs if wj.width <= g / 2 + 1e-12]
    wide = [wj for wj in instance.jobs if wj.width > g / 2 + 1e-12]

    bundles: list[WidthBundle] = []
    if wide:
        wide_schedule = first_fit_with_widths(
            WidthInstance(tuple(wide)), g, capacity=float(g)
        )
        # wide jobs cannot share an instant; enforce by re-packing each
        # bundle's overlap groups if FIRSTFIT co-located any (it cannot,
        # since two wides exceed g, but the assertion documents it).
        for b in wide_schedule.bundles:
            assert b.peak_width() <= g + 1e-9
        bundles.extend(wide_schedule.bundles)
    if narrow:
        narrow_schedule = first_fit_with_widths(
            WidthInstance(tuple(narrow)), g
        )
        bundles.extend(narrow_schedule.bundles)

    return WidthSchedule(instance=instance, g=g, bundles=tuple(bundles))
