"""Satellite: scrape ``GET /metrics`` while a ``/batch`` is streaming and
validate the Prometheus exposition text line by line.

A real server runs in-process (ThreadingHTTPServer), so the scrape and
the batch genuinely overlap; the slow test solver makes "mid-batch" a
window wide enough to hit deterministically.
"""

import http.client
import json
import math
import re
import threading
import time

import pytest

from repro.core import Instance
from repro.engine import REGISTRY, ResultCache
from repro.engine.registry import SolveOutcome, SolverSpec
from repro.serve import ServeClient, create_server, task_request

_SLOW_SECONDS = 0.6


def _slow_solver(instance, g, **params):
    time.sleep(_SLOW_SECONDS)
    return SolveOutcome(objective=float(g))


@pytest.fixture
def slow_solver():
    name = "slow-metrics-test"
    if ("active", name) not in REGISTRY:
        REGISTRY.register(
            SolverSpec(
                problem="active",
                name=name,
                solve=_slow_solver,
                exact=False,
                guarantee="-",
                complexity="-",
                description="sleeps then answers (test only)",
            )
        )
    yield name
    REGISTRY._specs.pop(("active", name), None)


@pytest.fixture(scope="module")
def server():
    srv = create_server(port=0, jobs=1, cache=ResultCache())
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5.0)


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url)


@pytest.fixture
def inst():
    return Instance.from_tuples([(0, 4, 2), (1, 5, 3)])


# ---------------------------------------------------------------------------
# Exposition-text validation helpers

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SERIES_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises (failing the test) on malformed values


def _parse_exposition(text):
    """Validate every line; return (series, helps, types).

    ``series`` maps ``(name, frozenset(labels))`` to the parsed value;
    label order inside the line must not matter to a scraper.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    series = {}
    helps, types = {}, {}
    for lineno, line in enumerate(text.splitlines(), 1):
        assert line == line.strip(), f"line {lineno}: stray whitespace"
        assert line, f"line {lineno}: blank line in exposition"
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            assert _METRIC_NAME.match(name), f"line {lineno}: {name!r}"
            helps[name] = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) == 4, f"line {lineno}: malformed TYPE"
            name, kind = parts[2], parts[3]
            assert _METRIC_NAME.match(name), f"line {lineno}: {name!r}"
            assert kind in ("counter", "gauge", "histogram"), kind
            types[name] = kind
            continue
        assert not line.startswith("#"), f"line {lineno}: unknown comment"
        match = _SERIES_LINE.match(line)
        assert match, f"line {lineno}: malformed series line {line!r}"
        labels = {}
        raw = match.group("labels")
        if raw is not None:
            joined = ",".join(
                f'{m.group("name")}="{m.group("value")}"'
                for m in _LABEL_PAIR.finditer(raw)
            )
            assert joined == raw, f"line {lineno}: malformed labels {raw!r}"
            labels = {
                m.group("name"): m.group("value")
                for m in _LABEL_PAIR.finditer(raw)
            }
        key = (match.group("name"), frozenset(labels.items()))
        assert key not in series, f"line {lineno}: duplicate series {key}"
        series[key] = _parse_value(match.group("value"))
    return series, helps, types


def _base_name(name, types):
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            return base
    return name


def _assert_histograms_well_formed(series, types):
    """Cumulative non-decreasing buckets ending at +Inf == _count."""
    buckets = {}
    for (name, labelset), value in series.items():
        base = _base_name(name, types)
        if types.get(base) != "histogram" or not name.endswith("_bucket"):
            continue
        labels = dict(labelset)
        le = labels.pop("le")
        buckets.setdefault((base, frozenset(labels.items())), []).append(
            (_parse_value(le), value)
        )
    assert buckets, "no histogram buckets in exposition"
    for (base, labelset), edges in buckets.items():
        edges.sort(key=lambda pair: pair[0])
        counts = [count for _, count in edges]
        assert counts == sorted(counts), f"{base}: non-cumulative buckets"
        assert edges[-1][0] == math.inf, f"{base}: missing +Inf bucket"
        count_key = (base + "_count", labelset)
        assert count_key in series, f"{base}: missing _count series"
        assert (base + "_sum", labelset) in series, f"{base}: missing _sum"
        assert edges[-1][1] == series[count_key], (
            f"{base}: +Inf bucket must equal _count"
        )


def _value(series, name, **labels):
    return series.get((name, frozenset({
        k: str(v) for k, v in labels.items()
    }.items())))


# ---------------------------------------------------------------------------


class TestMetricsDuringLiveBatch:
    def test_scrape_mid_batch_sees_stream_in_flight(
        self, server, client, inst, slow_solver
    ):
        requests = [
            task_request(inst, "active", g, algorithm=slow_solver)
            for g in (2, 3, 4)
        ]
        lines = []

        def consume():
            for result in client.batch(requests):
                lines.append(result)

        consumer = threading.Thread(target=consume)
        consumer.start()
        try:
            # Wait until the first result proves the batch is live,
            # then scrape while tasks two and three are still solving.
            deadline = time.monotonic() + 30
            while not lines and time.monotonic() < deadline:
                time.sleep(0.02)
            assert lines, "batch produced nothing within 30s"
            text = client.metrics()
        finally:
            consumer.join(timeout=30)
        assert not consumer.is_alive()

        series, helps, types = _parse_exposition(text)
        in_flight = _value(series, "repro_streams_in_flight")
        assert in_flight is not None and in_flight >= 1, (
            "scrape overlapped a live batch; streams_in_flight must show it"
        )
        assert len(lines) == len(requests)

    def test_exposition_is_valid_line_by_line(self, client, inst):
        # At least one solve on the books so histograms have data.
        client.solve(inst, "active", 2, algorithm="minimal")
        text = client.metrics()
        series, helps, types = _parse_exposition(text)
        # every series belongs to a typed, documented family
        for name, _ in series:
            base = _base_name(name, types)
            assert base in types, f"series {name} has no # TYPE"
            assert base in helps, f"series {name} has no # HELP"
        _assert_histograms_well_formed(series, types)

    def test_required_series_present_after_solves(self, client, inst):
        client.solve(inst, "active", 3, algorithm="minimal")
        series, _, types = _parse_exposition(client.metrics())
        assert _value(series, "repro_tasks_total", status="ok") >= 1
        assert types.get("repro_task_seconds") == "histogram"
        assert types.get("repro_queue_wait_seconds") == "histogram"
        assert _value(series, "repro_queue_depth") == 0
        assert _value(series, "repro_cache_misses_total") >= 1
        # repeat -> a cache hit on the serving path
        client.solve(inst, "active", 3, algorithm="minimal")
        series, _, _ = _parse_exposition(client.metrics())
        assert _value(series, "repro_cache_hits_total", layer="memory") >= 1

    def test_metrics_content_type_and_raw_get(self, server):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode("utf-8")
        finally:
            conn.close()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        assert "version=0.0.4" in response.getheader("Content-Type")
        assert int(response.getheader("Content-Length")) == len(
            body.encode("utf-8")
        )


class TestStatsEndpoint:
    def test_stats_digest_shape(self, client, inst):
        client.solve(inst, "active", 2, algorithm="minimal")
        stats = client.stats()
        assert stats["ok"] is True
        for key in (
            "jobs",
            "batches_served",
            "tasks_served",
            "queue_depth",
            "streams_in_flight",
            "tasks",
            "queue_wait_seconds",
            "task_seconds",
            "backend_solve_seconds",
            "cache",
            "highs_resolve",
        ):
            assert key in stats, key
        assert stats["tasks"].get("ok", 0) >= 1
        assert "hits" in stats["cache"]

    def test_stats_is_strict_json(self, server):
        # NaN/Infinity are not JSON; the digest must stay parseable by
        # a strict decoder even when histograms are empty (mean = NaN).
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/stats")
            response = conn.getresponse()
            body = response.read().decode("utf-8")
        finally:
            conn.close()
        assert response.status == 200
        parsed = json.loads(body, parse_constant=pytest.fail)
        assert parsed["ok"] is True
