"""Tests for the content-addressed result cache (repro.engine.cache)."""

import pytest

from repro.core import Instance
from repro.engine import ResultCache, instance_digest, task_digest


@pytest.fixture
def inst():
    return Instance.from_tuples([(0, 4, 2), (1, 5, 3)])


class TestDigests:
    def test_same_content_same_digest(self, inst):
        clone = Instance.from_tuples([(0, 4, 2), (1, 5, 3)])
        assert instance_digest(inst) == instance_digest(clone)
        assert task_digest(inst, "active", "minimal", 2) == task_digest(
            clone, "active", "minimal", 2
        )

    def test_label_does_not_affect_digest(self):
        from repro.core import Job

        plain = Instance.from_tuples([(0, 4, 2)])
        labeled = Instance((Job(0, 4, 2, id=0, label="rigid"),))
        assert plain == labeled  # Job.label is compare=False
        assert instance_digest(plain) == instance_digest(labeled)

    def test_job_order_matters(self):
        a = Instance.from_tuples([(0, 4, 2), (1, 5, 3)])
        b = Instance(tuple(reversed(a.jobs)))
        assert instance_digest(a) != instance_digest(b)

    def test_every_axis_changes_digest(self, inst):
        base = task_digest(inst, "active", "minimal", 2)
        assert base != task_digest(inst, "busy", "minimal", 2)
        assert base != task_digest(inst, "active", "rounding", 2)
        assert base != task_digest(inst, "active", "minimal", 3)
        assert base != task_digest(
            inst, "active", "minimal", 2, {"extra": 1}
        )

    def test_param_key_order_is_irrelevant(self, inst):
        assert task_digest(
            inst, "active", "minimal", 2, {"a": 1, "b": 2}
        ) == task_digest(inst, "active", "minimal", 2, {"b": 2, "a": 1})


class TestMemoryLayer:
    def test_hit_miss_counters(self):
        cache = ResultCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", {"objective": 1.0})
        assert cache.get("k") == {"objective": 1.0}
        assert cache.stats == {
            "hits": 1, "misses": 1, "size": 1, "evictions": 0,
            "evictions_disk": 0, "evictions_memory": 0,
            "compressed_records": 0,
        }

    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", {"v": 3})
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_returned_record_is_not_aliased_to_the_cache(self):
        # Regression: get/put made only shallow copies, so the nested
        # metrics/meta dicts were shared between the cache and callers —
        # mutating a returned record corrupted the cached entry.
        cache = ResultCache()
        cache.put("k", {"ok": True, "metrics": {"lb": 2.0}, "meta": {"s": 1}})
        first = cache.get("k")
        first["metrics"]["lb"] = -99.0
        first["meta"]["injected"] = True
        again = cache.get("k")
        assert again["metrics"] == {"lb": 2.0}
        assert again["meta"] == {"s": 1}

    def test_record_passed_to_put_is_not_aliased_either(self):
        record = {"ok": True, "metrics": {"lb": 2.0}}
        cache = ResultCache()
        cache.put("k", record)
        record["metrics"]["lb"] = -99.0  # caller reuses its dict
        assert cache.get("k")["metrics"] == {"lb": 2.0}

    def test_disk_roundtrip_is_not_aliased(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", {"ok": True, "metrics": {"lb": 2.0}})
        cache.clear()  # force the next get through the disk layer
        first = cache.get("k")
        first["metrics"]["lb"] = -99.0
        assert cache.get("k")["metrics"] == {"lb": 2.0}

    def test_returned_record_is_a_copy(self):
        cache = ResultCache()
        cache.put("k", {"v": 1})
        record = cache.get("k")
        record["v"] = 99
        assert cache.get("k")["v"] == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)


class TestDiskLayer:
    def test_roundtrip_across_instances(self, tmp_path):
        ResultCache(directory=tmp_path).put("key", {"objective": 7.0})
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("key") == {"objective": 7.0}
        assert fresh.stats["hits"] == 1

    def test_disk_miss_counts(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        assert cache.get("absent") is None
        assert cache.stats["misses"] == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        cache = ResultCache(directory=tmp_path)
        assert cache.get("bad") is None

    def test_clear_keeps_disk(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("key", {"v": 1})
        cache.clear()
        assert len(cache) == 0
        assert cache.get("key") == {"v": 1}  # reloaded from disk


class TestDiskEviction:
    def _fill(self, cache, count, pad=64):
        import os
        import time

        for i in range(count):
            cache.put(f"key-{i}", {"objective": float(i), "pad": "x" * pad})
            # distinct mtimes so oldest-first order is deterministic
            path = cache.directory / f"key-{i}.json"
            stamp = time.time() - (count - i) * 10
            os.utime(path, (stamp, stamp))

    def test_budget_enforced_on_put(self, tmp_path):
        cache = ResultCache(directory=tmp_path, disk_budget=600)
        self._fill(cache, 8)
        cache.put("key-last", {"objective": 9.0, "pad": "x" * 64})
        num, size = cache.disk_usage()
        assert size <= 600
        assert num < 9
        assert cache.evictions > 0
        # the newest write always survives
        assert (tmp_path / "key-last.json").exists()

    def test_oldest_mtime_evicted_first(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        self._fill(cache, 6)
        _, total = cache.disk_usage()
        summary = cache.prune(total // 2)
        assert summary["removed"] > 0
        assert summary["kept_bytes"] <= total // 2
        survivors = {p.name for p, _, _ in cache.disk_entries()}
        # survivors are a suffix of the write order (newest kept)
        kept_ids = sorted(int(n.split("-")[1].split(".")[0]) for n in survivors)
        assert kept_ids == list(range(6 - len(kept_ids), 6))

    def test_prune_to_zero_empties_store(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        self._fill(cache, 3)
        summary = cache.prune(0)
        assert summary == {
            "removed": 3,
            "removed_bytes": summary["removed_bytes"],
            "kept": 0,
            "kept_bytes": 0,
        }
        assert cache.disk_usage() == (0, 0)

    def test_prune_without_directory_is_noop(self):
        cache = ResultCache()
        assert cache.prune(0)["removed"] == 0

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        self._fill(cache, 10)
        assert cache.disk_usage()[0] == 10
        assert cache.evictions == 0

    def test_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(directory=tmp_path, disk_budget=-1)

    def test_disk_hit_refreshes_mtime(self, tmp_path):
        import os
        import time

        cache = ResultCache(directory=tmp_path)
        cache.put("hot", {"v": 1})
        path = tmp_path / "hot.json"
        old = time.time() - 3600
        os.utime(path, (old, old))
        # fresh instance: empty memory layer forces a *disk* hit
        assert ResultCache(directory=tmp_path).get("hot") == {"v": 1}
        assert path.stat().st_mtime > old + 1800

    def test_read_entries_survive_eviction_over_unread_ones(self, tmp_path):
        # Regression: prune() evicts oldest-mtime first, but get() never
        # refreshed mtime — so the most frequently *read* entries were
        # evicted first under a byte budget.
        cache = ResultCache(directory=tmp_path)
        self._fill(cache, 6)  # key-0 oldest ... key-5 newest
        # Read the two oldest entries through a fresh (memory-empty)
        # cache: disk hits must make them the *newest* by mtime.
        reader = ResultCache(directory=tmp_path)
        assert reader.get("key-0") is not None
        assert reader.get("key-1") is not None

        _, total = cache.disk_usage()
        per_entry = total // 6
        cache.prune(per_entry * 3)  # keep ~3 of 6
        survivors = {p.name for p, _, _ in cache.disk_entries()}
        # the hot (recently read) entries survive ...
        assert "key-0.json" in survivors
        assert "key-1.json" in survivors
        # ... while the cold oldest-mtime entries were evicted first
        assert "key-2.json" not in survivors
        assert "key-3.json" not in survivors

    def test_memory_hit_leaves_disk_mtime_alone(self, tmp_path):
        # Only *disk* hits touch the file: a memory hit must not pay a
        # syscall per lookup.
        import os
        import time

        cache = ResultCache(directory=tmp_path)
        cache.put("k", {"v": 1})
        path = tmp_path / "k.json"
        old = time.time() - 3600
        os.utime(path, (old, old))
        assert cache.get("k") == {"v": 1}  # served from memory
        assert abs(path.stat().st_mtime - old) < 5

    def test_eviction_does_not_break_memory_layer(self, tmp_path):
        cache = ResultCache(directory=tmp_path, disk_budget=0)
        cache.put("k", {"v": 1})
        assert cache.disk_usage() == (0, 0)
        assert cache.get("k") == {"v": 1}  # memory layer still serves it


class TestGzipCompression:
    def _big_record(self):
        return {"metrics": {f"m{i}": float(i) for i in range(400)}}

    def test_large_record_lands_compressed(self, tmp_path):
        cache = ResultCache(directory=tmp_path, compress_threshold=256)
        cache.put("big", self._big_record())
        assert (tmp_path / "big.json.gz").exists()
        assert not (tmp_path / "big.json").exists()

    def test_small_record_stays_plain(self, tmp_path):
        cache = ResultCache(directory=tmp_path, compress_threshold=256)
        cache.put("small", {"v": 1})
        assert (tmp_path / "small.json").exists()
        assert not (tmp_path / "small.json.gz").exists()

    def test_compressed_record_reads_back(self, tmp_path):
        record = self._big_record()
        ResultCache(directory=tmp_path, compress_threshold=0).put(
            "k", record
        )
        # fresh instance: empty memory layer forces a *disk* read
        assert ResultCache(directory=tmp_path).get("k") == record

    def test_threshold_none_disables_compression(self, tmp_path):
        cache = ResultCache(directory=tmp_path, compress_threshold=None)
        cache.put("big", self._big_record())
        assert (tmp_path / "big.json").exists()
        assert not (tmp_path / "big.json.gz").exists()

    def test_budget_counts_compressed_size(self, tmp_path):
        record = self._big_record()
        import gzip as _gzip
        import json as _json

        text = _json.dumps(record, sort_keys=True).encode()
        packed = len(_gzip.compress(text))
        assert packed < len(text)  # the record actually compresses
        # budget admits the compressed record but not the plain one
        cache = ResultCache(
            directory=tmp_path,
            disk_budget=(packed + len(text)) // 2,
            compress_threshold=0,
        )
        cache.put("k", record)
        num, size = cache.disk_usage()
        assert (num, size) == (1, packed)
        assert cache.evictions == 0  # fits the budget only because gzip'd

    def test_reput_across_threshold_removes_stale_twin(self, tmp_path):
        cache = ResultCache(directory=tmp_path, compress_threshold=256)
        cache.put("k", self._big_record())
        assert (tmp_path / "k.json.gz").exists()
        cache.put("k", {"v": 1})  # shrinks below the threshold
        assert (tmp_path / "k.json").exists()
        assert not (tmp_path / "k.json.gz").exists()
        assert len(cache.disk_entries()) == 1

    def test_prune_evicts_compressed_entries_too(self, tmp_path):
        cache = ResultCache(directory=tmp_path, compress_threshold=0)
        for i in range(4):
            cache.put(f"k{i}", self._big_record())
        assert all(p.name.endswith(".json.gz")
                   for p, _, _ in cache.disk_entries())
        summary = cache.prune(0)
        assert summary["removed"] == 4 and summary["kept"] == 0
        assert cache.disk_usage() == (0, 0)

    def test_corrupt_gzip_is_a_miss(self, tmp_path):
        cache = ResultCache(directory=tmp_path, compress_threshold=0)
        cache.put("k", self._big_record())
        (tmp_path / "k.json.gz").write_bytes(b"not gzip at all")
        assert ResultCache(directory=tmp_path).get("k") is None

    def test_rejects_negative_threshold(self, tmp_path):
        with pytest.raises(ValueError, match="compress_threshold"):
            ResultCache(directory=tmp_path, compress_threshold=-1)


class TestEvictionCounters:
    """Satellite: `stats` distinguishes memory/disk evictions and
    compressed writes, under forced pressure."""

    def test_memory_eviction_counter(self):
        cache = ResultCache(maxsize=2)
        for i in range(5):
            cache.put(f"key-{i}", {"objective": float(i)})
        stats = cache.stats
        assert stats["evictions_memory"] == 3
        assert stats["size"] == 2
        assert stats["evictions_disk"] == 0

    def test_disk_eviction_counter(self, tmp_path):
        cache = ResultCache(directory=tmp_path, disk_budget=600)
        for i in range(9):
            cache.put(f"key-{i}", {"objective": float(i), "pad": "x" * 64})
        stats = cache.stats
        assert stats["evictions_disk"] > 0
        assert stats["evictions_disk"] == cache.evictions
        # legacy alias keeps old readers working
        assert stats["evictions"] == stats["evictions_disk"]

    def test_compressed_records_counter(self, tmp_path):
        cache = ResultCache(directory=tmp_path, compress_threshold=128)
        cache.put("small", {"objective": 1.0})
        cache.put("large", {"objective": 2.0, "pad": "x" * 1024})
        stats = cache.stats
        assert stats["compressed_records"] == 1
        assert (tmp_path / "large.json.gz").exists()
        assert (tmp_path / "small.json").exists()
        # compressed entries read back identically
        assert cache.get("large")["pad"] == "x" * 1024

    def test_counters_survive_clear(self, tmp_path):
        cache = ResultCache(directory=tmp_path, maxsize=1)
        cache.put("a", {"objective": 1.0})
        cache.put("b", {"objective": 2.0})
        assert cache.evictions_memory == 1
        cache.clear()
        # clear drops entries, not lifetime counters
        assert cache.stats["evictions_memory"] == 1
