#!/usr/bin/env python3
"""Regenerate every figure/tightness construction in the paper, standalone.

A compact version of the ``benchmarks/`` harness: for each paper artefact it
builds the gadget, computes the claimed quantities with the library's own
solvers and prints claimed-vs-measured.  (The full harness with runtime
measurements lives in ``benchmarks/``; see EXPERIMENTS.md for the recorded
outputs.)

Run:  python examples/reproduce_paper_figures.py
"""

from repro.activetime import exact_active_time, round_active_time
from repro.analysis import format_table
from repro.busytime import (
    chain_peeling_two_approx,
    compute_demand_profile,
    exact_busy_time_interval,
    pin_instance,
    schedule_flexible,
)
from repro.flow import is_feasible_slot_set
from repro.instances import (
    figure1,
    figure3,
    figure6,
    figure8,
    figure9,
    figure10,
    lp_gap,
)
from repro.lp import solve_active_time_lp


def main() -> None:
    # Figure 1 -----------------------------------------------------------
    gad = figure1()
    opt = exact_busy_time_interval(gad.instance, gad.g)
    print(
        format_table(
            "Figure 1 — introductory packing (g=3)",
            ["quantity", "paper", "measured"],
            [["optimal busy time", gad.facts["opt_busy_time"],
              opt.total_busy_time]],
        ),
        "\n",
    )

    # Figure 3 -----------------------------------------------------------
    rows = []
    for g in (3, 4, 6, 8):
        gad = figure3(g)
        exact = exact_active_time(gad.instance, g).cost
        adv = len(gad.witness["adversarial_slots"])
        assert is_feasible_slot_set(
            gad.instance, g, gad.witness["adversarial_slots"]
        )
        rows.append([g, exact, adv, f"{adv / exact:.3f}"])
    print(
        format_table(
            "Figure 3 — minimal feasible vs OPT (paper: (3g-2)/g -> 3)",
            ["g", "OPT", "adversarial minimal", "ratio"],
            rows,
        ),
        "\n",
    )

    # Section 3.5 --------------------------------------------------------
    rows = []
    for g in (2, 4, 8, 16):
        gad = lp_gap(g)
        lp = solve_active_time_lp(gad.instance, g).objective
        ip = exact_active_time(gad.instance, g).cost
        rounded = round_active_time(gad.instance, g).cost
        rows.append([g, f"{lp:.2f}", ip, rounded, f"{ip / lp:.3f}"])
    print(
        format_table(
            "Section 3.5 — LP integrality gap (paper: 2g/(g+1) -> 2)",
            ["g", "LP", "IP", "rounded", "gap"],
            rows,
        ),
        "\n",
    )

    # Figures 6/7 --------------------------------------------------------
    rows = []
    for g in (2, 3, 4):
        gad = figure6(g, eps=0.1)
        optimal = schedule_flexible(
            gad.instance, g, starts=gad.witness["optimal_starts"]
        ).total_busy_time
        adversarial = schedule_flexible(
            gad.instance, g, starts=gad.witness["adversarial_starts"]
        ).total_busy_time
        rows.append(
            [g, gad.facts["opt_busy_time"], f"{optimal:.2f}",
             f"{adversarial:.2f}", 6 * g]
        )
    print(
        format_table(
            "Figures 6/7 — GREEDYTRACKING gadget "
            "(paper: adversarial -> (6-o(eps))g, ratio -> 3)",
            ["g", "paper OPT", "GT@optimal placement",
             "GT@adversarial placement", "paper adversarial limit"],
            rows,
        ),
        "\n",
    )

    # Figure 8 -----------------------------------------------------------
    rows = []
    for eps in (0.4, 0.2, 0.1):
        gad = figure8(eps=eps, eps_prime=eps / 2)
        opt = exact_busy_time_interval(gad.instance, gad.g).total_busy_time
        cp = chain_peeling_two_approx(gad.instance, gad.g).total_busy_time
        rows.append(
            [eps, f"{opt:.2f}", gad.facts["adversarial_cost"],
             f"{gad.facts['adversarial_cost'] / opt:.3f}", f"{cp:.2f}"]
        )
    print(
        format_table(
            "Figure 8 — interval 2-approx tightness (paper: ratio -> 2)",
            ["eps", "OPT", "paper adversarial", "ratio", "chain peeling"],
            rows,
        ),
        "\n",
    )

    # Figure 9 -----------------------------------------------------------
    rows = []
    for g in (2, 4, 8):
        gad = figure9(g, eps=0.001)
        adv = pin_instance(gad.instance, gad.witness["adversarial_starts"])
        optp = pin_instance(gad.instance, gad.witness["optimal_starts"])
        dp = compute_demand_profile(adv, g).cost
        op = compute_demand_profile(optp, g).cost
        rows.append([g, f"{op:.3f}", f"{dp:.3f}", f"{dp / op:.3f}"])
    print(
        format_table(
            "Figure 9 — DP profile vs optimal profile (paper: -> 2)",
            ["g", "optimal profile", "DP profile", "ratio"],
            rows,
        ),
        "\n",
    )

    # Figures 10-12 ------------------------------------------------------
    rows = []
    for g in (2, 3, 4):
        gad = figure10(g)
        cp = schedule_flexible(
            gad.instance, g, starts=gad.witness["adversarial_starts"],
            algorithm="chain_peeling",
        ).total_busy_time
        gt = schedule_flexible(
            gad.instance, g, starts=gad.witness["adversarial_starts"],
            algorithm="greedy_tracking",
        ).total_busy_time
        rows.append(
            [g, f"{gad.facts['opt_busy_time']:.2f}",
             gad.facts["adversarial_cost"],
             f"{gad.facts['adversarial_cost'] / gad.facts['opt_busy_time']:.3f}",
             f"{cp:.2f}", f"{gt:.2f}"]
        )
    print(
        format_table(
            "Figures 10-12 — flexible 4-approx tightness "
            "(paper: adversarial ratio -> 4; GREEDYTRACKING stays <= 3)",
            ["g", "paper OPT", "paper adversarial", "ratio",
             "chain peeling", "greedy tracking"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
