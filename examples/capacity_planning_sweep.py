#!/usr/bin/env python3
"""Capacity planning: how does the parallelism budget g shape the bill?

Both of the paper's models have `g` as the hardware knob — cores per node
(active time) or VM slots per host (busy time).  This script sweeps `g` for
a fixed workload and reports the cost curves, lower bounds and the point
where extra capacity stops paying, for:

* active time: LP bound / LP rounding / exact;
* busy time: demand profile / GREEDYTRACKING / chain peeling;
* preemptive busy time (what migration could add at each g).

Run:  python examples/capacity_planning_sweep.py [seed]
"""

import sys

import numpy as np

from repro import Instance
from repro.activetime import exact_active_time, round_active_time
from repro.analysis import format_table
from repro.busytime import (
    chain_peeling_two_approx,
    demand_profile_lower_bound,
    greedy_tracking,
    mass_lower_bound,
    pin_instance,
    preemptive_bounded,
    schedule_flexible,
)
from repro.instances import random_active_time_instance, random_flexible_instance


def active_time_sweep(rng: np.random.Generator) -> None:
    inst = random_active_time_instance(
        18, horizon=14, max_length=3, max_slack=4, rng=rng
    )
    rows = []
    for g in (1, 2, 3, 4, 6, 8):
        try:
            sol = round_active_time(inst, g)
        except RuntimeError:
            rows.append([g, "infeasible", "-", "-"])
            continue
        exact = exact_active_time(inst, g)
        rows.append(
            [g, f"{sol.lp_objective:.2f}", exact.cost, sol.cost]
        )
    print(
        format_table(
            f"Active time vs capacity — {inst.describe()}",
            ["g", "LP bound", "OPT", "LP rounding"],
            rows,
        )
    )
    print("-> once g exceeds the peak overlap, cost plateaus at the",
          "longest-chain bound\n")


def busy_time_sweep(rng: np.random.Generator) -> None:
    inst = random_flexible_instance(24, 26, max_length=5, max_slack=6, rng=rng)
    rows = []
    for g in (1, 2, 3, 4, 6, 8):
        gt = schedule_flexible(inst, g, algorithm="greedy_tracking")
        cp = schedule_flexible(inst, g, algorithm="chain_peeling")
        pre = preemptive_bounded(inst, g)
        pinned = pin_instance(inst, gt.starts)
        profile = demand_profile_lower_bound(pinned, g)
        rows.append(
            [g, f"{max(profile, mass_lower_bound(inst, g)):.2f}",
             f"{gt.total_busy_time:.2f}", f"{cp.total_busy_time:.2f}",
             f"{pre.total_busy_time:.2f}", gt.num_machines]
        )
    print(
        format_table(
            f"Busy time vs capacity — {inst.describe()}",
            ["g", "lower bound", "GREEDYTRACKING", "chain peeling",
             "preemptive (2x)", "machines (GT)"],
            rows,
        )
    )
    print("-> busy time decreases toward OPT_inf as g grows;",
          "machine count shrinks roughly as 1/g")


def main(seed: int = 5) -> None:
    rng = np.random.default_rng(seed)
    active_time_sweep(rng)
    busy_time_sweep(rng)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
