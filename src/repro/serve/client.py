"""Thin HTTP client for a ``repro serve`` endpoint.

Lets sweeps and scripts target a remote server with the same
vocabulary the in-process engine uses: requests are built from
:class:`~repro.core.jobs.Instance` objects, responses come back as
:class:`~repro.engine.workers.TaskResult` records.  Standard library
only, mirroring the server.

Transport notes:

* **Keep-alive.**  Each client keeps one persistent
  :class:`http.client.HTTPConnection` *per calling thread* (the
  distributed dispatcher drives one client from several window threads)
  and reuses it across requests, reconnecting transparently when a
  stale socket surfaces (a keep-alive connection the server closed
  while idle).  Compared to the old one-urllib-request-per-call
  transport this removes a TCP handshake from every task the fabric
  dispatches — and measurably cuts per-request latency for plain
  single-host use too.
* **Retry with backoff.**  Idempotent GETs (``/algos``, ``/healthz``,
  ``/stats``, ``/metrics``) retry transport failures and 5xx answers a
  bounded number of times with exponential backoff plus jitter, so a
  health probe racing a restarting server does not flap the fabric's
  host-up view.  POSTs never auto-retry beyond the single stale-socket
  reconnect — retry policy for solves belongs to the caller (the
  dispatcher), which knows whether re-dispatch is safe.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Mapping
from urllib.parse import urlsplit

from ..core.jobs import Instance
from ..engine.workers import TaskResult
from ..io import instance_to_payload

__all__ = ["ServeClientError", "ServeClient", "task_request"]


class ServeClientError(RuntimeError):
    """An error talking to the server.

    ``status`` carries the HTTP status for error *answers*; transport
    failures that never produced an HTTP response (connection refused,
    DNS, socket timeout) use ``status=0``.
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status

    @property
    def transient(self) -> bool:
        """Whether a retry could plausibly succeed (transport or 5xx)."""
        return self.status == 0 or self.status >= 500


def task_request(
    instance: Instance,
    problem: str,
    g: int,
    *,
    algorithm: str | None = None,
    params: Mapping[str, Any] | None = None,
    backend: str | None = None,
    timeout: float | None = None,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One wire-format task object for ``POST /solve`` or ``POST /batch``."""
    payload: dict[str, Any] = {
        "instance": instance_to_payload(instance),
        "problem": problem,
        "g": g,
    }
    if algorithm is not None:
        payload["algorithm"] = algorithm
    if params:
        payload["params"] = dict(params)
    if backend is not None:
        payload["backend"] = backend
    if timeout is not None:
        payload["timeout"] = timeout
    if meta:
        payload["meta"] = dict(meta)
    return payload


#: Exceptions that mean "this keep-alive socket is no longer usable" —
#: reconnect once and resend before declaring the host unreachable.
_STALE_SOCKET_ERRORS = (
    http.client.HTTPException,
    ConnectionError,
    BrokenPipeError,
    TimeoutError,
    OSError,
)


class ServeClient:
    """Talk to one ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8977"`` (trailing slash tolerated).
    http_timeout:
        Socket timeout per request, in seconds.  Batches stream, so
        this bounds silence between lines rather than total runtime.
    get_retries:
        Extra attempts for idempotent GETs after a transport failure or
        5xx answer (``0`` disables retry).  POST bodies are never
        auto-retried.
    backoff_base / backoff_cap:
        Exponential-backoff schedule for those retries: attempt ``k``
        sleeps ``min(backoff_base * 2**k, backoff_cap)`` scaled by a
        random jitter in [0.5, 1.0] (jitter keeps a fleet of probes
        from re-hammering a recovering server in lockstep).
    """

    def __init__(
        self,
        base_url: str,
        *,
        http_timeout: float = 300.0,
        get_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", "https"):
            raise ValueError(
                f"unsupported URL scheme {parts.scheme!r} in {base_url!r}; "
                "use http:// or https://"
            )
        if not parts.hostname:
            raise ValueError(f"no host in server URL {base_url!r}")
        self._scheme = parts.scheme
        self._host = parts.hostname
        self._port = parts.port
        self.http_timeout = http_timeout
        self.get_retries = max(0, int(get_retries))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        # One persistent connection per thread: http.client connections
        # are strictly serial (one request/response in flight), and the
        # fabric dispatcher shares one client between a host's window
        # threads.
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Connection lifecycle (per thread)
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            cls = (
                http.client.HTTPSConnection
                if self._scheme == "https"
                else http.client.HTTPConnection
            )
            conn = cls(self._host, self._port, timeout=self.http_timeout)
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        """Close the calling thread's persistent connection (if any).

        Other threads' connections close when their thread ends or via
        their own :meth:`close` call; the client remains usable after —
        the next request simply reconnects.
        """
        self._drop_connection()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _send(
        self, method: str, path: str, body: bytes | None
    ) -> http.client.HTTPResponse:
        """One request/response on the thread's persistent connection.

        A stale keep-alive socket (the server closed it while this
        client was idle) gets exactly one transparent reconnect-and-
        resend; a failure on the fresh connection is a real transport
        error.  Resending is safe even for POSTs here because the
        server's content-addressed cache makes ``/solve``/``/batch``
        idempotent — and the stale socket means the previous *response*
        channel died, not that this request ran twice.
        """
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                return conn.getresponse()
            except _STALE_SOCKET_ERRORS as exc:
                self._drop_connection()
                if attempt == 0 and self._is_stale(exc):
                    continue  # reconnect once, then resend
                raise ServeClientError(
                    f"cannot reach {self.base_url + path}: "
                    f"{type(exc).__name__}: {exc}",
                    status=0,
                ) from None
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _is_stale(exc: BaseException) -> bool:
        """Whether ``exc`` smells like a dead keep-alive socket.

        Connection *refused* (nobody listening) and timeouts are real
        failures worth surfacing immediately — retrying them just doubles
        the latency of every probe against a down host.
        """
        if isinstance(exc, (ConnectionRefusedError, TimeoutError)):
            return False
        return isinstance(
            exc,
            (
                http.client.RemoteDisconnected,
                http.client.CannotSendRequest,
                ConnectionResetError,
                BrokenPipeError,
            ),
        )

    def _open(self, method: str, path: str, body: bytes | None = None):
        """Issue one request; error answers raise :class:`ServeClientError`.

        The response body of an error answer is drained before raising
        so the keep-alive connection stays usable for the next request.
        """
        response = self._send(method, path, body)
        if response.status >= 400:
            try:
                detail = response.read().decode("utf-8", errors="replace")
            except _STALE_SOCKET_ERRORS:
                detail = ""
                self._drop_connection()
            try:
                message = json.loads(detail)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                message = detail.strip() or response.reason
            raise ServeClientError(message, response.status)
        return response

    @contextmanager
    def _reading(self, path: str, response) -> Iterator[None]:
        """Wrap response-body reads so mid-stream transport failures
        (socket timeout between chunks, dropped connection, truncated
        chunked encoding) surface as :class:`ServeClientError` too —
        callers handle one exception type end to end.  A body abandoned
        before EOF (an early-closed ``batch`` iterator) poisons the
        keep-alive connection, so it is dropped rather than reused."""
        try:
            yield
        except (TimeoutError, OSError, http.client.HTTPException) as exc:
            self._drop_connection()
            raise ServeClientError(
                f"connection to {self.base_url + path} failed mid-read: "
                f"{type(exc).__name__}: {exc}",
                status=0,
            ) from None
        finally:
            if not response.isclosed():
                # Unread bytes would bleed into the next request on this
                # connection; start fresh instead.
                self._drop_connection()

    def _get(self, path: str) -> bytes:
        """GET with bounded exponential-backoff retry (idempotent paths).

        Retries transport failures (``status == 0``) and 5xx answers up
        to ``get_retries`` times; 4xx answers are deterministic and
        surface immediately.
        """
        attempt = 0
        while True:
            try:
                response = self._open("GET", path)
                with self._reading(path, response):
                    return response.read()
            except ServeClientError as exc:
                if not exc.transient or attempt >= self.get_retries:
                    raise
                delay = min(
                    self.backoff_base * (2 ** attempt), self.backoff_cap
                )
                time.sleep(delay * (0.5 + 0.5 * random.random()))
                attempt += 1

    def _get_json(self, path: str) -> dict[str, Any]:
        return json.loads(self._get(path))

    # ------------------------------------------------------------------
    def algos(self) -> dict[str, Any]:
        """The server's solver and backend registries (``GET /algos``)."""
        return self._get_json("/algos")

    def health(self) -> dict[str, Any]:
        """Liveness, capacity and cache statistics (``GET /healthz``).

        The answer's ``jobs`` / ``queue_depth`` / ``streams_in_flight``
        fields are what the fabric dispatcher sizes per-host windows
        from.
        """
        return self._get_json("/healthz")

    def stats(self) -> dict[str, Any]:
        """The server's metrics digest as JSON (``GET /stats``)."""
        return self._get_json("/stats")

    def metrics(self) -> str:
        """The raw Prometheus exposition text (``GET /metrics``)."""
        return self._get("/metrics").decode("utf-8")

    def solve(
        self,
        instance: Instance,
        problem: str,
        g: int,
        *,
        algorithm: str | None = None,
        params: Mapping[str, Any] | None = None,
        backend: str | None = None,
        timeout: float | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> TaskResult:
        """Solve one instance remotely (``POST /solve``)."""
        return self.solve_payload(
            task_request(
                instance,
                problem,
                g,
                algorithm=algorithm,
                params=params,
                backend=backend,
                timeout=timeout,
                meta=meta,
            )
        )

    def solve_payload(self, payload: Mapping[str, Any]) -> TaskResult:
        """``POST /solve`` an already-built wire-format task object.

        The fabric dispatcher ships :class:`~repro.engine.workers.Task`
        objects it serialized once; this entry point skips re-encoding
        the instance per attempt.
        """
        body = json.dumps(dict(payload)).encode("utf-8")
        response = self._open("POST", "/solve", body)
        with self._reading("/solve", response):
            return TaskResult.from_record(json.loads(response.read()))

    def batch(
        self, requests: Iterable[Mapping[str, Any]]
    ) -> Iterator[TaskResult]:
        """Stream a batch (``POST /batch``), yielding results in task order.

        ``requests`` are wire-format task objects (see
        :func:`task_request`); results are yielded as lines arrive, so
        early waves can be consumed while the server is still solving.
        """
        body = "".join(
            json.dumps(dict(request)) + "\n" for request in requests
        ).encode("utf-8")
        response = self._open("POST", "/batch", body)
        with self._reading("/batch", response):
            for line in response:
                line = line.strip()
                if line:
                    yield TaskResult.from_record(json.loads(line))
