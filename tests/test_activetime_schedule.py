"""Unit tests for active-time schedules and verification."""

import pytest

from repro.activetime import (
    ActiveTimeSchedule,
    VerificationError,
    schedule_from_slots,
)
from repro.core import Instance
from repro.instances import random_active_time_instance


class TestScheduleBasics:
    def test_cost_counts_active_slots(self, tiny_instance):
        s = schedule_from_slots(tiny_instance, 2, [2, 3, 4])
        assert s.cost == 3

    def test_from_slots_verifies(self, tiny_instance):
        s = schedule_from_slots(tiny_instance, 2, range(1, 7))
        s.verify()

    def test_from_slots_infeasible_raises(self, tiny_instance):
        with pytest.raises(ValueError, match="infeasible"):
            schedule_from_slots(tiny_instance, 2, [1])

    def test_slot_loads(self, tiny_instance):
        s = schedule_from_slots(tiny_instance, 2, [2, 3, 4])
        loads = s.slot_loads()
        assert sum(loads.values()) == int(tiny_instance.total_length)
        assert max(loads.values()) <= 2

    def test_full_and_non_full_partition(self, tiny_instance):
        s = schedule_from_slots(tiny_instance, 2, [2, 3, 4])
        assert sorted(s.full_slots() + s.non_full_slots()) == [2, 3, 4]

    def test_jobs_in_slot(self, tiny_instance):
        s = schedule_from_slots(tiny_instance, 2, [2, 3, 4])
        for t in s.active_slots:
            for jid in s.jobs_in_slot(t):
                assert t in s.assignment[jid]


class TestVerificationCatchesMutations:
    def _base(self, tiny_instance) -> ActiveTimeSchedule:
        return schedule_from_slots(tiny_instance, 2, range(1, 7))

    def test_missing_job(self, tiny_instance):
        s = self._base(tiny_instance)
        broken = ActiveTimeSchedule(
            tiny_instance,
            2,
            s.active_slots,
            {k: v for k, v in s.assignment.items() if k != 0},
        )
        with pytest.raises(VerificationError, match="without assignment"):
            broken.verify()

    def test_short_assignment(self, tiny_instance):
        s = self._base(tiny_instance)
        assignment = dict(s.assignment)
        assignment[1] = assignment[1][:-1]
        broken = ActiveTimeSchedule(tiny_instance, 2, s.active_slots, assignment)
        with pytest.raises(VerificationError, match="units"):
            broken.verify()

    def test_duplicate_slot_for_job(self, tiny_instance):
        s = self._base(tiny_instance)
        assignment = dict(s.assignment)
        assignment[1] = (assignment[1][0],) * len(assignment[1])
        broken = ActiveTimeSchedule(tiny_instance, 2, s.active_slots, assignment)
        with pytest.raises(VerificationError, match="twice"):
            broken.verify()

    def test_inactive_slot_use(self, tiny_instance):
        s = schedule_from_slots(tiny_instance, 2, range(1, 7))
        assignment = dict(s.assignment)
        slots = tuple(t for t in s.active_slots if t not in assignment[2])
        broken = ActiveTimeSchedule(tiny_instance, 2, slots[:2], assignment)
        with pytest.raises(VerificationError):
            broken.verify()

    def test_outside_window(self, tiny_instance):
        s = self._base(tiny_instance)
        assignment = dict(s.assignment)
        assignment[0] = (5, 6)  # job 0 window is [0, 4)
        broken = ActiveTimeSchedule(tiny_instance, 2, s.active_slots, assignment)
        with pytest.raises(VerificationError, match="window"):
            broken.verify()

    def test_capacity_violation(self):
        inst = Instance.from_tuples([(0, 2, 1), (0, 2, 1)])
        broken = ActiveTimeSchedule(inst, 1, (1,), {0: (1,), 1: (1,)})
        with pytest.raises(VerificationError, match="capacity"):
            broken.verify()

    def test_unsorted_slots(self, tiny_instance):
        s = self._base(tiny_instance)
        broken = ActiveTimeSchedule(
            tiny_instance, 2, tuple(reversed(s.active_slots)), dict(s.assignment)
        )
        with pytest.raises(VerificationError, match="sorted"):
            broken.verify()

    def test_is_valid_wrapper(self, tiny_instance):
        s = self._base(tiny_instance)
        assert s.is_valid()
        broken = ActiveTimeSchedule(tiny_instance, 2, (), {})
        assert not broken.is_valid()


class TestRandomizedRoundTrips:
    def test_extraction_always_verifies(self, rng):
        for _ in range(15):
            inst = random_active_time_instance(7, 9, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                s = schedule_from_slots(inst, g, range(1, 10))
            except ValueError:
                continue
            s.verify()
