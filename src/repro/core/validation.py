"""Instance well-formedness checks shared by every algorithm entry point.

Each algorithm in the library states its preconditions (integral data, interval
jobs, positive capacity, ...) by calling the helpers here, so the error
messages are uniform and the checks are tested in one place.
"""

from __future__ import annotations

from .jobs import Instance

__all__ = [
    "require_capacity",
    "require_integral",
    "require_interval_jobs",
    "require_nonempty",
    "require_unit_jobs",
]


def require_capacity(g: int) -> int:
    """Validate the machine capacity ``g`` (positive integer)."""
    if not isinstance(g, int) or isinstance(g, bool):
        raise TypeError(f"capacity g must be an int, got {type(g).__name__}")
    if g < 1:
        raise ValueError(f"capacity g must be >= 1, got {g}")
    return g


def require_integral(instance: Instance, context: str = "") -> Instance:
    """Require integral releases, deadlines and lengths (active-time model)."""
    if not instance.is_integral:
        where = f" ({context})" if context else ""
        raise ValueError(
            "active-time algorithms require integral job parameters" + where
        )
    return instance


def require_interval_jobs(instance: Instance, context: str = "") -> Instance:
    """Require every job to be an interval job (rigid start time)."""
    if not instance.all_interval:
        flexible = [j.id for j in instance.jobs if not j.is_interval]
        where = f" ({context})" if context else ""
        raise ValueError(
            f"expected interval jobs only{where}; flexible job ids: {flexible[:10]}"
        )
    return instance


def require_unit_jobs(instance: Instance, context: str = "") -> Instance:
    """Require every job to have unit length."""
    if not instance.all_unit:
        where = f" ({context})" if context else ""
        raise ValueError("expected unit-length jobs only" + where)
    return instance


def require_nonempty(instance: Instance) -> Instance:
    """Require at least one job (algorithms return trivial answers otherwise,
    but several gadget constructions would silently degenerate)."""
    if instance.n == 0:
        raise ValueError("instance has no jobs")
    return instance
