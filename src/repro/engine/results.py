"""Streaming JSONL result store and aggregation into report tables.

``write_results`` appends one JSON object per line as results arrive;
``read_results`` streams them back.  ``aggregate`` folds a result set
into the existing :mod:`repro.analysis` machinery: per
``(problem, algorithm, g)`` cell it reports counts, mean objective and
the empirical approximation ratio against the recorded lower bound.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..analysis.ratios import RatioSample, summarize_groups
from ..analysis.report import format_table
from .workers import TaskResult

__all__ = [
    "write_results",
    "read_results",
    "aggregate",
    "aggregate_table",
    "group_warm_stats",
    "warm_stats_table",
]


def write_results(
    results: Iterable[TaskResult], path: str | Path, *, append: bool = False
) -> int:
    """Write results as JSONL; returns the number of lines written."""
    p = Path(path)
    if p.parent != Path("."):
        p.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with p.open("a" if append else "w") as fh:
        for result in results:
            fh.write(json.dumps(result.to_record(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_results(path: str | Path) -> Iterator[TaskResult]:
    """Stream results back out of a JSONL file."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield TaskResult.from_record(json.loads(line))


def _cell_label(result: TaskResult) -> str:
    return f"{result.problem}/{result.algorithm} g={result.g}"


def aggregate(results: Sequence[TaskResult]) -> list[dict]:
    """Fold results into per-``(problem, algorithm, g)`` summary rows."""
    ok = [r for r in results if r.ok and r.objective is not None]
    errors: dict[str, int] = {}
    cached: dict[str, int] = {}
    objectives: dict[str, list[float]] = {}
    elapsed: dict[str, float] = {}
    for r in results:
        label = _cell_label(r)
        errors.setdefault(label, 0)
        cached.setdefault(label, 0)
        elapsed[label] = elapsed.get(label, 0.0) + r.elapsed
        if not r.ok:
            errors[label] += 1
        if r.cached:
            cached[label] += 1
    samples = []
    for r in ok:
        label = _cell_label(r)
        objectives.setdefault(label, []).append(r.objective)
        baseline = float(r.metrics.get("lower_bound", 0.0) or 0.0)
        if baseline > 0:
            samples.append(
                RatioSample(label=label, cost=r.objective, baseline=baseline)
            )
    ratio_by_label = {s.label: s for s in summarize_groups(samples)}

    rows = []
    for label in sorted(errors):
        objs = objectives.get(label, [])
        ratio = ratio_by_label.get(label)
        rows.append(
            {
                "cell": label,
                "count": len(objs) + errors[label],
                "errors": errors[label],
                "cached": cached[label],
                "mean_objective": (
                    sum(objs) / len(objs) if objs else float("nan")
                ),
                "mean_ratio": ratio.mean if ratio else float("nan"),
                "max_ratio": ratio.worst if ratio else float("nan"),
                "elapsed": elapsed[label],
            }
        )
    return rows


def group_warm_stats(results: Sequence[TaskResult]) -> list[dict]:
    """Warm-start hit rates per structure group.

    Uses the ``warm_start_used`` / ``structure_hit`` booleans the solver
    layer tags onto result metrics for tasks that went through an LP/MILP
    backend.  Results without a structure group fold into a ``"-"`` row;
    cached results are excluded (they did not solve anything this run).
    Rows are sorted by group label.
    """
    cells: dict[str, dict[str, int]] = {}
    for r in results:
        if r.cached or "warm_start_used" not in r.metrics:
            continue
        group = r.meta.get("structure_group") or "-"
        cell = cells.setdefault(
            group, {"solves": 0, "warm": 0, "structure_hits": 0}
        )
        cell["solves"] += 1
        cell["warm"] += bool(r.metrics.get("warm_start_used"))
        cell["structure_hits"] += bool(r.metrics.get("structure_hit"))
    return [
        {
            "group": group,
            **cell,
            "warm_rate": cell["warm"] / cell["solves"],
        }
        for group, cell in sorted(cells.items())
    ]


def warm_stats_table(results: Sequence[TaskResult], title: str) -> str:
    """Render :func:`group_warm_stats` rows as a report table."""
    rows = group_warm_stats(results)
    return format_table(
        title,
        ["group", "solves", "warm", "struct hit", "warm rate"],
        [
            [
                row["group"],
                row["solves"],
                row["warm"],
                row["structure_hits"],
                row["warm_rate"],
            ]
            for row in rows
        ],
    )


def aggregate_table(results: Sequence[TaskResult], title: str) -> str:
    """Render :func:`aggregate` rows as a report table."""
    rows = aggregate(results)
    return format_table(
        title,
        ["cell", "n", "err", "hit", "mean obj", "mean r/LB", "max r/LB", "sec"],
        [
            [
                row["cell"],
                row["count"],
                row["errors"],
                row["cached"],
                row["mean_objective"],
                row["mean_ratio"],
                row["max_ratio"],
                row["elapsed"],
            ]
            for row in rows
        ],
    )
