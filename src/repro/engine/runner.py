"""`BatchRunner` — shard a stream of solve tasks across a worker pool.

Design points:

* **Deterministic ordering** — results come back in task order no
  matter which worker finished first, so parallel and serial runs of
  the same task list produce identical records (modulo timings).
* **Incremental delivery** — :meth:`BatchRunner.run_stream` yields each
  result the moment it *and all its predecessors* are done, instead of
  holding finished work hostage to the slowest task in a batch.
  :meth:`BatchRunner.run` is simply the fully-collected stream.
* **Persistent workers** — the process pool and the watchdog workers
  belong to the runner, not to a single call: successive ``run`` /
  ``run_stream`` calls reuse warm workers instead of re-spawning
  interpreters per wave.  Use the runner as a context manager (or call
  :meth:`close`) to release them deterministically.
* **Cache first** — tasks whose content digest is already in the
  :class:`~repro.engine.cache.ResultCache` never reach the pool.
* **Graceful failure** — a solver error becomes a ``TaskResult`` with
  ``ok=False`` (annotated with digest and seed by the worker); it never
  kills the batch.  A worker OOM-killed under the plain process pool
  breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`;
  affected tasks get positioned failure results and the pool is rebuilt
  for the remaining tasks instead of aborting the batch.
* **Hard timeouts** — when any task carries a deadline, execution
  switches to a *watchdog pool*: dedicated worker processes served
  over pipes, with the parent terminating and replacing any worker that
  overruns its task's budget (``SIGALRM`` cannot interrupt a solver
  stuck inside HiGHS C code; killing the process can).  The task gets a
  ``timeout`` result and the batch continues on a fresh worker.
* **Sticky structure affinity** — tasks tagged with a
  ``structure_group`` (sweep chains of near-identical LP/MILP
  structures) are parent-dispatched through the watchdog pool with the
  group bound to one worker process, so a resolve-capable solver
  backend's resident-model cache serves the whole warm-start chain;
  affinity is best-effort and never idles a worker while work is
  queued.
* **Clean interrupt** — ``KeyboardInterrupt`` cancels outstanding
  futures and shuts the pool down without waiting, so Ctrl-C leaves no
  orphaned workers behind.

Thread safety: concurrent ``run_stream`` calls from different threads
(the serving front end does this) share the persistent pools safely —
the executor is guarded by a lock and watchdog workers are leased from
a shared idle list.  Every stream carries its own :class:`StreamStats`
(exposed as ``ResultStream.stats``), so concurrent streams never trample
each other's counters; the runner-level ``last_cache_hits`` /
``last_watchdog_kills`` attributes are kept as a convenience mirror of
the *most recently finished* stream and are only meaningful when calls
do not overlap.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as connection_wait
from typing import Deque, Iterator, Sequence

from ..obs import REGISTRY as OBS
from .cache import ResultCache
from .workers import Task, TaskResult, execute_task, failure_result, worker_loop

__all__ = [
    "BatchRunner", "PRIORITY_URGENT", "ResultStream", "StreamStats",
]

_TASKS = OBS.counter(
    "repro_tasks_total",
    "Tasks completed, by terminal status",
    ("status",),
)
_TASK_SECONDS = OBS.histogram(
    "repro_task_seconds",
    "End-to-end task latency (worker solve, excluding queue wait)",
    ("backend", "algorithm"),
)
_QUEUE_WAIT = OBS.histogram(
    "repro_queue_wait_seconds",
    "Time tasks spent queued before dispatch to a worker",
)
_QUEUE_DEPTH = OBS.gauge(
    "repro_queue_depth",
    "Tasks queued and not yet dispatched, across all live streams",
)
_STREAMS = OBS.gauge(
    "repro_streams_in_flight",
    "run_stream calls currently active",
)
_STREAM_HITS = OBS.counter(
    "repro_stream_cache_hits_total",
    "Task results served from the result cache or in-run dedupe",
)
_LEASES = OBS.counter(
    "repro_pool_leases_total",
    "Watchdog workers leased to streams",
)
_STEALS = OBS.counter(
    "repro_pool_steals_total",
    "Structure-affine tasks stolen by a worker outside their group",
)
_KILLS = OBS.counter(
    "repro_watchdog_kills_total",
    "Worker processes terminated by the deadline watchdog",
)
_WARMUPS = OBS.counter(
    "repro_pool_warmups_total",
    "Watchdog workers pre-spawned by warm-up (before any request)",
)
_REAPED = OBS.counter(
    "repro_pool_reaped_total",
    "Idle watchdog workers reaped by the idle-TTL reaper",
)

#: ``run_stream(..., priority=PRIORITY_URGENT)`` marks a stream as
#: latency-sensitive: urgent acquirers take freed workers ahead of bulk
#: streams, and a bulk stream sheds one worker to a waiting urgent
#: stream at its next task completion.  The serving layer uses this for
#: ``/solve`` so a one-task request never queues behind a large
#: ``/batch`` for a worker lease.
PRIORITY_URGENT = 1


class StreamStats:
    """Counters and timing state owned by one ``run_stream`` call.

    Each stream gets its own instance, so two streams running
    concurrently (the serving front end) cannot trample each other the
    way the old runner-level ``last_cache_hits`` attribute could.  All
    methods are called from the single thread consuming the stream;
    only the process-wide gauges they update are shared.
    """

    def __init__(self, total: int) -> None:
        #: Total number of tasks this stream was asked to produce.
        self.total = total
        #: Results served from the cache or by in-run digest dedupe.
        self.cache_hits = 0
        #: Workers the deadline watchdog killed on this stream's behalf.
        self.watchdog_kills = 0
        #: Results that came back ``ok=False``.
        self.failures = 0
        #: Results that went through a worker (not cache) and finished.
        self.completed = 0
        self._lookup: dict[int, float] = {}   # pos -> cache-lookup secs
        self._enqueued: dict[int, float] = {}  # pos -> enqueue perf time
        self._waits: dict[int, float] = {}     # pos -> queue-wait secs
        self._killed: set[int] = set()
        self._open = False
        self._finished = False

    # -- planning/runtime hooks (single consumer thread) ----------------
    def record_lookup(self, pos: int, dur: float) -> None:
        self._lookup[pos] = dur

    def record_hit(self) -> None:
        self.cache_hits += 1
        _STREAM_HITS.inc()

    def enqueue(self, pos: int) -> None:
        self._enqueued[pos] = time.perf_counter()
        _QUEUE_DEPTH.inc()

    def dispatch(self, pos: int) -> None:
        start = self._enqueued.pop(pos, None)
        if start is None:
            return
        self._waits[pos] = wait = time.perf_counter() - start
        _QUEUE_WAIT.observe(wait)
        _QUEUE_DEPTH.dec()

    def record_kill(self, pos: int) -> None:
        self.watchdog_kills += 1
        self._killed.add(pos)
        _KILLS.inc()

    def was_killed(self, pos: int) -> bool:
        return pos in self._killed

    def take_wait(self, pos: int) -> float | None:
        return self._waits.pop(pos, None)

    def take_lookup(self, pos: int) -> float | None:
        return self._lookup.pop(pos, None)

    # -- lifecycle -------------------------------------------------------
    def open(self) -> None:
        if not self._open:
            self._open = True
            _STREAMS.inc()

    def finish(self) -> None:
        """Settle the process-wide gauges; idempotent."""
        if self._finished:
            return
        self._finished = True
        for _ in self._enqueued:
            _QUEUE_DEPTH.dec()
        self._enqueued.clear()
        if self._open:
            _STREAMS.dec()

    def as_dict(self) -> dict[str, int]:
        return {
            "total": self.total,
            "cache_hits": self.cache_hits,
            "completed": self.completed,
            "failures": self.failures,
            "watchdog_kills": self.watchdog_kills,
        }


class ResultStream:
    """Iterator over a stream's results, carrying its :class:`StreamStats`.

    Behaves exactly like the generator :meth:`BatchRunner.run_stream`
    used to return (``for result in stream``, ``stream.close()``), plus
    a ``stats`` attribute that is safe to read while the stream runs and
    authoritative once it ends.
    """

    def __init__(self, gen: Iterator[TaskResult], stats: StreamStats) -> None:
        self._gen = gen
        self.stats = stats

    def __iter__(self) -> "ResultStream":
        return self

    def __next__(self) -> TaskResult:
        return next(self._gen)

    def close(self) -> None:
        try:
            self._gen.close()
        finally:
            self.stats.finish()

    def __del__(self) -> None:  # abandoned without close(): settle gauges
        try:
            self.close()
        except Exception:
            pass


@dataclass
class _WatchdogWorker:
    """One dedicated worker process plus its in-flight task bookkeeping."""

    proc: mp.process.BaseProcess
    conn: object  # parent end of the pipe
    pos: int = -1
    task: Task | None = None
    started: float = field(default=0.0)
    deadline: float | None = None
    #: Monotonic time this worker was returned to the idle pool; the
    #: idle-TTL reaper compares against it.
    idle_since: float = field(default=0.0)

    @classmethod
    def spawn(cls, ctx) -> "_WatchdogWorker":
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=worker_loop, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return cls(proc=proc, conn=parent_conn)

    def dispatch(self, pos: int, task: Task, grace: float) -> None:
        self.conn.send(task)
        self.pos = pos
        self.task = task
        self.started = time.monotonic()
        self.deadline = (
            self.started + task.timeout + grace
            if task.timeout is not None
            else None
        )

    def collect(self) -> TaskResult | None:
        """The worker's answer, or ``None`` when the process died."""
        try:
            return self.conn.recv()
        except (EOFError, OSError):
            return None

    def clear(self) -> None:
        self.pos, self.task, self.deadline = -1, None, None

    def replace(self, ctx) -> "_WatchdogWorker":
        """Kill this worker and hand back a fresh one."""
        self.kill()
        return _WatchdogWorker.spawn(ctx)

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=1.0)

    def shutdown(self) -> None:
        """Polite stop for idle workers; force-kill anything still busy."""
        if self.task is None and self.proc.is_alive():
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        self.kill()


class BatchRunner:
    """Run many solve tasks, optionally in parallel, with caching.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` runs everything in-process (useful
        for debugging and required for solvers registered only in the
        current process).
    cache:
        Optional result cache consulted before dispatch and updated
        with every successful result.
    watchdog_grace:
        Extra seconds the parent allows past a task's ``timeout`` before
        terminating the worker — headroom for the in-worker ``SIGALRM``
        to fire first (it produces a cheaper, stack-annotated failure).
    idle_ttl:
        Reap watchdog workers that sit idle in the shared pool for this
        many seconds, so a quiet long-lived runner (a serving host)
        releases its worker processes instead of holding them forever.
        ``None`` (the default) keeps idle workers warm indefinitely —
        the historical behavior.  Reaped capacity is rebuilt lazily on
        the next lease (or explicitly via :meth:`warm_up`).

    Worker processes persist across calls; use the runner as a context
    manager (``with BatchRunner(jobs=4) as runner: ...``) or call
    :meth:`close` to release them.  A closed runner may be reused — the
    pools are rebuilt lazily on the next call.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        *,
        watchdog_grace: float = 1.0,
        idle_ttl: float | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if watchdog_grace < 0:
            raise ValueError(
                f"watchdog_grace must be >= 0, got {watchdog_grace}"
            )
        if idle_ttl is not None and idle_ttl <= 0:
            raise ValueError(f"idle_ttl must be > 0, got {idle_ttl}")
        self.jobs = jobs
        self.cache = cache
        self.watchdog_grace = watchdog_grace
        self.idle_ttl = idle_ttl
        #: Number of cache hits in the most recent :meth:`run`.
        self.last_cache_hits = 0
        #: Workers killed by the watchdog in the most recent :meth:`run`.
        self.last_watchdog_kills = 0
        # Persistent plain process pool (no-timeout parallel path).
        self._executor: ProcessPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        # Persistent watchdog workers, leased to streams: ``_wd_idle``
        # holds workers not currently owned by any stream, ``_wd_total``
        # counts every live worker (idle + leased) against ``jobs``,
        # ``_wd_waiters`` counts streams blocked for a worker (holders
        # shed one to them per completion — fairness), ``_wd_open``
        # flips off in :meth:`close` so late releases from in-flight
        # streams shut workers down instead of re-pooling them.
        # ``_wd_urgent_waiters`` is the second level of the lease queue:
        # while an urgent stream waits, bulk acquirers leave idle
        # workers alone and bulk holders shed one at their next task
        # completion, so a ``/solve``-sized stream gets a worker within
        # roughly one task duration of a busy ``/batch``.
        self._wd_cond = threading.Condition()
        self._wd_idle: list[_WatchdogWorker] = []
        self._wd_total = 0
        self._wd_waiters = 0
        self._wd_urgent_waiters = 0
        self._wd_open = True
        self._reaper: threading.Thread | None = None
        self._reaper_stop: threading.Event | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release the persistent worker pools.

        Safe to call repeatedly; the runner remains usable afterwards
        (pools are rebuilt lazily).  Workers leased to a stream that is
        still being consumed are released by that stream's own cleanup,
        not here.
        """
        self._discard_executor(cancel=True)
        with self._wd_cond:
            reaper_stop, self._reaper_stop = self._reaper_stop, None
            self._reaper = None
            idle, self._wd_idle = self._wd_idle, []
            self._wd_total -= len(idle)
            # Workers still leased to a draining stream are not in the
            # idle list; the closed flag makes their eventual release
            # shut them down rather than re-pool them on a closed
            # runner.  The next acquire reopens the pool.
            self._wd_open = False
            self._wd_cond.notify_all()
        if reaper_stop is not None:
            reaper_stop.set()
        for worker in idle:
            worker.shutdown()

    # ------------------------------------------------------------------
    # Pool warm-up and idle-TTL reaping
    # ------------------------------------------------------------------
    def warm_up(self, count: int | None = None) -> int:
        """Pre-spawn watchdog workers so the first request pays no spawn cost.

        Spawns up to ``count`` (default ``jobs``) workers into the
        shared idle pool, counting existing workers against the target;
        answers the number actually spawned.  ``jobs=1`` runners solve
        in-process and never use the pool, so warm-up is a no-op there.
        """
        if self.jobs <= 1:
            return 0
        want = self.jobs if count is None else min(count, self.jobs)
        ctx = mp.get_context()
        with self._wd_cond:
            self._wd_open = True
            reserve = max(0, want - self._wd_total)
            self._wd_total += reserve
        spawned: list[_WatchdogWorker] = []
        try:
            for _ in range(reserve):
                spawned.append(_WatchdogWorker.spawn(ctx))
        except BaseException:
            with self._wd_cond:
                self._wd_total -= reserve - len(spawned)
                self._wd_cond.notify_all()
            self._wd_release(spawned)
            raise
        self._wd_release(spawned)
        if spawned:
            _WARMUPS.inc(len(spawned))
        return len(spawned)

    def _ensure_reaper(self) -> None:
        """Start the idle-TTL reaper thread if configured and not running."""
        if self.idle_ttl is None:
            return
        with self._wd_cond:
            if not self._wd_open:
                return
            if self._reaper is not None and self._reaper.is_alive():
                return
            stop = threading.Event()
            self._reaper_stop = stop
            self._reaper = threading.Thread(
                target=self._reap_loop,
                args=(stop,),
                daemon=True,
                name="repro-pool-reaper",
            )
            self._reaper.start()

    def _reap_loop(self, stop: threading.Event) -> None:
        """Shut down idle watchdog workers whose TTL has lapsed."""
        ttl = self.idle_ttl
        interval = max(0.05, min(ttl / 2.0, 1.0))
        while not stop.wait(interval):
            now = time.monotonic()
            with self._wd_cond:
                if not self._wd_open:
                    continue
                keep = [
                    w for w in self._wd_idle
                    if now - w.idle_since < ttl
                ]
                reap = [
                    w for w in self._wd_idle
                    if now - w.idle_since >= ttl
                ]
                if reap:
                    self._wd_idle = keep
                    self._wd_total -= len(reap)
                    self._wd_cond.notify_all()
            for worker in reap:
                worker.shutdown()
            if reap:
                _REAPED.inc(len(reap))

    # ------------------------------------------------------------------
    def run(
        self, tasks: Sequence[Task], *, priority: int = 0
    ) -> list[TaskResult]:
        """Execute ``tasks`` and return results in task order.

        Tasks sharing a content digest are solved once per run: the
        first occurrence executes, later ones reuse its result (marked
        ``cached``) even when no :class:`ResultCache` is configured.
        """
        return list(self.run_stream(tasks, priority=priority))

    def run_stream(
        self, tasks: Sequence[Task], *, priority: int = 0
    ) -> ResultStream:
        """Yield results for ``tasks`` in task order, incrementally.

        Each result is yielded the moment it and every earlier task's
        result is known — one slow task delays its successors' *yield*
        but never their execution, and everything before it streams out
        immediately.  Shares all of :meth:`run`'s semantics: cache-first
        lookup, one solve per digest per run with ``cached`` reuse,
        failure retry for duplicates, watchdog timeouts, and exactly one
        result per task.

        Planning (cache lookups, dedupe) happens eagerly at call time;
        execution starts when iteration does.  Closing the iterator
        early cancels tasks that have not been dispatched and discards
        in-flight work.

        The stream is pull-driven: watchdog deadline kills for in-flight
        tasks are processed while the consumer iterates, so a consumer
        that stops pulling defers them until it resumes or closes the
        stream (the serving layer bounds this with a write-stall timeout
        that closes the stream).

        The returned :class:`ResultStream` exposes per-stream counters
        as ``.stats`` — the race-free replacement for the runner-level
        ``last_cache_hits`` / ``last_watchdog_kills`` mirrors.

        ``priority`` shapes watchdog-pool lease arbitration only:
        streams at :data:`PRIORITY_URGENT` (or above) take freed workers
        ahead of bulk (priority ``0``) streams, and a bulk stream
        holding workers sheds one to a waiting urgent stream at its next
        task completion.  It never reorders results within a stream.
        """
        tasks = list(tasks)
        stats = StreamStats(total=len(tasks))
        results: list[TaskResult | None] = [None] * len(tasks)
        work: Deque[tuple[int, Task]] = deque()
        first_by_digest: dict[str, int] = {}
        dups_by_first: dict[int, list[int]] = {}

        for pos, task in enumerate(tasks):
            started = time.perf_counter()
            hit = self._cache_lookup(task)
            lookup = time.perf_counter() - started
            if hit is not None:
                results[pos] = self._mark_hit(hit, lookup)
                stats.record_hit()
                _TASKS.labels(status="cached").inc()
                continue
            stats.record_lookup(pos, lookup)
            first = first_by_digest.get(task.digest)
            if first is not None:
                dups_by_first.setdefault(first, []).append(pos)
                continue
            first_by_digest[task.digest] = pos
            work.append((pos, task))
            stats.enqueue(pos)

        # Convenience mirror for non-overlapping callers; updated again
        # when the stream finishes (dup reuse also counts as a hit).
        self.last_cache_hits = stats.cache_hits
        self.last_watchdog_kills = 0
        stats.open()
        return ResultStream(
            self._stream(
                tasks, results, work, dups_by_first, stats, priority
            ),
            stats,
        )

    # ------------------------------------------------------------------
    def _stream(
        self,
        tasks: list[Task],
        results: list[TaskResult | None],
        work: Deque[tuple[int, Task]],
        dups_by_first: dict[int, list[int]],
        stats: StreamStats,
        priority: int = 0,
    ) -> Iterator[TaskResult]:
        """Drive a strategy's completion events into an ordered stream.

        The strategy generator yields ``(pos, result)`` events in
        completion order; this merger stores them, resolves duplicate
        positions (reuse on success — mirroring :meth:`_cache_store`'s
        policy, failures such as timeouts are *retried* by appending the
        duplicate to ``work``, never reused), and emits results in task
        order as soon as each prefix is complete.
        """
        emitted = 0
        total = len(tasks)
        events = self._pick_strategy(tasks, work)(work, stats, priority)
        try:
            # Cache hits at the head of the list stream out immediately,
            # before the first solve completes.
            while emitted < total and results[emitted] is not None:
                yield results[emitted]
                emitted += 1
            for pos, result in events:
                if results[pos] is not None:
                    raise RuntimeError(
                        f"execution strategy produced a second result for "
                        f"task position {pos}; results would be misaligned"
                    )
                result = self._finish_result(pos, result, stats)
                results[pos] = result
                self._cache_store(result)
                for dup in dups_by_first.pop(pos, ()):
                    if result.ok:
                        results[dup] = self._reanchor(result, tasks[dup])
                        stats.record_hit()
                        _TASKS.labels(status="cached").inc()
                    else:
                        work.append((dup, tasks[dup]))
                        stats.enqueue(dup)
                while emitted < total and results[emitted] is not None:
                    yield results[emitted]
                    emitted += 1
        finally:
            events.close()
            stats.finish()
            self.last_cache_hits = stats.cache_hits
            self.last_watchdog_kills = stats.watchdog_kills
        if emitted < total:
            # A strategy lost track of a task (worker died in a way no
            # handler caught): positioned failures, never dropped slots.
            for sealed in self._sealed(results, tasks)[emitted:]:
                yield sealed

    @staticmethod
    def _mark_hit(result: TaskResult, lookup: float) -> TaskResult:
        """Attach a minimal trace to a planning-time cache hit."""
        metrics = dict(result.metrics)
        metrics["trace"] = {
            "labels": {"algorithm": result.algorithm, "cached": True},
            "spans": [{"name": "cache_lookup", "dur": round(lookup, 6)}],
        }
        return replace(result, metrics=metrics)

    @staticmethod
    def _finish_result(
        pos: int, result: TaskResult, stats: StreamStats
    ) -> TaskResult:
        """Account one completed solve and fold parent-side trace spans.

        The worker only knows about the ``solving`` span; the parent
        owns the queue, so ``cache_lookup`` / ``queued`` / ``total``
        (and the ``watchdog_kill`` label) are merged here, where the
        result comes home.
        """
        wait = stats.take_wait(pos)
        lookup = stats.take_lookup(pos)
        killed = stats.was_killed(pos)
        stats.completed += 1
        if not result.ok:
            stats.failures += 1

        metrics = dict(result.metrics)
        payload = metrics.get("trace") or {}
        labels = dict(payload.get("labels") or {})
        labels.setdefault("algorithm", result.algorithm)
        labels["watchdog_kill"] = killed
        spans: list[dict] = []
        if lookup is not None:
            spans.append({"name": "cache_lookup", "dur": round(lookup, 6)})
        if wait is not None:
            spans.append({"name": "queued", "dur": round(wait, 6)})
        spans.extend(payload.get("spans") or ())
        spans.append({
            "name": "total",
            "dur": round(result.elapsed + (wait or 0.0) + (lookup or 0.0), 6),
        })
        metrics["trace"] = {"labels": labels, "spans": spans}

        if killed:
            status = "killed"
        elif result.ok:
            status = "ok"
        elif result.error and "timed out" in result.error:
            status = "timeout"
        else:
            status = "error"
        _TASKS.labels(status=status).inc()
        _TASK_SECONDS.labels(
            backend=metrics.get("backend", "none"),
            algorithm=result.algorithm,
        ).observe(result.elapsed)
        return replace(result, metrics=metrics)

    def _pick_strategy(
        self, tasks: Sequence[Task], work: Sequence[tuple[int, Task]]
    ):
        """Choose the execution strategy for one stream.

        Deadlined tasks need the watchdog even when only one is pending
        — the serial path's SIGALRM cannot interrupt a solver stuck in
        native code.  The deadline scan covers the *full* task list, not
        just the initial work queue: a duplicate position carries its
        own ``timeout`` (the digest excludes it), and its failure retry
        joins the queue mid-stream — it must find the watchdog already
        in charge, or its hard deadline would silently degrade to a soft
        one.  Structure-grouped tasks (sweep chains) also take the
        watchdog pool when parallel: its parent-mediated dispatch is
        what makes sticky worker affinity possible, so a chain of
        same-structure solves lands on one worker process and a
        resolve-capable backend re-solves warm (the plain
        ``ProcessPoolExecutor`` offers no control over which worker
        picks a task).  jobs=1 stays in-process by contract (solvers
        registered only in this process), so its timeouts remain soft.
        A single pending task without any deadline in play also runs
        in-process: spinning up a pool for it would cost more than the
        solve.
        """
        if self.jobs > 1 and any(t.timeout is not None for t in tasks):
            return self._stream_watchdog
        if self.jobs == 1 or len(work) <= 1:
            return self._stream_serial
        if any(t.structure_group is not None for t in tasks):
            return self._stream_watchdog
        return self._stream_parallel

    @staticmethod
    def _sealed(
        results: list[TaskResult | None], pending: Sequence[Task]
    ) -> list[TaskResult]:
        """``results`` with every empty slot turned into an explicit failure.

        A slot can only be empty if an execution strategy lost track of
        its task (e.g. a worker died in a way no handler caught); the
        task gets a visible ``ok=False`` record at its own position
        rather than being dropped and shifting its neighbours.
        """
        return [
            result
            if result is not None
            else failure_result(
                pending[pos],
                "runner produced no result for this task "
                "(worker lost without a recorded failure)",
                0.0,
            )
            for pos, result in enumerate(results)
        ]

    # ------------------------------------------------------------------
    # Serial strategy (jobs=1, or a single pending task)
    # ------------------------------------------------------------------
    def _stream_serial(
        self,
        work: Deque[tuple[int, Task]],
        stats: StreamStats,
        priority: int = 0,
    ) -> Iterator[tuple[int, TaskResult]]:
        while work:
            pos, task = work.popleft()
            stats.dispatch(pos)
            yield pos, execute_task(task)

    # ------------------------------------------------------------------
    # Plain process pool (parallel, no deadlines)
    # ------------------------------------------------------------------
    def _stream_parallel(
        self,
        work: Deque[tuple[int, Task]],
        stats: StreamStats,
        priority: int = 0,
    ) -> Iterator[tuple[int, TaskResult]]:
        """Fan tasks out to the persistent pool, yielding completions.

        A worker killed out-of-band (OOM killer, segfault) breaks the
        whole executor: every outstanding future raises
        ``BrokenProcessPool``.  Each such future becomes a positioned
        failure result, the dead pool is discarded, and tasks still in
        ``work`` continue on a lazily-rebuilt replacement — the batch
        survives the crash.
        """
        futures: dict = {}
        requeued: set[int] = set()
        try:
            while work or futures:
                while work and len(futures) < self.jobs:
                    pos, task = work.popleft()
                    stats.dispatch(pos)
                    futures[self._submit(task)] = (pos, task)
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    pos, task = futures.pop(future)
                    try:
                        result = future.result()
                    except (CancelledError, Exception) as exc:
                        # e.g. BrokenProcessPool, or CancelledError (a
                        # BaseException) when another stream's rebuild or
                        # close() cancelled our queued futures on the
                        # shared pool.  execute_task captures solver
                        # errors into the record, so an exception here is
                        # pool infrastructure failing.
                        if future.cancelled() and pos not in requeued:
                            # The task never ran — a neighbour stream's
                            # crash cancelled it on the shared pool.  One
                            # resubmission on the rebuilt pool, not a
                            # spurious failure in this stream's results.
                            requeued.add(pos)
                            work.append((pos, task))
                            stats.enqueue(pos)
                            continue
                        result = failure_result(
                            task,
                            "worker pool broke under this task "
                            f"({type(exc).__name__}: {exc})",
                            0.0,
                        )
                        self._discard_executor(cancel=False)
                    yield pos, result
        except GeneratorExit:
            # Abandoned stream (e.g. a disconnected client): drop queued
            # tasks; the pool itself stays warm for the next call.
            for future in futures:
                future.cancel()
            raise
        except KeyboardInterrupt:
            # shutdown(wait=False) would let in-flight tasks run to
            # completion, leaving workers grinding long after Ctrl-C —
            # kill them outright so nothing is orphaned.
            for future in futures:
                future.cancel()
            self._kill_executor()
            raise

    def _submit(self, task: Task):
        with self._executor_lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            try:
                return self._executor.submit(execute_task, task)
            except Exception:
                # The shared pool broke between completions (another
                # thread's future may already have reported it); rebuild
                # once and resubmit.
                executor, self._executor = self._executor, None
                executor.shutdown(wait=False, cancel_futures=True)
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
                return self._executor.submit(execute_task, task)

    def _discard_executor(self, *, cancel: bool) -> None:
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=cancel)

    def _kill_executor(self) -> None:
        """Terminate pool worker processes outright (Ctrl-C path)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            processes = list(getattr(executor, "_processes", {}).values())
            executor.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                process.terminate()
            for process in processes:
                process.join(timeout=1.0)

    # ------------------------------------------------------------------
    # Watchdog pool (used whenever any pending task carries a timeout)
    # ------------------------------------------------------------------
    def _stream_watchdog(
        self,
        work: Deque[tuple[int, Task]],
        stats: StreamStats,
        priority: int = 0,
    ) -> Iterator[tuple[int, TaskResult]]:
        """Run tasks on leased dedicated workers, killing any that overrun.

        Each worker owns one pipe and one task at a time, so the parent
        always knows which task a worker holds and since when.  On
        overrun (or worker death) the task gets a failure result, the
        process is terminated, and a replacement worker is spawned.

        Workers are leased from the runner-wide pool (capacity
        ``jobs``), so concurrent streams share capacity instead of
        over-spawning; idle workers are returned as soon as this stream
        has no queued work left for them.

        Dispatch is *sticky* for structure-grouped tasks: the first
        task of a group binds the group to its worker, and later tasks
        of the same group prefer that worker — which is what lets a
        resolve-capable backend's per-process resident-model cache
        serve the whole warm-start chain.  Affinity is best-effort and
        work-conserving: an idle worker never waits for "its" group
        while other work is queued (it steals and rebinds instead), so
        the worst case degrades to today's arbitrary placement, never
        to idling.
        """
        ctx = mp.get_context()
        held: list[_WatchdogWorker] = []
        affinity: dict[str, _WatchdogWorker] = {}
        try:
            while True:
                busy = [w for w in held if w.task is not None]
                if not work and not busy:
                    break
                urgent_waiting = (
                    priority < PRIORITY_URGENT
                    and self._wd_urgent_waiters > 0
                )
                if (len(held) > 1 and self._wd_waiters > 0) or (
                    urgent_waiting and held
                ):
                    # Fairness: another stream is blocked for a worker
                    # while this one holds several — shed one idle
                    # worker per round so a concurrent deadlined /solve
                    # is not pinned behind this whole batch.  An urgent
                    # waiter (a /solve behind a large /batch) is owed a
                    # worker even by a single-worker bulk holder: the
                    # urgent stream's task is short and priority-tagged
                    # acquisition hands the worker straight back.
                    idle = next(
                        (w for w in held if w.task is None), None
                    )
                    if idle is not None:
                        held.remove(idle)
                        self._wd_release([idle])
                if work:
                    need = min(self.jobs, len(busy) + len(work)) - len(held)
                    # Never grow while other streams at this stream's
                    # level (or above) are starved — we would snatch
                    # back the worker just shed to them.  Urgent streams
                    # only defer to other urgent waiters; an
                    # empty-handed stream still block-acquires its one
                    # guaranteed worker.
                    blocking_waiters = (
                        self._wd_waiters
                        if priority < PRIORITY_URGENT
                        else self._wd_urgent_waiters
                    )
                    if need > 0 and (not held or blocking_waiters == 0):
                        held.extend(
                            self._wd_acquire(
                                need, block=not held, priority=priority
                            )
                        )
                    for i, worker in enumerate(held):
                        if worker.task is not None or not work:
                            continue
                        pos, task = self._take_task(
                            work, worker, affinity, held
                        )
                        stats.dispatch(pos)
                        try:
                            worker.dispatch(pos, task, self.watchdog_grace)
                        except (BrokenPipeError, OSError):
                            # Worker died while idle: one fresh worker
                            # gets one retry, then the task is failed.
                            held[i] = worker = worker.replace(ctx)
                            try:
                                worker.dispatch(
                                    pos, task, self.watchdog_grace
                                )
                            except (BrokenPipeError, OSError):
                                yield pos, failure_result(
                                    task, "could not dispatch to worker", 0.0
                                )
                    busy = [w for w in held if w.task is not None]
                if not work:
                    # Tail of the stream: hand surplus idle workers back
                    # so a concurrent stream is not starved while we
                    # wait on our last in-flight tasks.
                    idle = [w for w in held if w.task is None]
                    if idle:
                        held = [w for w in held if w.task is not None]
                        self._wd_release(idle)
                if not busy:
                    continue  # nothing in flight; re-check work
                now = time.monotonic()
                wait_for = min(
                    (w.deadline - now for w in busy if w.deadline is not None),
                    default=None,
                )
                ready = connection_wait(
                    [w.conn for w in busy],
                    timeout=None if wait_for is None else max(wait_for, 0.0),
                )
                now = time.monotonic()
                for worker in busy:
                    if worker.conn in ready:
                        result = worker.collect()
                        pos = worker.pos
                        if result is None:  # worker died mid-task
                            result = failure_result(
                                worker.task,
                                "worker process died (killed or crashed)",
                                now - worker.started,
                            )
                            held[held.index(worker)] = worker.replace(ctx)
                        else:
                            worker.clear()
                        yield pos, result
                    elif (
                        worker.deadline is not None and now > worker.deadline
                    ):
                        pos, task = worker.pos, worker.task
                        elapsed = now - worker.started
                        stats.record_kill(pos)
                        held[held.index(worker)] = worker.replace(ctx)
                        yield pos, failure_result(
                            task,
                            f"timed out after {task.timeout:g}s "
                            "(worker terminated by watchdog)",
                            elapsed,
                        )
        finally:
            # Busy workers hold tasks whose results nobody will collect
            # (abandoned stream / interrupt): kill them rather than
            # return a mid-solve worker to the shared pool.
            for worker in held:
                if worker.task is not None:
                    self._wd_discard(worker)
            self._wd_release([w for w in held if w.task is None])

    @staticmethod
    def _take_task(
        work: Deque[tuple[int, Task]],
        worker: _WatchdogWorker,
        affinity: dict[str, _WatchdogWorker],
        held: list[_WatchdogWorker],
    ) -> tuple[int, Task]:
        """Pop the best queued task for ``worker``, sticky by group.

        Preference order: (1) a task whose structure group is already
        bound to this worker — the warm-chain continuation; (2) the
        first task whose group is unbound (or bound to a worker no
        longer held — killed, replaced, or shed to another stream) or
        that has no group; (3) the queue head, stealing it from the
        worker its group is bound to and rebinding.  (3) keeps dispatch
        work-conserving: affinity shapes placement, it never idles a
        worker while work is queued.  Callers must ensure ``work`` is
        non-empty.
        """
        own: int | None = None
        fallback: int | None = None
        for i, (_, task) in enumerate(work):
            group = task.structure_group
            if group is None:
                if fallback is None:
                    fallback = i
                continue
            bound = affinity.get(group)
            if bound is worker:
                own = i
                break
            if fallback is None and not any(w is bound for w in held):
                fallback = i
        if own is None and fallback is None:
            # Queue head belongs to another held worker's group — a
            # work-conserving steal that rebinds the group.
            _STEALS.inc()
        index = own if own is not None else (
            fallback if fallback is not None else 0
        )
        pos, task = work[index]
        del work[index]
        group = task.structure_group
        if group is not None:
            affinity[group] = worker
        return pos, task

    def _wd_acquire(
        self, want: int, *, block: bool, priority: int = 0
    ) -> list[_WatchdogWorker]:
        """Lease up to ``want`` workers from the shared watchdog pool.

        Reuses idle workers first, spawns new ones while the runner-wide
        count stays under ``jobs``.  With ``block=True`` (a stream that
        holds no worker yet) waits until at least one is available so
        every stream is guaranteed forward progress.

        The lease queue is two-level: while any urgent stream waits,
        bulk (``priority=0``) acquirers pass over the idle list — the
        freed worker goes to the urgent waiter, not back to the bulk
        stream that just shed it.  Bulk streams may still *spawn* under
        capacity (an urgent stream only waits once capacity is full, so
        the two never compete for a spawn slot).
        """
        ctx = mp.get_context()
        acquired: list[_WatchdogWorker] = []
        while True:
            with self._wd_cond:
                self._wd_open = True
                while (
                    self._wd_idle
                    and len(acquired) < want
                    and (
                        priority >= PRIORITY_URGENT
                        or self._wd_urgent_waiters == 0
                    )
                ):
                    acquired.append(self._wd_idle.pop())
                reserve = max(
                    0, min(want - len(acquired), self.jobs - self._wd_total)
                )
                self._wd_total += reserve
            # Spawn outside the lock (process startup is slow) against a
            # reserved slot count; a failed spawn must roll its unspawned
            # reservations back or the capacity slot would leak forever —
            # enough leaks and every acquire(block=True) deadlocks.
            spawned = 0
            try:
                while spawned < reserve:
                    acquired.append(_WatchdogWorker.spawn(ctx))
                    spawned += 1
            except BaseException:
                with self._wd_cond:
                    self._wd_total -= reserve - spawned
                    self._wd_cond.notify_all()
                self._wd_release(acquired)
                raise
            if acquired or not block:
                if acquired:
                    _LEASES.inc(len(acquired))
                return acquired
            with self._wd_cond:
                # Advertise that this stream is starved so current
                # holders shed a worker at their next completion; urgent
                # waiters are advertised separately so bulk streams both
                # shed to them and stand aside at the idle list.  The
                # registration stays held across wake-ups *and* the
                # re-check — deregistering between a wake-up and the
                # idle-list look would open a window for a bulk acquirer
                # to slip past a woken urgent waiter.
                self._wd_waiters += 1
                if priority >= PRIORITY_URGENT:
                    self._wd_urgent_waiters += 1
                try:
                    while True:
                        if self._wd_idle and (
                            priority >= PRIORITY_URGENT
                            or self._wd_urgent_waiters == 0
                        ):
                            acquired.append(self._wd_idle.pop())
                            break
                        if self._wd_total < self.jobs:
                            break  # capacity freed: spawn via the top
                        self._wd_cond.wait(timeout=0.05)
                finally:
                    self._wd_waiters -= 1
                    if priority >= PRIORITY_URGENT:
                        self._wd_urgent_waiters -= 1
            if acquired:
                _LEASES.inc(len(acquired))
                return acquired

    def _wd_release(self, workers: list[_WatchdogWorker]) -> None:
        """Return leased workers to the idle pool.

        Dead workers are dropped, and on a closed runner the workers are
        shut down instead of re-pooled — a stream that was still
        draining when :meth:`close` ran must not resurrect the pool.
        """
        if not workers:
            return
        shutdown: list[_WatchdogWorker] = []
        pooled = False
        now = time.monotonic()
        with self._wd_cond:
            for worker in workers:
                if not self._wd_open or not worker.proc.is_alive():
                    self._wd_total -= 1
                    shutdown.append(worker)
                else:
                    worker.idle_since = now
                    self._wd_idle.append(worker)
                    pooled = True
            self._wd_cond.notify_all()
        for worker in shutdown:
            worker.shutdown()
        if pooled:
            self._ensure_reaper()

    def _wd_discard(self, worker: _WatchdogWorker) -> None:
        """Kill a leased worker and free its capacity slot."""
        worker.kill()
        with self._wd_cond:
            self._wd_total -= 1
            self._wd_cond.notify_all()

    # ------------------------------------------------------------------
    def _cache_lookup(self, task: Task) -> TaskResult | None:
        if self.cache is None:
            return None
        record = self.cache.get(task.digest)
        if record is None:
            return None
        return self._reanchor(TaskResult.from_record(record), task)

    @staticmethod
    def _reanchor(result: TaskResult, task: Task) -> TaskResult:
        """A reused result re-anchored to this task's position/provenance.

        ``metrics`` is copied (and the original's trace dropped) so the
        reused record never aliases the original's dict — a consumer
        mutating one must not corrupt the other, and the original's
        queue/solve spans describe *its* execution, not this reuse.
        """
        metrics = dict(result.metrics)
        metrics.pop("trace", None)
        return TaskResult(
            index=task.index,
            digest=result.digest,
            problem=result.problem,
            algorithm=result.algorithm,
            g=result.g,
            n=result.n,
            ok=result.ok,
            objective=result.objective,
            metrics=metrics,
            error=result.error,
            elapsed=result.elapsed,
            cached=True,
            meta=task.meta or result.meta,
        )

    def _cache_store(self, result: TaskResult) -> None:
        # Failures are not cached: a timeout or transient error should be
        # retried on the next run rather than pinned forever.
        if self.cache is not None and result.ok:
            record = result.to_record()
            # The trace describes one specific execution (queue waits,
            # this process's pool) — replaying it on a future cache hit
            # would be a lie, so cached records carry no trace.
            metrics = dict(record.get("metrics") or {})
            metrics.pop("trace", None)
            record["metrics"] = metrics
            self.cache.put(result.digest, record)
