"""Active-time scheduling: Theorem 1 (minimal feasible) and Theorem 2 (LP rounding)."""

from .capacity import (
    capacity_frontier,
    minimum_feasible_capacity,
    window_pressure_bound,
)
from .charging import ChargeRecord, ChargingError, ChargingLedger
from .exact import brute_force_active_time, exact_active_time, lower_bound_mass
from .minimal_feasible import close_slots_greedily, minimal_feasible_schedule
from .multi_machine import (
    MultiMachineSolution,
    is_feasible_multiplicity,
    multi_machine_exact,
    multi_machine_lazy_greedy,
    multi_machine_lp_bound,
)
from .rightshift import RightShiftedSolution, classify_slot, right_shift, snap
from .rounding import IterationRecord, RoundedSolution, round_active_time
from .schedule import ActiveTimeSchedule, VerificationError, schedule_from_slots
from .unit_jobs import unit_jobs_optimal_schedule

__all__ = [
    "ActiveTimeSchedule",
    "ChargeRecord",
    "ChargingError",
    "ChargingLedger",
    "IterationRecord",
    "MultiMachineSolution",
    "RightShiftedSolution",
    "RoundedSolution",
    "VerificationError",
    "brute_force_active_time",
    "capacity_frontier",
    "classify_slot",
    "close_slots_greedily",
    "exact_active_time",
    "is_feasible_multiplicity",
    "lower_bound_mass",
    "minimal_feasible_schedule",
    "minimum_feasible_capacity",
    "multi_machine_exact",
    "multi_machine_lazy_greedy",
    "multi_machine_lp_bound",
    "right_shift",
    "round_active_time",
    "schedule_from_slots",
    "snap",
    "unit_jobs_optimal_schedule",
    "window_pressure_bound",
]
