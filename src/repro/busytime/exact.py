"""Exact busy-time optima for ratio measurement and cross-checks.

Busy time for interval jobs is NP-hard already at ``g = 2`` [14], so exact
values come from the HiGHS MILPs (:mod:`repro.lp.milp`) and, independently,
from a brute-force set-partition search on tiny instances — the test-suite
requires the two to agree.
"""

from __future__ import annotations

from typing import Iterator

from ..core.intervals import coverage_counts
from ..core.jobs import Instance, Job
from ..core.validation import require_capacity, require_interval_jobs
from ..lp.milp import (
    solve_busy_time_flexible_exact,
    solve_busy_time_interval_exact,
)
from .schedule import Bundle, BusyTimeSchedule
from .unbounded import pin_instance

__all__ = [
    "exact_busy_time_interval",
    "exact_busy_time_flexible",
    "brute_force_busy_time_interval",
]


def exact_busy_time_interval(
    instance: Instance, g: int, *, backend: str | None = None
) -> BusyTimeSchedule:
    """Optimal busy-time schedule for interval jobs (MILP).

    ``backend`` selects the MILP backend (see :mod:`repro.solvers`).
    """
    require_interval_jobs(instance)
    require_capacity(g)
    if instance.n == 0:
        return BusyTimeSchedule.from_bundle_jobs(instance, g, [])
    result = solve_busy_time_interval_exact(instance, g, backend=backend)
    groups = [
        [instance.job_by_id(jid) for jid in bundle]
        for bundle in result.witness["bundles"]
    ]
    return BusyTimeSchedule.from_bundle_jobs(instance, g, groups)


def exact_busy_time_flexible(instance: Instance, g: int) -> BusyTimeSchedule:
    """Optimal busy-time schedule for integral flexible jobs (MILP; tiny n)."""
    require_capacity(g)
    if instance.n == 0:
        return BusyTimeSchedule.from_bundle_jobs(instance, g, [])
    result = solve_busy_time_flexible_exact(instance, g)
    starts = {int(k): float(v) for k, v in result.witness["starts"].items()}
    machines = {int(k): int(v) for k, v in result.witness["machines"].items()}
    pinned = pin_instance(instance, starts)
    groups: dict[int, list[Job]] = {}
    for job in pinned.jobs:
        groups.setdefault(machines[job.id], []).append(job)
    schedule = BusyTimeSchedule(
        instance=instance,
        g=g,
        bundles=tuple(Bundle(tuple(v)) for _, v in sorted(groups.items())),
        starts=starts,
    )
    return schedule


def _partitions(items: list[Job]) -> Iterator[list[list[Job]]]:
    """All set partitions of ``items`` (restricted-growth enumeration)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1 :]
        yield [[first]] + partition


def brute_force_busy_time_interval(
    instance: Instance, g: int, *, max_jobs: int = 9
) -> BusyTimeSchedule:
    """Optimal interval busy time by enumerating all bundle partitions.

    Exponential (Bell numbers); guarded by ``max_jobs``.  Exists purely to
    cross-validate the MILP.
    """
    require_interval_jobs(instance)
    require_capacity(g)
    if instance.n == 0:
        return BusyTimeSchedule.from_bundle_jobs(instance, g, [])
    if instance.n > max_jobs:
        raise ValueError(
            f"brute force limited to {max_jobs} jobs, instance has {instance.n}"
        )

    def feasible(group: list[Job]) -> bool:
        cov = coverage_counts([j.window for j in group])
        return all(c <= g for _, c in cov)

    best: BusyTimeSchedule | None = None
    for partition in _partitions(list(instance.jobs)):
        if not all(feasible(group) for group in partition):
            continue
        candidate = BusyTimeSchedule.from_bundle_jobs(instance, g, partition)
        if best is None or candidate.total_busy_time < best.total_busy_time:
            best = candidate
    assert best is not None  # singleton bundles are always feasible
    return best
