"""Sparse construction of the active-time integer program and its relaxation.

Section 3 of the paper introduces the natural IP::

    min  sum_t y_t
    s.t. x_{t,j} <= y_t                       for all slots t, jobs j
         sum_j x_{t,j} <= g * y_t             for all slots t
         sum_t x_{t,j} >= p_j                 for all jobs j
         y_t, x_{t,j} in {0, 1};  x_{t,j} = 0 outside j's window

``LP1`` relaxes the integrality to ``0 <= y_t <= 1`` and ``x_{t,j} >= 0``.
This module builds the constraint matrices once and emits them as a
backend-neutral :class:`~repro.solvers.ir.LinearProgram`
(:meth:`ActiveTimeModel.to_linear_program`), so the same assembled system
serves the relaxation, the exact MILP, and every registered solver backend.

Variable layout: ``y_t`` occupies column ``t - 1`` for ``t = 1..T``; the
``x_{t,j}`` variables for feasible ``(job, slot)`` pairs follow, in job-major
order.  Infeasible pairs are simply never materialized (equivalent to pinning
them to zero).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..core.jobs import Instance
from ..core.validation import require_capacity, require_integral
from ..solvers import LinearProgram

__all__ = ["ActiveTimeModel", "build_active_time_model"]


@dataclass(frozen=True)
class ActiveTimeModel:
    """The assembled constraint system ``A_ub @ z <= b_ub`` plus metadata.

    Attributes
    ----------
    instance, g:
        The inputs the model was built from.
    T:
        Number of slots; ``y`` variables are columns ``0..T-1``.
    num_vars:
        Total number of columns (``T`` + number of feasible pairs).
    a_ub, b_ub:
        Inequality system covering all three constraint families.
    objective:
        Cost vector (1 on every ``y`` column, 0 on every ``x`` column).
    x_index:
        Column of ``x_{t,j}`` keyed by ``(job_id, slot)``.
    """

    instance: Instance
    g: int
    T: int
    num_vars: int
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    objective: np.ndarray
    x_index: dict[tuple[int, int], int]

    @property
    def num_y(self) -> int:
        """Number of slot-indicator variables."""
        return self.T

    def y_column(self, t: int) -> int:
        """Column index of ``y_t`` (slots are 1-based)."""
        if not 1 <= t <= self.T:
            raise IndexError(f"slot {t} outside 1..{self.T}")
        return t - 1

    def variable_bounds(
        self, *, integral: bool = False
    ) -> list[tuple[float, float]]:
        """Bounds per column: ``y in [0,1]``, ``x in [0,1]``.

        The ``x <= 1`` cap is implied by ``x <= y <= 1`` but keeping it
        explicit makes the polytope bounded for the solver.  ``integral`` is
        accepted for symmetry with the MILP path (bounds are identical).
        """
        return [(0.0, 1.0)] * self.num_vars

    def variable_names(self) -> tuple[str, ...]:
        """Per-column labels (``y[t]`` then ``x[j,t]``) for diagnostics."""
        names = [f"y[{t}]" for t in range(1, self.T + 1)]
        names.extend(
            f"x[{jid},{t}]"
            for (jid, t), _ in sorted(
                self.x_index.items(), key=lambda kv: kv[1]
            )
        )
        return tuple(names)

    def to_linear_program(self, *, integral: bool = False) -> LinearProgram:
        """Emit the backend-neutral IR for this model.

        ``integral=False`` is ``LP1`` (the Section-3 relaxation);
        ``integral=True`` marks the ``y`` columns binary — the exact
        formulation (``x`` stays continuous; see :mod:`repro.lp.milp`
        for why that is sufficient).
        """
        integrality = np.zeros(self.num_vars)
        if integral:
            integrality[: self.T] = 1
        return LinearProgram.build(
            self.objective,
            a_ub=self.a_ub,
            b_ub=self.b_ub,
            lb=np.zeros(self.num_vars),
            ub=np.ones(self.num_vars),
            integrality=integrality,
            names=self.variable_names(),
            label=f"active-time {'IP' if integral else 'LP1'} "
            f"(n={self.instance.n}, T={self.T}, g={self.g})",
        )

    def extract(
        self, z: np.ndarray
    ) -> tuple[np.ndarray, dict[tuple[int, int], float]]:
        """Split a solution vector into ``(y, x)`` with 1-based ``y`` slots.

        Returns
        -------
        y:
            Array of length ``T + 1``; entry ``t`` is ``y_t`` (index 0 unused).
        x:
            Mapping ``(job_id, slot) -> value`` for nonzero assignments.
        """
        y = np.zeros(self.T + 1)
        y[1:] = z[: self.T]
        x = {
            key: float(z[col])
            for key, col in self.x_index.items()
            if z[col] > 1e-12
        }
        return y, x


def build_active_time_model(instance: Instance, g: int) -> ActiveTimeModel:
    """Assemble the Section-3 IP/LP for ``instance`` with capacity ``g``."""
    require_integral(instance, "active-time LP")
    require_capacity(g)
    T = instance.horizon

    x_index: dict[tuple[int, int], int] = {}
    col = T
    for job in instance.jobs:
        for t in job.feasible_slots():
            x_index[(job.id, t)] = col
            col += 1
    num_vars = col

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    b: list[float] = []
    row = 0

    # (1) x_{t,j} - y_t <= 0 for every feasible pair
    for (job_id, t), xc in x_index.items():
        rows += [row, row]
        cols += [xc, t - 1]
        vals += [1.0, -1.0]
        b.append(0.0)
        row += 1

    # (2) sum_j x_{t,j} - g y_t <= 0 for every slot
    per_slot: dict[int, list[int]] = {}
    for (job_id, t), xc in x_index.items():
        per_slot.setdefault(t, []).append(xc)
    for t in range(1, T + 1):
        members = per_slot.get(t, [])
        for xc in members:
            rows.append(row)
            cols.append(xc)
            vals.append(1.0)
        rows.append(row)
        cols.append(t - 1)
        vals.append(-float(g))
        b.append(0.0)
        row += 1

    # (3) -sum_t x_{t,j} <= -p_j for every job (coverage)
    for job in instance.jobs:
        for t in job.feasible_slots():
            rows.append(row)
            cols.append(x_index[(job.id, t)])
            vals.append(-1.0)
        b.append(-float(job.integral_length()))
        row += 1

    a_ub = sparse.coo_matrix(
        (vals, (rows, cols)), shape=(row, num_vars)
    ).tocsr()
    objective = np.zeros(num_vars)
    objective[:T] = 1.0

    return ActiveTimeModel(
        instance=instance,
        g=g,
        T=T,
        num_vars=num_vars,
        a_ub=a_ub,
        b_ub=np.asarray(b),
        objective=objective,
        x_index=x_index,
    )
