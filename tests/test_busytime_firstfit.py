"""Tests for the FIRSTFIT baseline (Flammini et al., 4-approximation)."""

import pytest

from repro.busytime import (
    best_lower_bound,
    exact_busy_time_interval,
    first_fit,
    fits_in_bundle,
)
from repro.core import Instance, Job
from repro.instances import random_interval_instance, random_proper_instance


class TestFitsInBundle:
    def test_empty_bundle(self):
        assert fits_in_bundle([], Job(0, 1, 1, id=0), g=1)

    def test_capacity_respected(self):
        members = [Job(0, 2, 2, id=0), Job(0, 2, 2, id=1)]
        assert not fits_in_bundle(members, Job(1, 3, 2, id=2), g=2)
        assert fits_in_bundle(members, Job(1, 3, 2, id=2), g=3)

    def test_disjoint_always_fits(self):
        members = [Job(0, 2, 2, id=0), Job(0, 2, 2, id=1)]
        assert fits_in_bundle(members, Job(5, 6, 1, id=2), g=2)

    def test_peak_inside_job_window_counts(self):
        members = [Job(0, 4, 4, id=0), Job(1, 2, 1, id=1)]
        # peak 2 inside [0,4); adding a job over [1,2) needs g >= 3
        assert not fits_in_bundle(members, Job(1, 2, 1, id=2), g=2)
        assert fits_in_bundle(members, Job(2, 3, 1, id=2), g=2)


class TestFirstFit:
    def test_verifies(self, interval_instance):
        s = first_fit(interval_instance, 2)
        s.verify()

    def test_orders(self, interval_instance):
        for order in ("length", "release", "input"):
            s = first_fit(interval_instance, 2, order=order)
            s.verify()

    def test_unknown_order(self, interval_instance):
        with pytest.raises(ValueError):
            first_fit(interval_instance, 2, order="magic")

    def test_single_bundle_when_capacity_huge(self, interval_instance):
        s = first_fit(interval_instance, 100)
        assert s.num_machines == 1

    def test_g1_groups_disjoint_jobs(self):
        inst = Instance.from_intervals([(0, 1), (2, 3), (1, 2)])
        s = first_fit(inst, 1)
        assert s.num_machines == 1
        assert s.total_busy_time == pytest.approx(3.0)

    def test_within_4x_lower_bound(self, rng):
        for _ in range(20):
            inst = random_interval_instance(10, 18.0, rng=rng)
            g = int(rng.integers(1, 5))
            s = first_fit(inst, g)
            s.verify()
            assert s.total_busy_time <= 4 * best_lower_bound(inst, g) + 1e-6

    def test_within_4x_opt_small(self, rng):
        for _ in range(8):
            inst = random_interval_instance(6, 10.0, rng=rng)
            g = int(rng.integers(1, 4))
            opt = exact_busy_time_interval(inst, g).total_busy_time
            s = first_fit(inst, g)
            assert s.total_busy_time <= 4 * opt + 1e-6

    def test_release_order_on_proper_instances_2x(self, rng):
        """Footnote 1: greedy by release is 2-approximate on proper instances."""
        for _ in range(10):
            inst = random_proper_instance(8, 15.0, rng=rng)
            if not inst.is_proper():
                continue
            g = int(rng.integers(1, 4))
            s = first_fit(inst, g, order="release")
            assert s.total_busy_time <= 2 * best_lower_bound(inst, g) * 2 + 1e-6
            # (profile lower-bounds OPT; release-greedy <= 2 OPT <= 2 * ratio)

    def test_deterministic(self, interval_instance):
        a = first_fit(interval_instance, 2)
        b = first_fit(interval_instance, 2)
        assert [x.job_ids() for x in a.bundles] == [
            x.job_ids() for x in b.bundles
        ]
