#!/usr/bin/env python3
"""Drive the batch engine from Python: grids, caching, aggregation.

Runs the stock active+busy sweep twice against one on-disk cache to
show the second pass costing nothing, then narrows to a custom busy
grid and prints the head-to-head table.

Run:  python examples/engine_sweep.py
"""

import tempfile

from repro.engine import ResultCache, SweepGrid, default_grid, run_sweep


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
    grids = [default_grid("active"), default_grid("busy")]

    first = run_sweep(grids, jobs=2, cache=ResultCache(directory=cache_dir))
    print(first.table)
    print(first.summary)
    print()

    second = run_sweep(grids, jobs=2, cache=ResultCache(directory=cache_dir))
    print(f"re-run: {second.summary}")
    assert second.cache_hits == len(second.tasks)
    print()

    # A custom grid: every interval packer head-to-head on denser inputs.
    custom = SweepGrid(
        problem="busy",
        generators=("interval", "proper"),
        algorithms=("greedy_tracking", "first_fit", "chain_peeling",
                    "kumar_rudra"),
        g_values=(2, 4),
        instances_per_cell=5,
        n=40,
        horizon=30,
    )
    result = run_sweep([custom], jobs=2, title="interval packers, n=40")
    print(result.table)
    print(result.summary)


if __name__ == "__main__":
    main()
