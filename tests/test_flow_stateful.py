"""Stateful property test: the Dinic solver tracks networkx through mutations.

A hypothesis rule-based machine that grows a random network, reconfigures
capacities and repeatedly compares max-flow values against the networkx
reference — exercising the solver's reuse path (reset-and-resolve) far more
aggressively than the one-shot tests.
"""

import hypothesis.strategies as st
import networkx as nx
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.flow import Dinic

MAX_NODES = 8


class DinicVsNetworkx(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.net = Dinic(2)  # node 0 = source, node 1 = sink
        self.G = nx.DiGraph()
        self.G.add_nodes_from([0, 1])
        self.handles: list[tuple[int, int, int]] = []  # (handle, u, v)

    @rule()
    def add_node(self):
        if self.net.n < MAX_NODES:
            idx = self.net.add_node()
            self.G.add_node(idx)

    @rule(data=st.data())
    def add_edge(self, data):
        u = data.draw(st.integers(0, self.net.n - 1))
        v = data.draw(st.integers(0, self.net.n - 1))
        if u == v:
            return
        cap = data.draw(st.integers(0, 15))
        handle = self.net.add_edge(u, v, cap)
        self.handles.append((handle, u, v))
        if self.G.has_edge(u, v):
            self.G[u][v]["capacity"] += cap
        else:
            self.G.add_edge(u, v, capacity=cap)

    @rule(data=st.data())
    def reconfigure_capacity(self, data):
        if not self.handles:
            return
        handle, u, v = data.draw(st.sampled_from(self.handles))
        old = self.net.capacity(handle)
        new = data.draw(st.integers(0, 15))
        self.net.set_capacity(handle, new)
        self.G[u][v]["capacity"] += new - old

    @invariant()
    def flows_match(self):
        ours = self.net.max_flow(0, 1).value
        theirs = (
            nx.maximum_flow_value(self.G, 0, 1)
            if self.G.number_of_edges()
            else 0
        )
        assert ours == theirs


DinicVsNetworkx.TestCase.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)
TestDinicStateful = DinicVsNetworkx.TestCase
