"""Tests for capacity analysis (repro.activetime.capacity)."""

import pytest

from repro.activetime.capacity import (
    capacity_frontier,
    minimum_feasible_capacity,
    window_pressure_bound,
)
from repro.core import Instance
from repro.flow import is_feasible_slot_set
from repro.instances import random_active_time_instance


class TestWindowPressure:
    def test_single_job(self):
        inst = Instance.from_tuples([(0, 2, 2)])
        assert window_pressure_bound(inst) == 1

    def test_stacked_rigid_jobs(self):
        inst = Instance.from_tuples([(0, 2, 2)] * 5)
        assert window_pressure_bound(inst) == 5

    def test_tight_pair_window(self):
        # 3 unit jobs in a single slot: pressure 3
        inst = Instance.from_tuples([(0, 1, 1)] * 3)
        assert window_pressure_bound(inst) == 3

    def test_empty(self):
        assert window_pressure_bound(Instance(tuple())) == 1


class TestMinimumCapacity:
    def test_definition(self, rng):
        for _ in range(10):
            inst = random_active_time_instance(7, 9, rng=rng)
            g = minimum_feasible_capacity(inst)
            slots = range(1, inst.horizon + 1)
            assert is_feasible_slot_set(inst, g, slots)
            if g > 1:
                assert not is_feasible_slot_set(inst, g - 1, slots)

    def test_at_least_pressure_bound(self, rng):
        for _ in range(8):
            inst = random_active_time_instance(6, 8, rng=rng)
            assert minimum_feasible_capacity(inst) >= window_pressure_bound(
                inst
            )

    def test_disjoint_jobs_need_one(self):
        inst = Instance.from_tuples([(0, 2, 2), (3, 5, 2)])
        assert minimum_feasible_capacity(inst) == 1

    def test_empty(self):
        assert minimum_feasible_capacity(Instance(tuple())) == 1


class TestFrontier:
    def test_non_increasing(self, rng):
        inst = random_active_time_instance(8, 10, rng=rng)
        frontier = capacity_frontier(inst, g_max=6)
        costs = [c for _, c in frontier]
        assert costs == sorted(costs, reverse=True)

    def test_starts_at_min_capacity(self, rng):
        inst = random_active_time_instance(6, 8, rng=rng)
        frontier = capacity_frontier(inst, g_max=4)
        assert frontier[0][0] == minimum_feasible_capacity(inst)

    def test_matches_exact_solver(self, rng):
        from repro.activetime import exact_active_time

        inst = random_active_time_instance(6, 8, rng=rng)
        for g, cost in capacity_frontier(inst, g_max=4):
            assert cost == exact_active_time(inst, g).cost

    def test_empty(self):
        assert capacity_frontier(Instance(tuple())) == []
