"""Active-time schedules: representation, cost and verification.

A feasible active-time solution (Section 2) is a set ``A`` of active slots
plus an assignment of job units to slots such that

* every unit lands in an active slot inside its job's window,
* at most one unit of any job per slot,
* at most ``g`` job units per slot,
* job ``j`` receives exactly ``p_j`` units.

``cost = |A|`` — the number of active slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.jobs import Instance
from ..core.validation import require_capacity, require_integral
from ..flow.feasibility import ActiveTimeFeasibility

__all__ = ["ActiveTimeSchedule", "VerificationError", "schedule_from_slots"]


class VerificationError(AssertionError):
    """Raised when a schedule violates a model constraint."""


@dataclass(frozen=True)
class ActiveTimeSchedule:
    """A complete feasible solution to the active-time problem.

    Attributes
    ----------
    instance, g:
        The problem solved.
    active_slots:
        Sorted tuple of active (open) slots.
    assignment:
        Mapping ``job id -> sorted tuple of slots`` hosting one unit each.
    """

    instance: Instance
    g: int
    active_slots: tuple[int, ...]
    assignment: Mapping[int, tuple[int, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def cost(self) -> int:
        """Number of active slots — the objective of Section 2."""
        return len(self.active_slots)

    def slot_loads(self) -> dict[int, int]:
        """Units scheduled per active slot."""
        loads = {t: 0 for t in self.active_slots}
        for slots in self.assignment.values():
            for t in slots:
                loads[t] = loads.get(t, 0) + 1
        return loads

    def full_slots(self) -> list[int]:
        """Active slots carrying exactly ``g`` units (Definition 3)."""
        loads = self.slot_loads()
        return sorted(t for t in self.active_slots if loads.get(t, 0) == self.g)

    def non_full_slots(self) -> list[int]:
        """Active slots carrying fewer than ``g`` units."""
        loads = self.slot_loads()
        return sorted(t for t in self.active_slots if loads.get(t, 0) < self.g)

    def jobs_in_slot(self, t: int) -> list[int]:
        """Ids of jobs with a unit scheduled in slot ``t``."""
        return sorted(
            jid for jid, slots in self.assignment.items() if t in slots
        )

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Check every model constraint; raises :class:`VerificationError`.

        This is the ground-truth oracle used throughout the test-suite: any
        schedule produced by any algorithm must pass.
        """
        active = set(self.active_slots)
        if len(active) != len(self.active_slots):
            raise VerificationError("duplicate active slots")
        if tuple(sorted(self.active_slots)) != tuple(self.active_slots):
            raise VerificationError("active slots not sorted")

        seen_jobs = set()
        loads: dict[int, int] = {}
        for jid, slots in self.assignment.items():
            job = self.instance.job_by_id(jid)
            seen_jobs.add(jid)
            if len(set(slots)) != len(slots):
                raise VerificationError(
                    f"job {jid} scheduled twice in one slot"
                )
            if len(slots) != job.integral_length():
                raise VerificationError(
                    f"job {jid} received {len(slots)} units, needs "
                    f"{job.integral_length()}"
                )
            for t in slots:
                if t not in active:
                    raise VerificationError(
                        f"job {jid} assigned to inactive slot {t}"
                    )
                if not job.is_live_in_slot(t):
                    raise VerificationError(
                        f"job {jid} assigned outside its window at slot {t}"
                    )
                loads[t] = loads.get(t, 0) + 1

        missing = {j.id for j in self.instance.jobs} - seen_jobs
        if missing:
            raise VerificationError(f"jobs without assignment: {sorted(missing)}")

        for t, load in loads.items():
            if load > self.g:
                raise VerificationError(
                    f"slot {t} hosts {load} units, capacity is {self.g}"
                )

    def is_valid(self) -> bool:
        """Boolean wrapper around :meth:`verify`."""
        try:
            self.verify()
        except VerificationError:
            return False
        return True


def schedule_from_slots(
    instance: Instance,
    g: int,
    active_slots: Iterable[int],
    *,
    oracle: ActiveTimeFeasibility | None = None,
) -> ActiveTimeSchedule:
    """Materialize a schedule from an active-slot set via the flow network.

    The paper's algorithms all output a slot set first and recover the
    integral assignment with one max-flow computation (integrality of flow);
    this helper performs exactly that step.

    Raises
    ------
    ValueError
        If the slot set is infeasible for the instance.
    """
    require_integral(instance, "schedule extraction")
    require_capacity(g)
    slots = tuple(sorted(set(active_slots)))
    if oracle is None:
        oracle = ActiveTimeFeasibility(instance, g)
    assignment = oracle.assignment(slots)
    if assignment is None:
        raise ValueError(
            f"active slot set of size {len(slots)} is infeasible for g={g}"
        )
    return ActiveTimeSchedule(
        instance=instance,
        g=g,
        active_slots=slots,
        assignment={jid: tuple(ts) for jid, ts in assignment.items()},
    )
