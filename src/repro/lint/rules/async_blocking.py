"""REP001 — no blocking calls inside coroutines.

The asyncio serving tier multiplexes every connection on one event
loop; a single blocking call inside an ``async def`` stalls *all* of
them (the bug class PR 9 guarded with the one-off
``tools/check_async_blocking.py``, which this rule absorbs and
generalizes to every coroutine in the tree).  Flagged inside coroutine
bodies:

* ``time.sleep(...)`` — use ``asyncio.sleep`` or move off-loop;
* blocking socket methods (``recv``/``recv_into``/``recvfrom``/
  ``sendall``/``accept``/``makefile``) — coroutines speak through
  ``StreamReader``/``StreamWriter``;
* the synchronous :class:`ServeClient` — a coroutine calling the
  blocking HTTP client would wedge the loop under its own server;
* builtin ``open(...)`` — file I/O belongs on the request executor;
* ``subprocess`` / ``urllib`` usage — same reason.

Nested *sync* ``def``s inside a coroutine are skipped: they are almost
always executor targets or callbacks, where blocking is the point.

Inside ``repro.serve`` modules the rule also bans importing
``http.server`` / ``socketserver`` anywhere: the thread-per-connection
server was deleted in the asyncio rewrite and must not creep back.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..base import Finding, ModuleContext, Rule, register

#: Attribute calls that block the calling thread when the receiver is a
#: socket-like object.
_BLOCKING_SOCKET_ATTRS = {
    "recv",
    "recv_into",
    "recvfrom",
    "sendall",
    "accept",
    "makefile",
}

#: Modules whose use inside a coroutine is blocking by construction.
_BLOCKING_MODULES = {"subprocess", "urllib"}

#: Importing these in ``repro.serve`` re-introduces the deleted
#: threading server.
_BANNED_SERVE_IMPORTS = {"http.server", "socketserver"}


class _CoroutineScanner(ast.NodeVisitor):
    """Scan one ``async def`` body, skipping nested sync functions."""

    def __init__(self, module: ModuleContext,
                 findings: List[Finding]) -> None:
        self.module = module
        self.findings = findings

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.module.finding("REP001", node, message))

    # -- nested scopes -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # sync helper inside a coroutine: allowed to block

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        for child in node.body:
            self.visit(child)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = func.value
            if (
                isinstance(owner, ast.Name)
                and owner.id == "time"
                and func.attr == "sleep"
            ):
                self._flag(node, "time.sleep() in coroutine "
                                 "(use asyncio.sleep or run_in_executor)")
            elif (
                isinstance(owner, ast.Name)
                and owner.id in _BLOCKING_MODULES
            ):
                self._flag(node, f"{owner.id}.{func.attr}() in coroutine "
                                 "(move to the request executor)")
            elif func.attr in _BLOCKING_SOCKET_ATTRS:
                self._flag(node, f".{func.attr}() in coroutine looks like "
                                 "blocking socket I/O (use the stream "
                                 "reader/writer)")
        elif isinstance(func, ast.Name):
            if func.id == "open":
                self._flag(node, "open() in coroutine "
                                 "(file I/O belongs on the executor)")
            elif func.id == "ServeClient":
                self._flag(node, "synchronous ServeClient built inside a "
                                 "coroutine")
        self.generic_visit(node)


@register
class AsyncBlockingRule(Rule):
    __doc__ = __doc__

    id = "REP001"
    title = "blocking call inside a coroutine (event-loop stall)"

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                scanner = _CoroutineScanner(module, findings)
                for child in node.body:
                    scanner.visit(child)
            elif module.in_serve_package and isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _BANNED_SERVE_IMPORTS:
                        findings.append(module.finding(
                            "REP001", node,
                            f"import of {alias.name} — the threading "
                            "server is gone; serve on asyncio",
                        ))
            elif module.in_serve_package and isinstance(node, ast.ImportFrom):
                if node.module in _BANNED_SERVE_IMPORTS:
                    findings.append(module.finding(
                        "REP001", node,
                        f"import from {node.module} — the threading "
                        "server is gone; serve on asyncio",
                    ))
        return iter(findings)
