"""Small helpers for building flow networks with named nodes.

Thin layer over :class:`repro.flow.dinic.Dinic` used by the feasibility
network (Figure 2) and the Alicherry–Bhatia track-extraction network
(Appendix A.2), both of which want to address nodes by meaningful keys
instead of raw indices.
"""

from __future__ import annotations

from typing import Hashable

from .dinic import Dinic, MaxFlowResult

__all__ = ["NamedFlowNetwork"]


class NamedFlowNetwork:
    """A Dinic network whose nodes are addressed by hashable keys."""

    def __init__(self) -> None:
        self._net = Dinic(0)
        self._index: dict[Hashable, int] = {}

    def node(self, key: Hashable) -> int:
        """Return the index for ``key``, creating the node on first use."""
        idx = self._index.get(key)
        if idx is None:
            idx = self._net.add_node()
            self._index[key] = idx
        return idx

    def has_node(self, key: Hashable) -> bool:
        """True when ``key`` has been materialized."""
        return key in self._index

    def add_edge(self, u: Hashable, v: Hashable, capacity: int) -> int:
        """Add an edge between named nodes, returning the edge handle."""
        return self._net.add_edge(self.node(u), self.node(v), capacity)

    def set_capacity(self, handle: int, capacity: int) -> None:
        """Reconfigure an edge capacity (applies to subsequent solves)."""
        self._net.set_capacity(handle, capacity)

    def max_flow(self, source: Hashable, sink: Hashable) -> MaxFlowResult:
        """Solve max-flow between two named nodes."""
        return self._net.max_flow(self.node(source), self.node(sink))

    @property
    def raw(self) -> Dinic:
        """The underlying :class:`Dinic` solver."""
        return self._net

    def __len__(self) -> int:
        return self._net.n
