"""E21 (engineering) — asyncio serving tier at connection scale.

Not a paper claim: pins what the asyncio rewrite of ``repro.serve``
buys.  The old ``ThreadingHTTPServer`` spent one OS thread per open
connection, so hundreds of idle keep-alive clients meant hundreds of
threads; the asyncio tier parks them all on one event loop.

Two guards:

* **Idle-connection scale** — with ≥500 idle keep-alive connections
  parked on the server, the p95 ``/solve`` latency must stay within
  2x of the single-client baseline (plus a small absolute slack for
  single-core CI noise).  Idle connections must cost nothing.
* **Time-to-first-result** — a ``/batch`` whose *last* task is slow
  must stream its finished predecessors immediately; the first JSONL
  line lands well before the slow tail completes.  This re-pins the
  PR-5 incremental-streaming guarantee on the asyncio transport.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.core import Instance
from repro.engine.registry import REGISTRY, SolveOutcome, SolverSpec
from repro.serve import ServeClient, create_server, task_request

_IDLE_CONNECTIONS = 500
_SAMPLES = 30
_TAIL_SLEEP = 0.5


def _paced_solver(instance, g, **params):
    time.sleep(_TAIL_SLEEP)
    return SolveOutcome(objective=float(g))


@pytest.fixture
def paced_solver():
    name = "paced-bench-serve"
    if ("active", name) not in REGISTRY:
        REGISTRY.register(
            SolverSpec(
                problem="active",
                name=name,
                solve=_paced_solver,
                exact=False,
                guarantee="-",
                complexity="-",
                description="fixed-latency solver (benchmark only)",
            )
        )
    yield name
    REGISTRY._specs.pop(("active", name), None)


def _serving():
    srv = create_server(port=0, jobs=1)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


def _teardown(srv, thread):
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5.0)


def _solve_latencies(client, count, seed):
    # distinct small instances: modular offsets keep the solve cost flat
    # (the minimal solver's cost grows with the horizon, which would
    # otherwise confound the serving-overhead measurement)
    instances = [
        Instance.from_tuples([
            (0, 4 + (seed + i) % 7, 2),
            (1, 9 + (seed + i) % 11, 3),
            (2, 6 + (seed + i) % 5, 1),
        ])
        for i in range(count)
    ]
    latencies = []
    for inst in instances:
        start = time.perf_counter()
        result = client.solve(inst, "active", 2, algorithm="minimal")
        latencies.append(time.perf_counter() - start)
        assert result.ok
    return latencies


def _p95(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def test_500_idle_connections_leave_solve_p95_intact(emit):
    srv, thread = _serving()
    idle = []
    try:
        client = ServeClient(srv.url)
        base = _solve_latencies(client, _SAMPLES, seed=0)

        host, port = srv.server_address[:2]
        for _ in range(_IDLE_CONNECTIONS):
            conn = http.client.HTTPConnection(host, port, timeout=60)
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            response.read()
            idle.append(conn)  # keep-alive: parked open
        loaded_health = _healthz(host, port)
        assert loaded_health["connections"] >= _IDLE_CONNECTIONS

        loaded = _solve_latencies(client, _SAMPLES, seed=100)
    finally:
        for conn in idle:
            conn.close()
        _teardown(srv, thread)

    base_p95, loaded_p95 = _p95(base), _p95(loaded)
    emit(
        f"/solve p95 with {_IDLE_CONNECTIONS} idle keep-alive connections",
        ["scenario", "p50 (ms)", "p95 (ms)"],
        [
            ["single client", f"{sorted(base)[len(base)//2]*1e3:.1f}",
             f"{base_p95*1e3:.1f}"],
            [f"+{_IDLE_CONNECTIONS} idle conns",
             f"{sorted(loaded)[len(loaded)//2]*1e3:.1f}",
             f"{loaded_p95*1e3:.1f}"],
        ],
    )
    # idle connections are parked on the loop: they must not tax live
    # requests.  2x relative + 50ms absolute slack for 1-core CI noise.
    assert loaded_p95 <= 2 * base_p95 + 0.05, (base_p95, loaded_p95)


def _healthz(host, port):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", "/healthz")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def test_batch_first_result_beats_slow_tail(paced_solver, emit):
    srv, thread = _serving()
    try:
        host, port = srv.server_address[:2]
        fast_a = Instance.from_tuples([(0, 5, 2), (1, 6, 3), (2, 7, 1)])
        fast_b = Instance.from_tuples([(0, 4, 1), (3, 8, 2)])
        requests = [
            task_request(fast_a, "active", 2, algorithm="minimal"),
            task_request(fast_b, "active", 2, algorithm="minimal"),
            task_request(fast_a, "active", 2, algorithm=paced_solver),
        ]
        body = "".join(json.dumps(r) + "\n" for r in requests).encode()
        conn = http.client.HTTPConnection(host, port, timeout=60)
        arrivals = []
        try:
            start = time.perf_counter()
            conn.request(
                "POST", "/batch", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            while True:
                line = response.readline()
                if not line:
                    break
                if line.strip():
                    record = json.loads(line)
                    arrivals.append(
                        (record["index"], time.perf_counter() - start)
                    )
        finally:
            conn.close()
    finally:
        _teardown(srv, thread)

    emit(
        f"/batch TTFR with a {_TAIL_SLEEP:.1f}s tail task (jobs=1)",
        ["result", "arrived (s)"],
        [[str(i), f"{t:.3f}"] for i, t in arrivals],
    )
    assert [i for i, _ in arrivals] == [0, 1, 2]
    # finished predecessors stream immediately; only the tail waits
    assert arrivals[0][1] < _TAIL_SLEEP * 0.75, arrivals
    assert arrivals[-1][1] >= _TAIL_SLEEP * 0.9, arrivals
