"""E19 (engineering) — exact-oracle scaling and cross-validation.

The ratio measurements rest on the exact MILPs; this bench records how far
they scale and re-runs the independent cross-checks (brute force, block
search) at benchmark time so a solver regression cannot silently skew every
measured ratio.
"""

import pytest

from repro.activetime import brute_force_active_time, exact_active_time
from repro.busytime import (
    brute_force_busy_time_interval,
    exact_busy_time_interval,
    opt_infinity,
    span_search_exact,
)
from repro.instances import (
    random_active_time_instance,
    random_flexible_instance,
    random_interval_instance,
)


def test_cross_validation_matrix(rng, emit):
    rows = []
    agree = 0
    for _ in range(6):
        inst = random_active_time_instance(4, 6, max_length=2, rng=rng)
        g = int(rng.integers(1, 3))
        try:
            milp = exact_active_time(inst, g).cost
        except RuntimeError:
            continue
        bf = brute_force_active_time(inst, g).cost
        assert milp == bf
        agree += 1
    rows.append(["active time: MILP vs brute force", agree])

    agree = 0
    for _ in range(6):
        inst = random_interval_instance(5, 8.0, rng=rng)
        g = int(rng.integers(1, 3))
        a = exact_busy_time_interval(inst, g).total_busy_time
        b = brute_force_busy_time_interval(inst, g).total_busy_time
        assert a == pytest.approx(b, abs=1e-6)
        agree += 1
    rows.append(["busy time: MILP vs brute force", agree])

    agree = 0
    for _ in range(6):
        inst = random_flexible_instance(6, 9, rng=rng)
        a = opt_infinity(inst).busy_time
        b, _ = span_search_exact(inst)
        assert a == pytest.approx(b, abs=1e-9)
        agree += 1
    rows.append(["OPT_inf: MILP vs block search", agree])

    emit(
        "E19 — independent exact solvers agree",
        ["pair", "instances checked"],
        rows,
    )


@pytest.mark.parametrize("n,T", [(10, 14), (20, 26), (35, 40)])
def test_active_milp_scaling(benchmark, rng, n, T):
    inst = random_active_time_instance(n, T, rng=rng)
    try:
        result = benchmark(exact_active_time, inst, 3)
    except RuntimeError:
        pytest.skip("infeasible draw")
    assert result.is_valid()


@pytest.mark.parametrize("n", [6, 10, 14])
def test_busy_milp_scaling(benchmark, rng, n):
    inst = random_interval_instance(n, 1.5 * n, rng=rng)
    result = benchmark(exact_busy_time_interval, inst, 3)
    assert result.is_valid()


@pytest.mark.parametrize("n", [6, 10])
def test_span_search_scaling(benchmark, rng, n):
    inst = random_flexible_instance(n, n + 6, rng=rng)
    value, _ = benchmark(span_search_exact, inst)
    assert value >= 0
