"""Tests for the asyncio serving tier's new behaviors.

``test_serve.py`` pins the wire contract (it runs unmodified against the
asyncio server); this file covers what the rewrite *added*: the bounded
``/batch`` backpressure buffer, the configurable write-stall disconnect,
urgent ``/solve`` priority leases, connection accounting
(``/healthz`` ``connections``, ``--max-connections`` 503s), keep-alive
at soak scale, and the new ``repro serve`` CLI flags.
"""

import asyncio
import contextlib
import http.client
import json
import multiprocessing
import socket
import threading
import time

import pytest

from repro.cli import _build_parser
from repro.core import Instance
from repro.engine import REGISTRY
from repro.engine.registry import SolveOutcome, SolverSpec
from repro.obs import REGISTRY as OBS
from repro.serve import ServeClient, create_server, task_request
from repro.serve.server import _BatchBridge

_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="test registers a solver that only fork-children inherit",
)

#: Sleep used by the test-only slow solver; latency assertions key off it.
_SLOW_SECONDS = 0.4


def _slow_solver(instance, g, **params):
    time.sleep(_SLOW_SECONDS)
    return SolveOutcome(objective=float(g))


@pytest.fixture
def slow_solver():
    name = "slow-async-test"
    if ("active", name) not in REGISTRY:
        REGISTRY.register(
            SolverSpec(
                problem="active",
                name=name,
                solve=_slow_solver,
                exact=False,
                guarantee="-",
                complexity="-",
                description="sleeps then answers (test only)",
            )
        )
    yield name
    REGISTRY._specs.pop(("active", name), None)


@contextlib.contextmanager
def _server(**kwargs):
    srv = create_server(port=0, **kwargs)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5.0)


def _instances(count, seed=0):
    """Distinct small instances (solver cost grows with the horizon, so
    distinctness comes from modular offsets, not growing coordinates)."""
    return [
        Instance.from_tuples([
            (0, 4 + (seed + i) % 7, 2),
            (1, 9 + (seed + i) % 11, 3),
            (2, 6 + (seed + i) % 5, 1),
        ])
        for i in range(count)
    ]


def _get_json(srv, path):
    host, port = srv.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Raw chunked-response plumbing (reading *partially* is the whole point
# of the backpressure tests, so http.client's eager dechunking is out).
# ----------------------------------------------------------------------

def _send_batch(sock, requests):
    body = "".join(json.dumps(r) + "\n" for r in requests).encode()
    sock.sendall(
        b"POST /batch HTTP/1.1\r\nHost: t\r\n"
        b"Content-Type: application/json\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
        + body
    )


def _read_response_head(f):
    status = int(f.readline().split()[1])
    headers = {}
    while True:
        line = f.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers


def _read_chunk(f):
    """One chunk (= one JSONL result line), or ``b""`` at end-of-stream."""
    size = int(f.readline().strip() or b"0", 16)
    if size == 0:
        f.readline()
        return b""
    data = f.read(size)
    f.readline()
    return data


class TestBatchBridge:
    """The bounded thread→loop bridge behind every /batch response."""

    def test_put_blocks_at_cap_until_consumed(self):
        loop = asyncio.new_event_loop()
        try:
            bridge = _BatchBridge(loop, maxsize=2)
            progress = []

            def produce():
                for i in range(5):
                    bridge.put(i)
                    progress.append(i)
                bridge.finish()

            thread = threading.Thread(target=produce, daemon=True)
            thread.start()
            assert _wait_until(lambda: len(progress) == 2, timeout=5.0)
            time.sleep(0.2)
            assert len(progress) == 2, "producer ran past the cap"

            got = [loop.run_until_complete(bridge.get()) for _ in range(2)]
            assert got == [0, 1]
            # each consume admits exactly one more put; the last one
            # stays blocked until the consumer frees another slot
            assert _wait_until(lambda: len(progress) == 4, timeout=5.0)
            time.sleep(0.2)
            assert len(progress) == 4
            rest = [loop.run_until_complete(bridge.get()) for _ in range(3)]
            assert rest == [2, 3, 4]
            assert loop.run_until_complete(bridge.get()) is None
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        finally:
            loop.close()

    def test_blocked_put_counts_a_backpressure_stall(self):
        loop = asyncio.new_event_loop()
        try:
            before = OBS.value("repro_serve_backpressure_stalls_total")
            bridge = _BatchBridge(loop, maxsize=1)
            bridge.put(0)
            blocked = threading.Thread(
                target=bridge.put, args=(1,), daemon=True
            )
            blocked.start()
            assert _wait_until(
                lambda: OBS.value("repro_serve_backpressure_stalls_total")
                > before,
                timeout=5.0,
            )
            bridge.cancel()
            blocked.join(timeout=5.0)
            assert not blocked.is_alive()
        finally:
            loop.close()

    def test_cancel_unblocks_producer_with_false(self):
        loop = asyncio.new_event_loop()
        try:
            bridge = _BatchBridge(loop, maxsize=1)
            outcomes = []

            def produce():
                outcomes.append(bridge.put("a"))
                outcomes.append(bridge.put("b"))  # blocks, then cancelled

            thread = threading.Thread(target=produce, daemon=True)
            thread.start()
            assert _wait_until(lambda: len(outcomes) == 1, timeout=5.0)
            bridge.cancel()
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert outcomes == [True, False]
            assert bridge.put("c") is False, "cancel must be sticky"
        finally:
            loop.close()


class TestBackpressureCap:
    def test_stalled_reader_bounds_buffered_results(self):
        """A reader that stops consuming pins at most ``batch_buffer``
        engine results (plus transport slack) while other connections'
        requests keep flowing — then drains to a complete, ordered
        stream once it resumes."""
        total = 40
        cap = 3
        # tcp_wmem autotunes the server's kernel send buffer up to 4 MiB
        # on Linux; result lines must overflow that for the stall to
        # surface, so make each ~400 KB (16 MB of results overall)
        blob = "x" * 400_000
        with _server(jobs=1, batch_buffer=cap) as srv:
            base = _get_json(srv, "/stats")[1]
            requests = [
                task_request(
                    inst, "active", 2, algorithm="minimal",
                    meta={"pos": i, "blob": blob},
                )
                for i, inst in enumerate(_instances(total, seed=500))
            ]
            host, port = srv.server_address[:2]
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 16384)
            sock.settimeout(60)
            sock.connect((host, port))
            f = sock.makefile("rb")
            try:
                _send_batch(sock, requests)
                status, headers = _read_response_head(f)
                assert status == 200
                assert headers.get("transfer-encoding") == "chunked"
                first = json.loads(_read_chunk(f))
                assert first["index"] == 0
                # -- stall: stop reading, watch the server-side plateau
                last = -1
                stable = 0
                deadline = time.monotonic() + 20
                while stable < 3 and time.monotonic() < deadline:
                    time.sleep(0.4)
                    served = _get_json(srv, "/stats")[1]["tasks_served"]
                    stable = stable + 1 if served == last else 0
                    last = served
                assert stable >= 3, "tasks_served never plateaued"
                produced = last - base["tasks_served"]
                # cap + results sunk into socket/transport buffers
                # (≤ ~4.2 MB ≈ 11 lines) + producer/consumer in-hand
                # results + read slack; far below `total`
                assert produced <= cap + 15, produced
                assert produced < total, "engine ran ahead of the cap"
                stalls = _get_json(srv, "/stats")[1]["backpressure_stalls"]
                assert stalls > base["backpressure_stalls"]

                # -- other connections flow while this one is stalled
                client = ServeClient(srv.url)
                inst = _instances(1, seed=900)[0]
                result = client.solve(inst, "active", 2, algorithm="minimal")
                assert result.ok
                side = list(client.batch([
                    task_request(i2, "active", 2, algorithm="minimal",
                                 meta={"pos": k})
                    for k, i2 in enumerate(_instances(3, seed=950))
                ]))
                assert [r.meta["pos"] for r in side] == [0, 1, 2]

                # -- resume: the full ordered stream still arrives
                records = [first]
                while True:
                    data = _read_chunk(f)
                    if not data:
                        break
                    records.append(json.loads(data))
                assert [r["index"] for r in records] == list(range(total))
                assert [r["meta"]["pos"] for r in records] == list(range(total))
            finally:
                f.close()
                sock.close()
            assert _wait_until(
                lambda: _get_json(srv, "/stats")[1]["tasks_served"]
                >= base["tasks_served"] + total + 4
            )


class TestWriteStallTimeout:
    def test_stalled_reader_is_disconnected_after_budget(self):
        """``write_stall_timeout`` bounds how long a /batch write may sit
        in ``drain()``; past it the connection is dropped and the server
        keeps serving everyone else."""
        # must overflow the ~4 MiB the kernel will buffer for the
        # server's send side before drain() can block at all
        blob = "y" * 400_000
        with _server(
            jobs=1, batch_buffer=2, write_stall_timeout=1.0
        ) as srv:
            requests = [
                task_request(inst, "active", 2, algorithm="minimal",
                             meta={"blob": blob})
                for inst in _instances(20, seed=700)
            ]
            host, port = srv.server_address[:2]
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 16384)
            sock.settimeout(30)
            sock.connect((host, port))
            try:
                _send_batch(sock, requests)
                # read nothing at all: the server's drain() must time
                # out and drop us.  /healthz sees the stalled connection
                # disappear (the polling connection itself counts 1).
                assert _wait_until(
                    lambda: _get_json(srv, "/healthz")[1]["connections"]
                    <= 1,
                    timeout=15.0,
                ), "stalled connection was never reaped"
                # the socket is really dead: reading drains buffered
                # data then hits EOF/RST rather than blocking forever
                with contextlib.suppress(ConnectionError, socket.timeout):
                    while sock.recv(65536):
                        pass
            finally:
                sock.close()
            # server is unharmed
            client = ServeClient(srv.url)
            result = client.solve(
                _instances(1, seed=770)[0], "active", 2, algorithm="minimal"
            )
            assert result.ok

    def test_default_is_generous_not_disabled(self):
        with _server(jobs=1) as srv:
            assert srv.app.write_stall_timeout == 300.0
        with _server(jobs=1, write_stall_timeout=None) as srv:
            assert srv.app.write_stall_timeout is None


@_FORK_ONLY
class TestPriorityServe:
    def test_solve_overtakes_large_batch(self, slow_solver):
        """A /solve landing mid-/batch completes without waiting for the
        batch queue to drain: the batch sheds it a worker at its next
        task completion (urgent lease priority)."""
        with _server(
            jobs=2, default_timeout=30.0, warm_pool=True
        ) as srv:
            client = ServeClient(srv.url)
            batch_requests = [
                task_request(inst, "active", 2, algorithm=slow_solver,
                             meta={"pos": i})
                for i, inst in enumerate(_instances(16, seed=600))
            ]
            batch_results = []
            thread = threading.Thread(
                target=lambda: batch_results.extend(
                    client.batch(batch_requests)
                ),
                daemon=True,
            )
            thread.start()
            try:
                time.sleep(_SLOW_SECONDS * 0.75)  # batch is mid-solve
                start = time.perf_counter()
                result = ServeClient(srv.url).solve(
                    _instances(1, seed=680)[0], "active", 2,
                    algorithm="minimal",
                )
                elapsed = time.perf_counter() - start
            finally:
                thread.join(timeout=60.0)
            assert result.ok
            # the full batch needs ~16*0.4/2 = 3.2s of solving; waiting
            # for the queue to drain would put /solve past ~2.6s, while
            # an urgent lease lands within about one task completion
            assert elapsed < _SLOW_SECONDS * 4, (
                f"/solve waited {elapsed:.2f}s — queued behind the batch"
            )
            assert [r.meta["pos"] for r in batch_results] == list(range(16))
            assert all(r.ok for r in batch_results)


class TestConnectionAccounting:
    def test_healthz_reports_connections(self):
        with _server(jobs=1) as srv:
            status, health = _get_json(srv, "/healthz")
            assert status == 200
            # at minimum the connection asking is counted
            assert isinstance(health["connections"], int)
            assert health["connections"] >= 1

    def test_stats_reports_serving_tier_counters(self):
        with _server(jobs=1) as srv:
            stats = _get_json(srv, "/stats")[1]
            assert stats["connections"] >= 1
            assert "backpressure_stalls" in stats
            assert {"leases", "warmups", "reaped"} <= set(stats["pool"])

    def test_metrics_exposes_connection_gauge_and_stall_counter(self):
        with _server(jobs=1) as srv:
            host, port = srv.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                conn.request("GET", "/metrics")
                text = conn.getresponse().read().decode()
            finally:
                conn.close()
            assert "repro_serve_connections" in text
            assert "repro_serve_backpressure_stalls_total" in text

    def test_max_connections_rejects_with_503(self):
        with _server(jobs=1, max_connections=2) as srv:
            host, port = srv.server_address[:2]
            held = []
            try:
                for _ in range(2):
                    conn = http.client.HTTPConnection(host, port, timeout=30)
                    conn.request("GET", "/healthz")
                    assert conn.getresponse().status == 200
                    held.append(conn)
                # the limit is enforced at accept time: the over-limit
                # connection is told 503 without sending a byte
                extra = socket.create_connection((host, port), timeout=30)
                try:
                    f = extra.makefile("rb")
                    status, headers = _read_response_head(f)
                    assert status == 503
                    payload = json.loads(
                        f.read(int(headers["content-length"]))
                    )
                    assert payload["status"] == 503
                    assert "connection limit" in payload["error"]
                    assert f.read(1) == b"", "503 must close the socket"
                finally:
                    extra.close()
                # freeing a slot restores service (the server notices
                # the closed idle connection asynchronously)
                held.pop().close()

                def _admitted():
                    probe = http.client.HTTPConnection(
                        host, port, timeout=30
                    )
                    try:
                        probe.request("GET", "/healthz")
                        return probe.getresponse().status == 200
                    except (http.client.HTTPException, OSError):
                        return False
                    finally:
                        probe.close()

                assert _wait_until(_admitted, timeout=10.0)
            finally:
                for conn in held:
                    conn.close()


class _StubWriter:
    """The slice of ``StreamWriter`` that a cancelled handler touches."""

    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True

    async def wait_closed(self):
        return None

    def get_extra_info(self, name, default=None):
        return default


class TestCancellationPropagation:
    """Regression: ``_handle_connection`` used to swallow CancelledError.

    A connection task that catches the cancellation and returns
    normally reports ``cancelled() == False``, which wedges any caller
    awaiting its cancellation during server teardown (the asyncio
    contract is cleanup-then-reraise).  Lint rule REP002 now guards the
    pattern; this pins the runtime behavior.
    """

    def test_cancelled_batch_connection_propagates_cancellation(self):
        with _server(jobs=1) as srv:
            before = srv.app.connections
            loop = asyncio.new_event_loop()
            try:
                async def scenario():
                    reader = asyncio.StreamReader()
                    writer = _StubWriter()
                    task = asyncio.ensure_future(
                        srv._handle_connection(reader, writer)
                    )
                    # let the handler start and block reading the head
                    for _ in range(100):
                        if srv.app.connections > before:
                            break
                        await asyncio.sleep(0.01)
                    # a partial /batch request keeps the coroutine
                    # mid-request when the cancellation lands
                    reader.feed_data(b"POST /batch HTTP/1.1\r\nHost: t\r\n")
                    await asyncio.sleep(0.02)
                    task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await task
                    return task, writer

                task, writer = loop.run_until_complete(scenario())
            finally:
                loop.close()
            assert task.cancelled(), (
                "handler swallowed CancelledError instead of re-raising"
            )
            assert writer.closed, "cleanup must still run before re-raise"
            assert srv.app.connections == before


class TestKeepAliveSoak:
    def test_hundreds_of_idle_connections_with_live_traffic(self):
        """~200 idle keep-alive connections cost the server nothing:
        live /solve + /batch traffic interleaves normally, idle
        connections can be reused afterwards, and the accounting drops
        back once they close."""
        idle_count = 200
        with _server(jobs=1) as srv:
            host, port = srv.server_address[:2]
            idle = []
            try:
                for _ in range(idle_count):
                    conn = http.client.HTTPConnection(host, port, timeout=30)
                    conn.request("GET", "/healthz")
                    response = conn.getresponse()
                    assert response.status == 200
                    response.read()
                    idle.append(conn)  # keep-alive: stays open
                health = _get_json(srv, "/healthz")[1]
                assert health["connections"] >= idle_count

                client = ServeClient(srv.url)
                for round_no in range(3):
                    result = client.solve(
                        _instances(1, seed=800 + round_no)[0],
                        "active", 2, algorithm="minimal",
                    )
                    assert result.ok
                    batch = list(client.batch([
                        task_request(inst, "active", 2, algorithm="minimal",
                                     meta={"pos": i})
                        for i, inst in enumerate(
                            _instances(4, seed=820 + 10 * round_no)
                        )
                    ]))
                    assert [r.meta["pos"] for r in batch] == [0, 1, 2, 3]

                # idle connections are still usable after sitting out
                for conn in idle[:10]:
                    conn.request("GET", "/healthz")
                    response = conn.getresponse()
                    assert response.status == 200
                    response.read()
            finally:
                for conn in idle:
                    conn.close()
            assert _wait_until(
                lambda: _get_json(srv, "/healthz")[1]["connections"] <= 2,
                timeout=15.0,
            ), "connection accounting never drained after the soak"


class TestServeCliFlags:
    def test_new_serving_flags_parse(self):
        parser = _build_parser()
        args = parser.parse_args([
            "serve", "--warm-pool", "--idle-ttl", "30",
            "--max-connections", "128", "--write-stall-timeout", "5",
        ])
        assert args.warm_pool is True
        assert args.idle_ttl == 30.0
        assert args.max_connections == 128
        assert args.write_stall_timeout == 5.0

    def test_defaults_match_server_defaults(self):
        args = _build_parser().parse_args(["serve"])
        assert args.warm_pool is False
        assert args.idle_ttl is None
        assert args.max_connections is None
        assert args.write_stall_timeout == 300.0
