"""Tests for GREEDYTRACKING (Algorithm 1, Theorem 5)."""

import pytest

from repro.busytime import (
    best_lower_bound,
    exact_busy_time_interval,
    extract_tracks,
    greedy_tracking,
    is_track,
    proper_witness_set,
    track_length,
)
from repro.core import Instance, Job, coverage_counts, span
from repro.instances import random_interval_instance


class TestExtractTracks:
    def test_tracks_partition_jobs(self, interval_instance):
        tracks = extract_tracks(interval_instance)
        ids = sorted(j.id for t in tracks for j in t)
        assert ids == sorted(j.id for j in interval_instance.jobs)

    def test_each_track_valid(self, interval_instance):
        for track in extract_tracks(interval_instance):
            assert is_track(track)

    def test_track_lengths_non_increasing(self, rng):
        """Greedy extracts maximum tracks, so lengths never increase."""
        for _ in range(10):
            inst = random_interval_instance(12, 20.0, rng=rng)
            lengths = [track_length(t) for t in extract_tracks(inst)]
            for a, b in zip(lengths, lengths[1:]):
                assert a >= b - 1e-9

    def test_identical_jobs_one_per_track(self):
        inst = Instance.from_intervals([(0, 1)] * 5)
        tracks = extract_tracks(inst)
        assert len(tracks) == 5


class TestGreedyTracking:
    def test_verifies(self, interval_instance):
        s = greedy_tracking(interval_instance, 2)
        s.verify()

    def test_bundles_are_g_tracks(self, rng):
        for _ in range(8):
            inst = random_interval_instance(12, 20.0, rng=rng)
            g = int(rng.integers(1, 4))
            tracks = extract_tracks(inst)
            s = greedy_tracking(inst, g)
            expected_bundles = -(-len(tracks) // g)
            assert s.num_machines == expected_bundles

    def test_capacity_never_exceeded(self, rng):
        for _ in range(10):
            inst = random_interval_instance(15, 25.0, rng=rng)
            g = int(rng.integers(1, 5))
            s = greedy_tracking(inst, g)
            for b in s.bundles:
                assert b.max_overlap() <= g

    def test_within_3x_lower_bound(self, rng):
        for _ in range(20):
            inst = random_interval_instance(12, 20.0, rng=rng)
            g = int(rng.integers(1, 5))
            s = greedy_tracking(inst, g)
            assert s.total_busy_time <= 3 * best_lower_bound(inst, g) + 1e-6

    def test_within_3x_opt_small(self, rng):
        for _ in range(8):
            inst = random_interval_instance(6, 10.0, rng=rng)
            g = int(rng.integers(1, 4))
            opt = exact_busy_time_interval(inst, g).total_busy_time
            s = greedy_tracking(inst, g)
            assert s.total_busy_time <= 3 * opt + 1e-6

    def test_first_bundle_span_at_most_total_span(self, rng):
        """Theorem 5's first step: Sp(B_1) <= Sp(J) = OPT_inf."""
        for _ in range(10):
            inst = random_interval_instance(10, 18.0, rng=rng)
            g = int(rng.integers(1, 4))
            s = greedy_tracking(inst, g)
            total_span = span(j.window for j in inst.jobs)
            assert s.bundles[0].busy_time <= total_span + 1e-9

    def test_empty_and_single(self):
        empty = greedy_tracking(Instance(tuple()), 2)
        assert empty.total_busy_time == 0
        one = greedy_tracking(Instance.from_intervals([(0, 2)]), 2)
        assert one.total_busy_time == pytest.approx(2.0)


class TestProperWitnessSet:
    def test_span_preserved(self, rng):
        for _ in range(15):
            inst = random_interval_instance(10, 18.0, rng=rng)
            q = proper_witness_set(list(inst.jobs))
            assert span(j.window for j in q) == pytest.approx(
                span(j.window for j in inst.jobs)
            )

    def test_at_most_two_live_anywhere(self, rng):
        for _ in range(15):
            inst = random_interval_instance(10, 18.0, rng=rng)
            q = proper_witness_set(list(inst.jobs))
            cov = coverage_counts([j.window for j in q])
            assert max((c for _, c in cov), default=0) <= 2

    def test_result_is_proper(self, rng):
        for _ in range(10):
            inst = random_interval_instance(8, 15.0, rng=rng)
            q = proper_witness_set(list(inst.jobs))
            sub = Instance(tuple(q))
            assert sub.is_proper()

    def test_empty(self):
        assert proper_witness_set([]) == []

    def test_identical_jobs_collapse_to_one(self):
        jobs = [Job(0, 2, 2, id=i) for i in range(4)]
        assert len(proper_witness_set(jobs)) == 1

    def test_mass_bounds_span(self, rng):
        """ell(Q) >= Sp(Q): the inequality chain in Theorem 5's proof."""
        for _ in range(10):
            inst = random_interval_instance(10, 18.0, rng=rng)
            q = proper_witness_set(list(inst.jobs))
            assert sum(j.length for j in q) >= span(
                j.window for j in q
            ) - 1e-9
