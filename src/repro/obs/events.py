"""Structured JSONL event log — the CLI's ``--obs-log`` sink.

One JSON object per line, each stamped with a wall-clock ``ts`` and an
``event`` name; everything else is caller-provided fields.  Writes are
locked and flushed per event so a concurrent reader (``tail -f``, a log
shipper) sees complete lines the moment they happen, and a crashed run
keeps every event up to the crash.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, IO

__all__ = ["EventLog"]


class EventLog:
    """Append structured events to a JSONL file (or any text stream).

    Parameters
    ----------
    target:
        A path (opened in append mode, parents created) or an already
        open text stream (not closed by :meth:`close` — the caller owns
        it; ``sys.stderr`` is a legitimate target).
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        self._lock = threading.Lock()
        if isinstance(target, (str, Path)):
            path = Path(target)
            if path.parent != Path("."):
                path.parent.mkdir(parents=True, exist_ok=True)
            self._fh: IO[str] = path.open("a")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._closed = False

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line; non-serializable values become ``repr``."""
        record = {"ts": round(time.time(), 6), "event": event, **fields}
        line = json.dumps(record, sort_keys=True, default=repr)
        with self._lock:
            if self._closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._owns:
                self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
