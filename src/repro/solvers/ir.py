"""The backend-neutral LP/MILP intermediate representation.

Every optimization problem in the repository — the Section-3 ``LP1``
relaxation, the exact MILPs, the busy-time maximization program — is
expressed as one :class:`LinearProgram`:

    min  c @ x
    s.t. a_ub @ x <= b_ub
         a_eq @ x == b_eq
         lb <= x <= ub
         x_i integral where integrality[i] == 1

Construction mirrors scipy's ``linprog``/``milp`` split (one-sided
inequality plus equality blocks) because that is the lowest common
denominator across backends: scipy consumes it directly, python-mip and
the dense reference simplex translate row by row.  Problem assemblers
that naturally produce two-sided rows ``lb_row <= a @ x <= ub_row``
(the MILP oracles) go through :meth:`LinearProgram.from_two_sided`,
which splits them into the canonical blocks.

The IR is solver-agnostic on purpose: it stores *sparse* matrices
(CSR), never a backend handle, so it can be built once and handed to
any registered :class:`~repro.solvers.base.SolverBackend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
from scipy import sparse

__all__ = ["LinearProgram"]


def _as_csr(a, num_vars: int) -> sparse.csr_matrix | None:
    """Normalize a constraint block to CSR (``None`` stays ``None``)."""
    if a is None:
        return None
    mat = sparse.csr_matrix(a)
    if mat.shape[1] != num_vars:
        raise ValueError(
            f"constraint block has {mat.shape[1]} columns, expected {num_vars}"
        )
    return mat


@dataclass(frozen=True, eq=False)
class LinearProgram:
    """One minimization LP/MILP in canonical block form.

    ``eq=False``: ndarray fields make generated equality ambiguous
    (``==`` on arrays is elementwise); identity comparison is the only
    well-defined default.

    Attributes
    ----------
    c:
        Objective coefficients, one per column.
    a_ub, b_ub:
        Inequality block ``a_ub @ x <= b_ub`` (``None`` when absent).
    a_eq, b_eq:
        Equality block ``a_eq @ x == b_eq`` (``None`` when absent).
    lb, ub:
        Per-column bounds (``-inf``/``inf`` allowed).
    integrality:
        Per-column 0/1 mask; 1 marks an integer-constrained column.
    names:
        Optional per-column labels (``y[3]``, ``x[j=2,t=5]``) carried
        for diagnostics; backends never rely on them.
    """

    c: np.ndarray
    a_ub: sparse.csr_matrix | None = None
    b_ub: np.ndarray | None = None
    a_eq: sparse.csr_matrix | None = None
    b_eq: np.ndarray | None = None
    lb: np.ndarray | None = None
    ub: np.ndarray | None = None
    integrality: np.ndarray | None = None
    names: tuple[str, ...] | None = None
    #: Free-form provenance ("active-time LP1", "busy interval MILP");
    #: shows up in backend error messages.
    label: str = field(default="")

    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of columns."""
        return int(len(self.c))

    @property
    def num_constraints(self) -> int:
        """Total rows across the inequality and equality blocks."""
        rows = 0
        if self.a_ub is not None:
            rows += self.a_ub.shape[0]
        if self.a_eq is not None:
            rows += self.a_eq.shape[0]
        return rows

    @property
    def is_milp(self) -> bool:
        """True when at least one column is integer-constrained."""
        return self.integrality is not None and bool(
            np.any(self.integrality > 0)
        )

    @property
    def required_capability(self) -> str:
        """The backend capability this program needs: ``lp`` or ``milp``."""
        return "milp" if self.is_milp else "lp"

    # ------------------------------------------------------------------
    def bounds_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lb, ub)`` with defaults filled in (``0`` / ``+inf``).

        Always fresh copies: callers may edit them (e.g. to pin
        variables) without mutating this frozen program.
        """
        lb = (
            np.zeros(self.num_vars)
            if self.lb is None
            else np.array(self.lb, dtype=float)
        )
        ub = (
            np.full(self.num_vars, np.inf)
            if self.ub is None
            else np.array(self.ub, dtype=float)
        )
        return lb, ub

    def integrality_array(self) -> np.ndarray:
        """Per-column integrality mask (a copy) with the all-continuous
        default."""
        if self.integrality is None:
            return np.zeros(self.num_vars)
        return np.array(self.integrality, dtype=float)

    def describe(self) -> str:
        """One-line summary for logs and error messages."""
        kind = "MILP" if self.is_milp else "LP"
        prefix = f"{self.label}: " if self.label else ""
        return (
            f"{prefix}{kind} with {self.num_vars} vars, "
            f"{self.num_constraints} constraints"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        c,
        *,
        a_ub=None,
        b_ub=None,
        a_eq=None,
        b_eq=None,
        lb=None,
        ub=None,
        integrality=None,
        names: tuple[str, ...] | None = None,
        label: str = "",
    ) -> "LinearProgram":
        """Validating constructor: normalizes arrays and checks shapes."""
        c = np.asarray(c, dtype=float).ravel()
        n = len(c)
        a_ub = _as_csr(a_ub, n)
        a_eq = _as_csr(a_eq, n)
        b_ub = None if b_ub is None else np.asarray(b_ub, dtype=float).ravel()
        b_eq = None if b_eq is None else np.asarray(b_eq, dtype=float).ravel()
        if (a_ub is None) != (b_ub is None):
            raise ValueError("a_ub and b_ub must be given together")
        if (a_eq is None) != (b_eq is None):
            raise ValueError("a_eq and b_eq must be given together")
        if a_ub is not None and a_ub.shape[0] != len(b_ub):
            raise ValueError(
                f"a_ub has {a_ub.shape[0]} rows but b_ub has {len(b_ub)}"
            )
        if a_eq is not None and a_eq.shape[0] != len(b_eq):
            raise ValueError(
                f"a_eq has {a_eq.shape[0]} rows but b_eq has {len(b_eq)}"
            )
        for name, arr in (("lb", lb), ("ub", ub), ("integrality", integrality)):
            if arr is not None and len(np.asarray(arr).ravel()) != n:
                raise ValueError(f"{name} must have one entry per column")
        if names is not None and len(names) != n:
            raise ValueError("names must have one entry per column")
        return cls(
            c=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            lb=None if lb is None else np.asarray(lb, dtype=float).ravel(),
            ub=None if ub is None else np.asarray(ub, dtype=float).ravel(),
            integrality=(
                None
                if integrality is None
                else np.asarray(integrality, dtype=float).ravel()
            ),
            names=names,
            label=label,
        )

    @classmethod
    def from_two_sided(
        cls,
        c,
        a,
        row_lb,
        row_ub,
        *,
        lb=None,
        ub=None,
        integrality=None,
        names: tuple[str, ...] | None = None,
        label: str = "",
    ) -> "LinearProgram":
        """Build from two-sided rows ``row_lb <= a @ x <= row_ub``.

        Rows with ``row_lb == row_ub`` become equalities; finite upper
        (lower) sides become ``<=`` rows (lower sides negated).  This is
        the bridge from the MILP oracles, which assemble scipy-style
        ``LinearConstraint`` data.
        """
        a = sparse.csr_matrix(a)
        n = a.shape[1]
        row_lb = np.broadcast_to(
            np.asarray(row_lb, dtype=float), (a.shape[0],)
        )
        row_ub = np.broadcast_to(
            np.asarray(row_ub, dtype=float), (a.shape[0],)
        )

        eq_mask = row_lb == row_ub
        ub_rows: list[int] = []
        ub_vals: list[float] = []
        neg_rows: list[int] = []
        neg_vals: list[float] = []
        for i in range(a.shape[0]):
            if eq_mask[i]:
                continue
            if np.isfinite(row_ub[i]):
                ub_rows.append(i)
                ub_vals.append(row_ub[i])
            if np.isfinite(row_lb[i]):
                neg_rows.append(i)
                neg_vals.append(-row_lb[i])

        blocks = []
        b_ub: list[float] = []
        if ub_rows:
            blocks.append(a[ub_rows])
            b_ub.extend(ub_vals)
        if neg_rows:
            blocks.append(-a[neg_rows])
            b_ub.extend(neg_vals)
        a_ub = sparse.vstack(blocks).tocsr() if blocks else None
        a_eq = a[np.flatnonzero(eq_mask)] if eq_mask.any() else None
        return cls.build(
            c,
            a_ub=a_ub,
            b_ub=np.asarray(b_ub) if blocks else None,
            a_eq=a_eq,
            b_eq=row_ub[eq_mask] if eq_mask.any() else None,
            lb=lb,
            ub=ub,
            integrality=integrality,
            names=names,
            label=label,
        )

    # ------------------------------------------------------------------
    def with_bounds(self, lb, ub) -> "LinearProgram":
        """A copy with replaced variable bounds (used to pin variables)."""
        lb = np.asarray(lb, dtype=float).ravel()
        ub = np.asarray(ub, dtype=float).ravel()
        if len(lb) != self.num_vars or len(ub) != self.num_vars:
            raise ValueError("bounds must have one entry per column")
        return replace(self, lb=lb, ub=ub)

    def as_feasibility(self) -> "LinearProgram":
        """A copy with a zero objective (pure feasibility probe)."""
        return replace(self, c=np.zeros(self.num_vars))

    def relaxed(self) -> "LinearProgram":
        """A copy with all integrality dropped (the LP relaxation)."""
        return replace(self, integrality=None)
