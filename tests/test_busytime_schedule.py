"""Tests for busy-time schedule objects and verification."""

import pytest

from repro.busytime import Bundle, BusyTimeSchedule, BusyVerificationError
from repro.core import Instance, Job


class TestBundle:
    def test_busy_time_is_span(self):
        b = Bundle((Job(0, 2, 2, id=0), Job(1, 3, 2, id=1)))
        assert b.busy_time == pytest.approx(3.0)
        assert b.busy_intervals == [(0, 3)]

    def test_mass(self):
        b = Bundle((Job(0, 2, 2, id=0), Job(1, 3, 2, id=1)))
        assert b.mass == pytest.approx(4.0)

    def test_max_overlap(self):
        b = Bundle(
            (Job(0, 2, 2, id=0), Job(1, 3, 2, id=1), Job(1.5, 2.5, 1, id=2))
        )
        assert b.max_overlap() == 3

    def test_disjoint_bundle(self):
        b = Bundle((Job(0, 1, 1, id=0), Job(2, 3, 1, id=1)))
        assert b.max_overlap() == 1
        assert b.busy_time == pytest.approx(2.0)

    def test_job_ids_and_len(self):
        b = Bundle((Job(0, 1, 1, id=4), Job(2, 3, 1, id=2)))
        assert b.job_ids() == [2, 4]
        assert len(b) == 2


class TestScheduleAggregates:
    def test_total_busy_time(self, interval_instance):
        groups = [[j] for j in interval_instance.jobs]
        s = BusyTimeSchedule.from_bundle_jobs(interval_instance, 1, groups)
        assert s.total_busy_time == pytest.approx(
            sum(j.length for j in interval_instance.jobs)
        )
        assert s.num_machines == interval_instance.n

    def test_machine_of(self, interval_instance):
        groups = [[j] for j in interval_instance.jobs]
        s = BusyTimeSchedule.from_bundle_jobs(interval_instance, 1, groups)
        for k, j in enumerate(interval_instance.jobs):
            assert s.machine_of(j.id) == k
        with pytest.raises(KeyError):
            s.machine_of(999)

    def test_empty_groups_dropped(self, interval_instance):
        groups = [list(interval_instance.jobs), []]
        s = BusyTimeSchedule.from_bundle_jobs(interval_instance, 5, groups)
        assert s.num_machines == 1

    def test_default_starts_from_releases(self, interval_instance):
        s = BusyTimeSchedule.from_bundle_jobs(
            interval_instance, 5, [list(interval_instance.jobs)]
        )
        for j in interval_instance.jobs:
            assert s.starts[j.id] == j.release


class TestVerification:
    def test_valid_schedule(self, interval_instance):
        s = BusyTimeSchedule.from_bundle_jobs(
            interval_instance, 3, [list(interval_instance.jobs)]
        )
        s.verify()
        assert s.is_valid()

    def test_missing_job(self, interval_instance):
        s = BusyTimeSchedule.from_bundle_jobs(
            interval_instance, 3, [list(interval_instance.jobs[:-1])]
        )
        with pytest.raises(BusyVerificationError, match="never scheduled"):
            s.verify()

    def test_duplicated_job(self, interval_instance):
        jobs = list(interval_instance.jobs)
        s = BusyTimeSchedule.from_bundle_jobs(
            interval_instance, 3, [jobs, [jobs[0]]]
        )
        with pytest.raises(BusyVerificationError, match="appears in bundles"):
            s.verify()

    def test_capacity_violation(self, clique_instance):
        s = BusyTimeSchedule.from_bundle_jobs(
            clique_instance, 2, [list(clique_instance.jobs)]
        )
        with pytest.raises(BusyVerificationError, match="simultaneous"):
            s.verify()

    def test_length_mutation(self, interval_instance):
        pinned = [
            Job(j.release, j.release + j.length / 2, j.length / 2, id=j.id)
            for j in interval_instance.jobs
        ]
        s = BusyTimeSchedule.from_bundle_jobs(interval_instance, 3, [pinned])
        with pytest.raises(BusyVerificationError, match="length"):
            s.verify()

    def test_outside_window(self):
        inst = Instance.from_tuples([(0, 4, 2)])
        pinned = [Job(3, 5, 2, id=0)]
        s = BusyTimeSchedule.from_bundle_jobs(inst, 1, [pinned])
        with pytest.raises(BusyVerificationError, match="outside window"):
            s.verify()

    def test_unpinned_flexible_job(self):
        inst = Instance.from_tuples([(0, 4, 2)])
        s = BusyTimeSchedule.from_bundle_jobs(inst, 1, [[inst.jobs[0]]])
        with pytest.raises(BusyVerificationError, match="not pinned"):
            s.verify()
