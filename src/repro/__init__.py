"""repro — active-time and busy-time scheduling algorithms.

A production-quality reproduction of

    Jessica Chang, Samir Khuller, Koyel Mukherjee.
    *LP Rounding and Combinatorial Algorithms for Minimizing Active and
    Busy Time.*  SPAA 2014 (full version: arXiv:1610.08154).

Quickstart::

    from repro import Instance, round_active_time, greedy_tracking

    # Active time: 2-approximation by LP rounding (Theorem 2)
    inst = Instance.from_tuples([(0, 4, 2), (1, 5, 3), (0, 6, 1)])
    solution = round_active_time(inst, g=2)
    print(solution.cost, solution.lp_objective)

    # Busy time: GREEDYTRACKING 3-approximation (Theorem 5)
    jobs = Instance.from_intervals([(0, 2), (1, 3), (2.5, 4)])
    schedule = greedy_tracking(jobs, g=2)
    print(schedule.total_busy_time)

Package layout:

* :mod:`repro.core` — jobs, instances, interval algebra;
* :mod:`repro.flow` — Dinic max-flow and the Figure-2 feasibility network;
* :mod:`repro.lp` — the Section-3 LP/IP, its relaxation, exact MILP oracles;
* :mod:`repro.solvers` — the backend-neutral LP/MILP layer
  (:class:`~repro.solvers.LinearProgram` IR + scipy-highs / python-mip /
  reference backends behind a capability-routing registry);
* :mod:`repro.activetime` — minimal feasible (3-approx) and LP rounding
  (2-approx) for the active-time problem;
* :mod:`repro.busytime` — FIRSTFIT, GREEDYTRACKING, 2-approximations,
  lower bounds, the flexible-job pipeline and preemptive variants;
* :mod:`repro.instances` — random families and every paper gadget;
* :mod:`repro.analysis` — ratio-measurement harness.
"""

from .activetime import (
    ActiveTimeSchedule,
    RoundedSolution,
    exact_active_time,
    minimal_feasible_schedule,
    round_active_time,
    unit_jobs_optimal_schedule,
)
from .busytime import (
    Bundle,
    BusyTimeSchedule,
    PreemptiveSchedule,
    best_lower_bound,
    chain_peeling_two_approx,
    compute_demand_profile,
    exact_busy_time_interval,
    first_fit,
    greedy_tracking,
    greedy_unbounded_preemptive,
    kumar_rudra,
    opt_infinity,
    preemptive_bounded,
    schedule_flexible,
)
from .core import Instance, Job
from .lp import solve_active_time_exact, solve_active_time_lp
from .solvers import LinearProgram, SolverResult, solve_ir

__version__ = "1.0.0"

__all__ = [
    "ActiveTimeSchedule",
    "Bundle",
    "BusyTimeSchedule",
    "Instance",
    "Job",
    "PreemptiveSchedule",
    "RoundedSolution",
    "__version__",
    "best_lower_bound",
    "chain_peeling_two_approx",
    "LinearProgram",
    "SolverResult",
    "compute_demand_profile",
    "exact_active_time",
    "exact_busy_time_interval",
    "first_fit",
    "greedy_tracking",
    "greedy_unbounded_preemptive",
    "kumar_rudra",
    "minimal_feasible_schedule",
    "opt_infinity",
    "preemptive_bounded",
    "round_active_time",
    "schedule_flexible",
    "solve_active_time_exact",
    "solve_active_time_lp",
    "solve_ir",
    "unit_jobs_optimal_schedule",
]
