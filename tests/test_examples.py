"""Smoke tests: every example script runs end to end.

The examples double as integration tests of the public API; each is executed
in-process (fast seeds) and its stdout sanity-checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys, argv: list[str] | None = None) -> str:
    path = EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Active time" in out
    assert "Busy time" in out
    assert "LP rounding" in out


def test_vm_consolidation(capsys):
    out = run_example("datacenter_vm_consolidation.py", capsys, ["3"])
    assert "Host-on hours" in out
    assert "consolidation saves" in out


def test_optical_grooming(capsys):
    out = run_example("optical_network_grooming.py", capsys, ["2"])
    assert "Demand profile" in out
    assert "fiber-hours" in out


def test_energy_batch(capsys):
    out = run_example("energy_aware_batch_scheduling.py", capsys, ["4"])
    assert "Powered-on hours" in out
    assert "charging certificate" in out


def test_reproduce_figures(capsys):
    out = run_example("reproduce_paper_figures.py", capsys)
    for marker in ("Figure 1", "Figure 3", "Section 3.5", "Figure 8",
                   "Figure 9", "Figures 10-12"):
        assert marker in out


def test_visualize(capsys):
    out = run_example("visualize_schedules.py", capsys)
    assert "busy-time packings" in out
    assert "^" in out  # busy markers rendered


def test_capacity_sweep(capsys):
    out = run_example("capacity_planning_sweep.py", capsys, ["2"])
    assert "Active time vs capacity" in out
    assert "Busy time vs capacity" in out


def test_serve_smoke(capsys):
    out = run_example("serve_smoke.py", capsys)
    assert "serve smoke OK" in out
    assert "deduped server-side" in out
