"""GREEDYTRACKING — the paper's 3-approximation (Algorithm 1, Theorem 5).

The algorithm iteratively extracts a maximum-length *track* (pairwise-disjoint
jobs, found exactly by weighted interval scheduling) from the remaining jobs
and assigns track ``i`` to bundle ``ceil(i / g)``: every bundle is the union
of ``g`` consecutive tracks, so at most ``g`` of its jobs overlap anywhere.

Analysis (Theorem 5): ``Sp(B_1) <= OPT_inf`` and, for ``i > 1``,
``Sp(B_i) <= 2 ℓ(B_{i-1}) / g`` via the *proper witness set* ``Q_i`` — a
subset of ``B_i`` with the same span in which at most two jobs are live at
any time.  :func:`proper_witness_set` implements that extraction (it is pure
analysis, but having it executable lets the tests check the structural lemma
on every random instance).
"""

from __future__ import annotations

from typing import Sequence

from ..core.intervals import coverage_counts, span
from ..core.jobs import TIME_EPS, Instance, Job
from ..core.validation import require_capacity, require_interval_jobs
from .schedule import Bundle, BusyTimeSchedule
from .tracks import longest_track

__all__ = ["greedy_tracking", "extract_tracks", "proper_witness_set"]


def extract_tracks(instance: Instance) -> list[list[Job]]:
    """Peel maximum-length tracks until no jobs remain (Algorithm 1's loop)."""
    require_interval_jobs(instance, "GREEDYTRACKING")
    remaining: list[Job] = list(instance.jobs)
    tracks: list[list[Job]] = []
    while remaining:
        track = longest_track(remaining)
        if not track:  # pragma: no cover - defensive; every job is a track
            raise RuntimeError("no track found although jobs remain")
        tracks.append(track)
        chosen = {j.id for j in track}
        remaining = [j for j in remaining if j.id not in chosen]
    return tracks


def greedy_tracking(instance: Instance, g: int) -> BusyTimeSchedule:
    """Run GREEDYTRACKING on an interval instance (3-approximate overall).

    Returns a verified-shape :class:`BusyTimeSchedule`; bundle ``p`` holds
    tracks ``(p-1)g + 1 .. pg`` in extraction order.
    """
    require_interval_jobs(instance, "GREEDYTRACKING")
    require_capacity(g)
    tracks = extract_tracks(instance)
    groups: list[list[Job]] = []
    for i, track in enumerate(tracks):
        p = i // g
        if p == len(groups):
            groups.append([])
        groups[p].extend(track)
    return BusyTimeSchedule.from_bundle_jobs(instance, g, groups)


def proper_witness_set(bundle_jobs: Sequence[Job]) -> list[Job]:
    """The Theorem-5 witness ``Q_i``: same span, at most 2 jobs live anywhere.

    Construction, as in the proof:

    1. drop any job whose window is contained in another's (leaving a
       *proper* set);
    2. sweep by release time, repeatedly keeping the live job with the
       latest deadline ("the last one") and discarding the rest.

    The result ``Q`` satisfies ``Sp(Q) = Sp(B)`` and ``max overlap <= 2``;
    both are asserted by the test-suite on random bundles.
    """
    jobs = list(bundle_jobs)
    if not jobs:
        return []

    # Step 1: remove dominated (contained) windows.
    proper: list[Job] = []
    for j in jobs:
        contained = any(
            k is not j
            and k.release <= j.release + TIME_EPS
            and j.deadline <= k.deadline + TIME_EPS
            and (k.window_length > j.window_length + TIME_EPS or k.id < j.id)
            for k in jobs
        )
        if not contained:
            proper.append(j)

    # Step 2: sweep, keeping the live job with the latest deadline.  All
    # remaining pool jobs have deadline beyond d_max, so "live at d_max"
    # reduces to "released by d_max"; when coverage has a gap, jump d_max to
    # the next release.
    proper.sort(key=lambda j: (j.release, j.deadline, j.id))
    chosen: list[Job] = []
    pool = proper
    d_max = -float("inf")
    while pool:
        if not any(j.release <= d_max + TIME_EPS for j in pool):
            d_max = min(j.release for j in pool)
        live = [j for j in pool if j.release <= d_max + TIME_EPS]
        last = max(live, key=lambda j: (j.deadline, j.id))
        chosen.append(last)
        d_max = last.deadline
        pool = [j for j in pool if j.deadline > d_max + TIME_EPS]
    chosen.sort(key=lambda j: j.release)
    return chosen
