"""E15 (extension) — busy time with job widths (Khandekar et al. 5-approx).

The paper's introduction discusses the width generalization and its
5-approximation via the narrow/wide split.  We measure both the plain
width-aware FIRSTFIT and the split against the width-profile lower bound,
and ablate the split threshold.
"""

import pytest

from repro.busytime import (
    WidthInstance,
    WidthJob,
    first_fit_with_widths,
    khandekar_narrow_wide,
    width_mass_lower_bound,
    width_profile_lower_bound,
)
from repro.instances import random_interval_instance


def make_width_instance(rng, n, g):
    base = random_interval_instance(n, 1.5 * n, rng=rng)
    return WidthInstance(
        tuple(WidthJob(j, float(rng.uniform(0.3, g))) for j in base.jobs)
    )


def test_width_algorithms_vs_profile(rng, emit):
    rows = []
    for (n, g) in [(12, 3), (20, 4), (30, 6)]:
        worst_ff = worst_kw = 0.0
        for _ in range(10):
            wi = make_width_instance(rng, n, g)
            lb = max(
                width_mass_lower_bound(wi, g),
                width_profile_lower_bound(wi, g),
            )
            ff = first_fit_with_widths(wi, g)
            kw = khandekar_narrow_wide(wi, g)
            ff.verify()
            kw.verify()
            worst_ff = max(worst_ff, ff.total_busy_time / lb)
            worst_kw = max(worst_kw, kw.total_busy_time / lb)
        rows.append([f"n={n}, g={g}", worst_ff, worst_kw, 5.0])
        assert worst_kw <= 5.0 + 1e-9
    emit(
        "E15 — width model: cost / width-profile bound "
        "(paper context: Khandekar et al. 5-approx)",
        ["family", "width FIRSTFIT (max)", "narrow/wide split (max)",
         "paper bound"],
        rows,
    )


def test_narrow_wide_ablation(rng, emit):
    """Does the split help over plain width-FF?  (design-choice ablation)"""
    better = worse = same = 0
    for _ in range(20):
        wi = make_width_instance(rng, 16, 4)
        ff = first_fit_with_widths(wi, 4).total_busy_time
        kw = khandekar_narrow_wide(wi, 4).total_busy_time
        if kw < ff - 1e-9:
            better += 1
        elif kw > ff + 1e-9:
            worse += 1
        else:
            same += 1
    emit(
        "E15 — narrow/wide split ablation (vs plain width FIRSTFIT)",
        ["split better", "split worse", "equal"],
        [[better, worse, same]],
    )


@pytest.mark.parametrize("n", [20, 50])
def test_narrow_wide_runtime(benchmark, rng, n):
    wi = make_width_instance(rng, n, 4)
    s = benchmark(khandekar_narrow_wide, wi, 4)
    assert s.total_busy_time > 0
