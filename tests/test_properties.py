"""Property-based tests (hypothesis) for core invariants.

Each property encodes a lemma or observation from the paper (or a structural
fact its algorithms rely on) and is checked on randomly generated instances.
LP/MILP-backed properties use reduced example counts to keep runtime sane.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import Instance, Job, merge_intervals, span, total_length

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def integral_jobs(draw, max_n=8, max_t=10, max_len=3):
    n = draw(st.integers(1, max_n))
    jobs = []
    for i in range(n):
        p = draw(st.integers(1, max_len))
        slack = draw(st.integers(0, 3))
        r = draw(st.integers(0, max_t - p - slack))
        jobs.append(Job(r, r + p + slack, p, id=i))
    return Instance(tuple(jobs))


@st.composite
def interval_jobs(draw, max_n=10):
    n = draw(st.integers(1, max_n))
    jobs = []
    for i in range(n):
        a = draw(st.floats(0, 15, allow_nan=False))
        ln = draw(st.floats(0.25, 4, allow_nan=False))
        jobs.append(Job(round(a, 3), round(a + ln, 3) , round(a + ln, 3) - round(a, 3), id=i))
    return Instance(tuple(jobs))


@st.composite
def raw_intervals(draw, max_n=12):
    n = draw(st.integers(0, max_n))
    out = []
    for _ in range(n):
        a = draw(st.floats(-5, 20, allow_nan=False))
        ln = draw(st.floats(0.01, 6, allow_nan=False))
        out.append((a, a + ln))
    return out


# ----------------------------------------------------------------------
# Interval algebra laws
# ----------------------------------------------------------------------
class TestIntervalAlgebraProperties:
    @given(raw_intervals())
    @settings(max_examples=200, **COMMON)
    def test_span_at_most_mass(self, ivs):
        assert span(ivs) <= total_length(ivs) + 1e-6

    @given(raw_intervals())
    @settings(max_examples=200, **COMMON)
    def test_merge_idempotent(self, ivs):
        once = merge_intervals(ivs)
        twice = merge_intervals(once)
        assert once == twice

    @given(raw_intervals())
    @settings(max_examples=200, **COMMON)
    def test_merged_disjoint_and_sorted(self, ivs):
        merged = merge_intervals(ivs)
        for (a1, b1), (a2, b2) in zip(merged, merged[1:]):
            assert b1 < a2 + 1e-9
        assert merged == sorted(merged)

    @given(raw_intervals(), raw_intervals())
    @settings(max_examples=200, **COMMON)
    def test_span_subadditive(self, xs, ys):
        assert span(xs + ys) <= span(xs) + span(ys) + 1e-6

    @given(raw_intervals())
    @settings(max_examples=200, **COMMON)
    def test_coverage_mass_conservation(self, ivs):
        from repro.core import coverage_counts

        cov = coverage_counts(ivs)
        mass = sum((b - a) * c for (a, b), c in cov)
        assert mass == pytest.approx(total_length(ivs), abs=1e-5)


# ----------------------------------------------------------------------
# Feasibility-network properties
# ----------------------------------------------------------------------
class TestFeasibilityProperties:
    @given(integral_jobs(), st.integers(1, 3))
    @settings(max_examples=40, **COMMON)
    def test_adding_slots_preserves_feasibility(self, inst, g):
        from repro.flow import ActiveTimeFeasibility

        oracle = ActiveTimeFeasibility(inst, g)
        T = inst.horizon
        half = set(range(1, T + 1, 2))
        if oracle.is_feasible(half):
            assert oracle.is_feasible(set(range(1, T + 1)))

    @given(integral_jobs(), st.integers(1, 3))
    @settings(max_examples=40, **COMMON)
    def test_flow_value_bounded_by_mass_and_capacity(self, inst, g):
        from repro.flow import ActiveTimeFeasibility

        oracle = ActiveTimeFeasibility(inst, g)
        slots = set(range(1, inst.horizon + 1, 2))
        v = oracle.max_flow_value(slots)
        assert v <= int(inst.total_length)
        assert v <= g * len(slots)


# ----------------------------------------------------------------------
# Active-time algorithm properties (LP-backed; fewer examples)
# ----------------------------------------------------------------------
class TestActiveTimeProperties:
    @given(integral_jobs(max_n=6, max_t=8), st.integers(1, 3))
    @settings(max_examples=25, **COMMON)
    def test_rounding_within_2x_lp_and_feasible(self, inst, g):
        from repro.activetime import round_active_time

        try:
            sol = round_active_time(inst, g, strict=True)
        except RuntimeError:
            return  # instance infeasible at this g
        sol.schedule.verify()
        assert sol.cost <= 2 * sol.lp_objective + 1e-6
        assert sol.repair_slots == []

    @given(integral_jobs(max_n=6, max_t=8), st.integers(1, 3))
    @settings(max_examples=25, **COMMON)
    def test_minimal_feasible_within_3x_opt(self, inst, g):
        from repro.activetime import exact_active_time, minimal_feasible_schedule

        try:
            exact = exact_active_time(inst, g)
        except RuntimeError:
            return
        s = minimal_feasible_schedule(inst, g)
        s.verify()
        assert s.cost <= 3 * exact.cost

    @given(integral_jobs(max_n=6, max_t=8), st.integers(1, 3))
    @settings(max_examples=25, **COMMON)
    def test_lp_sandwich(self, inst, g):
        """mass/g <= LP <= IP."""
        from repro.activetime import exact_active_time, lower_bound_mass
        from repro.lp import solve_active_time_lp

        try:
            exact = exact_active_time(inst, g)
        except RuntimeError:
            return
        lp = solve_active_time_lp(inst, g)
        assert lp.objective <= exact.cost + 1e-6
        assert exact.cost >= lower_bound_mass(inst, g)


# ----------------------------------------------------------------------
# Busy-time algorithm properties
# ----------------------------------------------------------------------
class TestBusyTimeProperties:
    @given(interval_jobs(), st.integers(1, 4))
    @settings(max_examples=40, **COMMON)
    def test_all_algorithms_feasible_and_bounded(self, inst, g):
        from repro.busytime import (
            best_lower_bound,
            chain_peeling_two_approx,
            first_fit,
            greedy_tracking,
            kumar_rudra,
        )

        lb = best_lower_bound(inst, g)
        for fn, factor in (
            (first_fit, 4),
            (greedy_tracking, 3),
            (chain_peeling_two_approx, 2),
            (kumar_rudra, 2),
        ):
            s = fn(inst, g)
            s.verify()
            assert s.total_busy_time >= lb - 1e-6
            assert s.total_busy_time <= factor * lb + 1e-6

    @given(interval_jobs(max_n=8))
    @settings(max_examples=60, **COMMON)
    def test_chain_parity_classes_are_tracks(self, inst):
        from repro.busytime import extract_chain, is_track

        chain = extract_chain(list(inst.jobs))
        assert is_track(chain[0::2])
        assert is_track(chain[1::2])

    @given(interval_jobs(max_n=8))
    @settings(max_examples=60, **COMMON)
    def test_witness_set_invariants(self, inst):
        from repro.busytime import proper_witness_set
        from repro.core import coverage_counts

        q = proper_witness_set(list(inst.jobs))
        assert span(j.window for j in q) == pytest.approx(
            span(j.window for j in inst.jobs), abs=1e-6
        )
        cov = coverage_counts([j.window for j in q])
        assert max((c for _, c in cov), default=0) <= 2

    @given(integral_jobs(max_n=5, max_t=8), st.integers(1, 3))
    @settings(max_examples=15, **COMMON)
    def test_flexible_pipeline_theorem5_bound(self, inst, g):
        from repro.busytime import (
            mass_lower_bound,
            opt_infinity,
            schedule_flexible,
        )

        s = schedule_flexible(inst, g, algorithm="greedy_tracking")
        s.verify()
        placement = opt_infinity(inst)
        assert (
            s.total_busy_time
            <= placement.busy_time + 2 * mass_lower_bound(inst, g) + 1e-6
        )

    @given(integral_jobs(max_n=6, max_t=8))
    @settings(max_examples=20, **COMMON)
    def test_preemptive_greedy_matches_lp(self, inst):
        from repro.busytime import greedy_unbounded_preemptive
        from test_busytime_preemptive import (
            preemptive_unbounded_opt_reference,
        )

        s = greedy_unbounded_preemptive(inst)
        s.verify()
        assert s.total_busy_time == pytest.approx(
            preemptive_unbounded_opt_reference(inst), abs=1e-6
        )
