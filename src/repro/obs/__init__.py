"""`repro.obs` — stdlib-only observability: metrics, traces, events.

Layers, bottom up:

* :mod:`~repro.obs.metrics` — thread-safe ``Counter``/``Gauge``/
  ``Histogram`` families with label support behind a process-wide
  :class:`MetricsRegistry` (:data:`REGISTRY`).  No third-party
  dependencies, matching the project's stdlib-server philosophy.
* :mod:`~repro.obs.prom` — Prometheus text-exposition renderer for a
  registry; what ``GET /metrics`` serves.
* :mod:`~repro.obs.trace` — per-task span recorder.  Spans created in
  worker processes ride home inside ``TaskResult.metrics["trace"]`` so
  the parent process can aggregate them despite the pool boundary.
* :mod:`~repro.obs.events` — structured JSONL event log backing the
  CLI's ``--obs-log``.

Instrumentation throughout the engine/solvers/serve stack records into
:data:`REGISTRY` by default; ``REGISTRY.disable()`` turns every
recording call into a cheap no-op (the overhead benchmark pins the
enabled-vs-disabled difference on the hot solve path under 3%).
"""

from .events import EventLog
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from .prom import render_prometheus
from .trace import TaskTrace, trace_labels, trace_spans

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "TaskTrace",
    "render_prometheus",
    "trace_labels",
    "trace_spans",
]
