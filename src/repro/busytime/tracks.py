"""Tracks: sets of pairwise-disjoint interval jobs (Definition 14).

GREEDYTRACKING repeatedly needs a *maximum-length* track — a maximum-weight
independent set of intervals with weight = length.  That is the classic
weighted interval scheduling problem, solved exactly by the sort-by-end /
binary-search dynamic program [CLRS], as the paper notes.

Touching intervals (one ends exactly where the next starts) count as disjoint:
half-open windows ``[a, b)`` and ``[b, c)`` never run simultaneously.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from ..core.jobs import TIME_EPS, Job

__all__ = ["longest_track", "is_track", "track_length"]


def is_track(jobs: Iterable[Job]) -> bool:
    """True when the jobs' windows are pairwise disjoint (a valid track)."""
    windows = sorted(j.window for j in jobs)
    for (a1, b1), (a2, b2) in zip(windows, windows[1:]):
        if a2 < b1 - TIME_EPS:
            return False
    return True


def track_length(jobs: Iterable[Job]) -> float:
    """Total processing length ``ℓ(T)`` of a track."""
    return sum(j.length for j in jobs)


def longest_track(jobs: Sequence[Job]) -> list[Job]:
    """A maximum-total-length set of pairwise-disjoint interval jobs.

    Exact weighted-interval-scheduling DP: ``O(n log n)``.

    Parameters
    ----------
    jobs:
        Interval jobs (start times fixed at their release times).  Flexible
        jobs are rejected — GREEDYTRACKING runs after the instance has been
        converted to interval jobs.

    Returns
    -------
    The selected jobs sorted by start time (empty when ``jobs`` is empty).
    """
    items = list(jobs)
    for j in items:
        if not j.is_interval:
            raise ValueError(
                f"longest_track requires interval jobs; job {j.id} is flexible"
            )
    if not items:
        return []

    items.sort(key=lambda j: (j.deadline, j.release, j.id))
    ends = [j.deadline for j in items]
    n = len(items)

    # pred[i]: rightmost job index ending at or before items[i] starts.
    pred = [0] * n
    for i, j in enumerate(items):
        # bisect over the sorted end times; TIME_EPS-nudge makes a job whose
        # end coincides with j's start count as compatible.
        pred[i] = bisect.bisect_right(ends, j.release + TIME_EPS, 0, i)

    best = [0.0] * (n + 1)
    take = [False] * n
    for i in range(1, n + 1):
        job = items[i - 1]
        with_job = best[pred[i - 1]] + job.length
        without = best[i - 1]
        if with_job > without + TIME_EPS:
            best[i] = with_job
            take[i - 1] = True
        else:
            best[i] = without

    chosen: list[Job] = []
    i = n
    while i > 0:
        if take[i - 1]:
            chosen.append(items[i - 1])
            i = pred[i - 1]
        else:
            i -= 1
    chosen.reverse()
    return chosen
