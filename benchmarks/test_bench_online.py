"""E16 (extension) — online busy time (Shalom et al. setting, Section 1.3).

The paper surveys the online model: deterministic algorithms cannot beat
g-competitive in general.  We measure *empirical* competitive ratios of two
irrevocable policies against the offline exact optimum, maximizing over
adversarial arrival permutations of each instance.
"""

import numpy as np
import pytest

from repro.busytime import (
    exact_busy_time_interval,
    nested_adversarial_instance,
    online_best_fit,
    online_first_fit,
)
from repro.core import Instance
from repro.instances import random_interval_instance


def worst_over_permutations(instance, g, policy, rng, tries=6):
    """Max policy cost over adversarial input permutations (same releases)."""
    worst = 0.0
    jobs = list(instance.jobs)
    for _ in range(tries):
        perm = list(jobs)
        rng.shuffle(perm)
        shuffled = Instance(tuple(perm))
        worst = max(worst, policy(shuffled, g).total_busy_time)
    return worst


def test_online_competitive_ratios(rng, emit):
    rows = []
    for (n, g) in [(8, 2), (10, 3)]:
        worst_ff = worst_bf = 0.0
        for _ in range(6):
            inst = random_interval_instance(n, 14.0, rng=rng)
            opt = exact_busy_time_interval(inst, g).total_busy_time
            ff = worst_over_permutations(inst, g, online_first_fit, rng)
            bf = worst_over_permutations(inst, g, online_best_fit, rng)
            worst_ff = max(worst_ff, ff / opt)
            worst_bf = max(worst_bf, bf / opt)
        rows.append([f"n={n}, g={g}", worst_ff, worst_bf, f"g={g}"])
        # deterministic online can be as bad as g-competitive, never better
        # than 1; empirically both policies stay well below g here.
        assert worst_ff >= 1.0 - 1e-9
        assert worst_bf >= 1.0 - 1e-9
    emit(
        "E16 — empirical competitive ratios over adversarial permutations "
        "(paper: deterministic lower bound g)",
        ["family", "first fit (max)", "best fit (max)", "theory LB"],
        rows,
    )


def test_nested_family(emit):
    rows = []
    for g in (2, 3, 4):
        inst = nested_adversarial_instance(g)
        opt = exact_busy_time_interval(inst, g).total_busy_time
        ff = online_first_fit(inst, g).total_busy_time
        bf = online_best_fit(inst, g).total_busy_time
        rows.append([g, opt, ff, bf])
        assert ff >= opt - 1e-9
        assert bf >= opt - 1e-9
    emit(
        "E16 — nested clique stress family",
        ["g", "offline OPT", "online first fit", "online best fit"],
        rows,
    )


@pytest.mark.parametrize("policy", [online_first_fit, online_best_fit])
def test_online_policy_runtime(benchmark, rng, policy):
    inst = random_interval_instance(40, 60.0, rng=rng)
    s = benchmark(policy, inst, 3)
    assert s.is_valid()
