"""Dependency-free reference backend: dense two-phase simplex + branch & bound.

This backend exists for two reasons:

* **CI sanity** — it shares no code (and no native library) with the
  scipy/HiGHS path, so agreement between the two on the paper's example
  instances is a real cross-check, not a tautology;
* **portability** — environments without a working HiGHS build can still
  run every LP-based algorithm on small instances.

It is deliberately simple: a dense tableau, Bland's anti-cycling rule,
artificial variables on every row (uniform phase 1), and best-first-free
depth-first branch & bound on the integral columns.  Complexity is
polynomial per pivot but the tableau is dense — keep instances tiny
(a few hundred columns is comfortable; there is a hard guard at
:data:`MAX_DENSE_VARS`).
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import numpy as np

from .base import SolverResult
from .ir import LinearProgram

__all__ = ["ReferenceBackend"]

#: Refuse to densify anything larger than this many columns.
MAX_DENSE_VARS = 5000

_TOL = 1e-9
#: Integrality tolerance for branch & bound leaves.
_INT_TOL = 1e-6


class _Timeout(Exception):
    pass


class _Unbounded(Exception):
    pass


# ----------------------------------------------------------------------
# Dense two-phase simplex
# ----------------------------------------------------------------------
def _pivot(t: np.ndarray, basis: list[int], row: int, col: int) -> None:
    t[row] /= t[row, col]
    factors = t[:, col].copy()
    factors[row] = 0.0
    t -= np.outer(factors, t[row])
    basis[row] = col


def _run_simplex(
    t: np.ndarray,
    basis: list[int],
    cost_row: int,
    m: int,
    deadline: float | None,
) -> None:
    """Minimize the objective stored in ``t[cost_row]`` in place.

    ``m`` is the number of constraint rows (rows ``0..m-1``).  Raises
    :class:`_Unbounded` or :class:`_Timeout`; returns at optimality.
    Bland's rule (lowest-index entering column, lowest-basis-index
    leaving row among ties) guarantees termination.
    """
    max_iter = 200 * (m + t.shape[1])
    for _ in range(max_iter):
        if deadline is not None and time.perf_counter() > deadline:
            raise _Timeout
        reduced = t[cost_row, :-1]
        entering = -1
        for j in range(len(reduced)):
            if reduced[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return
        leaving, best = -1, np.inf
        col = t[:m, entering]
        rhs = t[:m, -1]
        for i in range(m):
            if col[i] > _TOL:
                ratio = rhs[i] / col[i]
                if ratio < best - _TOL or (
                    ratio <= best + _TOL
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best, leaving = min(best, ratio), i
        if leaving < 0:
            raise _Unbounded
        _pivot(t, basis, leaving, entering)
    raise RuntimeError("simplex iteration limit hit (numerical trouble?)")


def _dense_lp(
    c: np.ndarray,
    a_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    a_eq: np.ndarray | None,
    b_eq: np.ndarray | None,
    lb: np.ndarray,
    ub: np.ndarray,
    deadline: float | None,
) -> tuple[str, np.ndarray | None, float | None]:
    """Solve one bounded LP; returns ``(status, x, objective)``."""
    n = len(c)
    if not np.all(np.isfinite(lb)):
        raise ValueError(
            "reference backend requires finite lower bounds on every column"
        )
    if np.any(lb > ub + _TOL):
        return "infeasible", None, None

    # Shift to z = x - lb >= 0; fold finite upper bounds into rows.
    rows_a: list[np.ndarray] = []
    rows_b: list[float] = []
    if a_ub is not None:
        shifted = b_ub - a_ub @ lb
        for i in range(a_ub.shape[0]):
            rows_a.append(a_ub[i])
            rows_b.append(float(shifted[i]))
    for i in range(n):
        if np.isfinite(ub[i]):
            row = np.zeros(n)
            row[i] = 1.0
            rows_a.append(row)
            rows_b.append(float(ub[i] - lb[i]))
    m_ub = len(rows_a)
    if a_eq is not None:
        shifted = b_eq - a_eq @ lb
        for i in range(a_eq.shape[0]):
            rows_a.append(a_eq[i])
            rows_b.append(float(shifted[i]))
    m = len(rows_a)
    if m == 0:
        # Bounded below by lb and no constraints: minimize column-wise.
        x = lb.copy()
        if np.any((c < -_TOL) & ~np.isfinite(ub)):
            return "unbounded", None, None
        lower = c < -_TOL  # same mask as the guard: near-zero costs stay at lb
        x[lower] = ub[lower]
        return "optimal", x, float(c @ x)

    # Equality standard form: slacks on the <= rows, then artificials
    # on every row (uniform phase-1 basis).
    a = np.zeros((m, n + m_ub + m))
    b = np.asarray(rows_b, dtype=float)
    for i, row in enumerate(rows_a):
        a[i, :n] = row
    for i in range(m_ub):
        a[i, n + i] = 1.0
    neg = b < 0
    a[neg] *= -1.0
    b = np.abs(b)
    art0 = n + m_ub
    for i in range(m):
        a[i, art0 + i] = 1.0

    # Tableau: m constraint rows, then the phase-2 cost row, then the
    # phase-1 cost row; last column is the rhs.
    t = np.zeros((m + 2, a.shape[1] + 1))
    t[:m, :-1] = a
    t[:m, -1] = b
    t[m, :n] = c  # phase-2 reduced costs (artificials cost 0 here)
    t[m + 1, :art0] = -a[:, :art0].sum(axis=0)  # phase-1: w = sum(artificials)
    t[m + 1, -1] = -b.sum()
    basis = list(range(art0, art0 + m))

    try:
        _run_simplex(t, basis, m + 1, m, deadline)
    except _Timeout:
        return "timeout", None, None
    except _Unbounded:  # pragma: no cover - phase 1 is bounded below by 0
        return "error", None, None
    if -t[m + 1, -1] > 1e-7:
        return "infeasible", None, None

    # Drive leftover zero-level artificials out of the basis.
    for i in range(m):
        if basis[i] >= art0:
            entering = next(
                (j for j in range(art0) if abs(t[i, j]) > _TOL), None
            )
            if entering is not None:
                _pivot(t, basis, i, entering)
            # else: redundant row; the artificial stays basic at level 0
            # and its column is barred below, so it can never re-enter.

    # Phase 2 on the original objective, artificial columns barred.
    t[m + 1, :] = 0.0
    t[:, art0 : art0 + m] = 0.0
    try:
        _run_simplex(t, basis, m, m, deadline)
    except _Timeout:
        return "timeout", None, None
    except _Unbounded:
        return "unbounded", None, None

    z = np.zeros(a.shape[1])
    for i in range(m):
        z[basis[i]] = t[i, -1]
    x = z[:n] + lb
    return "optimal", x, float(c @ x)


# ----------------------------------------------------------------------
# Backend
# ----------------------------------------------------------------------
class ReferenceBackend:
    """From-scratch dense simplex + branch & bound (numpy only)."""

    name = "reference"

    def capabilities(self) -> frozenset[str]:
        return frozenset({"lp", "milp", "dependency-free", "tiny"})

    def available(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def solve(
        self,
        lp: LinearProgram,
        *,
        time_limit: float | None = None,
        options: Mapping[str, Any] | None = None,
    ) -> SolverResult:
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None
        options = dict(options or {})
        if lp.num_vars == 0:
            return SolverResult(
                status="optimal",
                backend=self.name,
                objective=0.0,
                x=np.zeros(0),
                elapsed=time.perf_counter() - start,
            )
        if lp.num_vars > MAX_DENSE_VARS:
            raise ValueError(
                f"{lp.describe()} exceeds the reference backend's dense "
                f"limit of {MAX_DENSE_VARS} columns; use scipy-highs"
            )
        a_ub = None if lp.a_ub is None else lp.a_ub.toarray()
        a_eq = None if lp.a_eq is None else lp.a_eq.toarray()
        lb, ub = lp.bounds_arrays()
        int_cols = np.flatnonzero(lp.integrality_array() > 0)

        try:
            if len(int_cols) == 0:
                status, x, obj = _dense_lp(
                    lp.c, a_ub, lp.b_ub, a_eq, lp.b_eq, lb, ub, deadline
                )
            else:
                status, x, obj = self._branch_and_bound(
                    lp, a_ub, a_eq, lb, ub, int_cols, deadline, options
                )
        except ValueError:
            raise
        except RuntimeError as exc:
            return SolverResult(
                status="error",
                backend=self.name,
                message=str(exc),
                elapsed=time.perf_counter() - start,
            )
        return SolverResult(
            status=status,
            backend=self.name,
            objective=obj if status == "optimal" else None,
            x=x if status == "optimal" else None,
            message="" if status == "optimal" else status,
            elapsed=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _branch_and_bound(
        self,
        lp: LinearProgram,
        a_ub,
        a_eq,
        lb: np.ndarray,
        ub: np.ndarray,
        int_cols: np.ndarray,
        deadline: float | None,
        options: Mapping[str, Any],
    ) -> tuple[str, np.ndarray | None, float | None]:
        max_nodes = int(options.get("max_nodes", 200_000))
        best_obj = np.inf
        best_x: np.ndarray | None = None
        stack: list[tuple[np.ndarray, np.ndarray]] = [(lb, ub)]
        nodes = 0
        while stack:
            nodes += 1
            if nodes > max_nodes:
                raise RuntimeError(
                    f"branch & bound exceeded {max_nodes} nodes"
                )
            node_lb, node_ub = stack.pop()
            status, x, obj = _dense_lp(
                lp.c, a_ub, lp.b_ub, a_eq, lp.b_eq, node_lb, node_ub, deadline
            )
            if status == "timeout":
                return "timeout", None, None
            if status == "unbounded" and nodes == 1:
                return "unbounded", None, None
            if status != "optimal" or obj >= best_obj - _TOL:
                continue
            frac = [
                (abs(x[i] - round(x[i])), i)
                for i in int_cols
                if abs(x[i] - round(x[i])) > _INT_TOL
            ]
            if not frac:
                z = x.copy()
                z[int_cols] = np.round(z[int_cols])
                best_obj, best_x = float(lp.c @ z), z
                continue
            # Branch on the most fractional column (ties: lowest index,
            # for determinism); explore the floor side first.
            _, i = max(frac, key=lambda fi: (fi[0], -fi[1]))
            down_ub = node_ub.copy()
            down_ub[i] = np.floor(x[i])
            up_lb = node_lb.copy()
            up_lb[i] = np.ceil(x[i])
            stack.append((up_lb, node_ub))
            stack.append((node_lb, down_ub))
        if best_x is None:
            return "infeasible", None, None
        return "optimal", best_x, best_obj
