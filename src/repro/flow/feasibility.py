"""The feasibility network ``G_feas`` of Figure 2 and fast repeated probes.

Given an integral active-time instance, a capacity ``g`` and a set ``A`` of
active slots, the paper observes that a feasible (integral, slot-preemptive)
schedule exists if and only if the maximum ``s -> v`` flow on the network

    source --(p_j)--> job j --(1)--> slot t --(g or 0)--> sink

has value ``P = sum_j p_j``, where slot-to-sink edges carry capacity ``g``
exactly on active slots and ``0`` elsewhere.

Both approximation algorithms in Sections 2–3 call this probe many times with
different active sets, so :class:`ActiveTimeFeasibility` builds the network
once and only flips slot capacities between probes.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..core.jobs import Instance
from ..core.validation import require_capacity, require_integral
from .dinic import Dinic

__all__ = ["ActiveTimeFeasibility", "is_feasible_slot_set", "extract_assignment"]


class ActiveTimeFeasibility:
    """Reusable feasibility oracle for the active-time problem.

    Parameters
    ----------
    instance:
        Integral instance (releases, deadlines, lengths all integers).
    g:
        Machine capacity: at most ``g`` distinct jobs per active slot.

    Notes
    -----
    Slots are numbered ``1..T`` with ``T = max_j d_j`` (slot ``t`` is the unit
    ``[t-1, t)``).  Probes accept any iterable of slot numbers.
    """

    def __init__(self, instance: Instance, g: int):
        require_integral(instance, "feasibility network")
        require_capacity(g)
        self.instance = instance
        self.g = g
        self.T = instance.horizon
        self.P = int(round(instance.total_length))

        n = instance.n
        # node layout: 0 = source, 1..n = jobs, n+1..n+T = slots, n+T+1 = sink
        self._source = 0
        self._sink = n + self.T + 1
        net = Dinic(n + self.T + 2)

        self._job_edge: dict[int, int] = {}
        # handles of job->slot unit edges keyed by (job_id, slot)
        self._unit_edge: dict[tuple[int, int], int] = {}
        self._slot_edge: list[int] = [-1] * (self.T + 1)  # 1-based by slot

        for pos, job in enumerate(instance.jobs):
            jn = 1 + pos
            self._job_edge[job.id] = net.add_edge(self._source, jn, job.integral_length())
            for t in job.feasible_slots():
                self._unit_edge[(job.id, t)] = net.add_edge(jn, n + t, 1)
        for t in range(1, self.T + 1):
            self._slot_edge[t] = net.add_edge(n + t, self._sink, 0)

        self._net = net

    # ------------------------------------------------------------------
    def _configure(self, active_slots: Iterable[int]) -> None:
        for t in range(1, self.T + 1):
            self._net.set_capacity(self._slot_edge[t], 0)
        for t in active_slots:
            if 1 <= t <= self.T:
                self._net.set_capacity(self._slot_edge[t], self.g)
            # slots outside [1, T] can never host a job; ignore silently so
            # callers may pass padded candidate sets.

    def max_flow_value(self, active_slots: Iterable[int]) -> int:
        """Maximum schedulable job mass using only the given active slots."""
        self._configure(active_slots)
        return self._net.max_flow(self._source, self._sink).value

    def is_feasible(self, active_slots: Iterable[int]) -> bool:
        """True when *all* jobs fit into the given active slots."""
        return self.max_flow_value(active_slots) == self.P

    def assignment(
        self, active_slots: Iterable[int]
    ) -> dict[int, list[int]] | None:
        """An integral assignment ``job id -> sorted list of slots``, if feasible.

        Returns ``None`` when the slot set cannot accommodate all jobs.  Each
        job appears in exactly ``p_j`` slots, each slot hosts at most ``g``
        jobs, and no job occupies a slot twice — the schedule properties of
        Section 2.
        """
        self._configure(active_slots)
        result = self._net.max_flow(self._source, self._sink)
        if result.value != self.P:
            return None
        out: dict[int, list[int]] = {j.id: [] for j in self.instance.jobs}
        for (job_id, t), handle in self._unit_edge.items():
            if result.flows[handle] > 0:
                out[job_id].append(t)
        for slots in out.values():
            slots.sort()
        return out


def is_feasible_slot_set(
    instance: Instance, g: int, active_slots: Iterable[int]
) -> bool:
    """One-shot feasibility probe (builds the network, solves once)."""
    return ActiveTimeFeasibility(instance, g).is_feasible(active_slots)


def extract_assignment(
    instance: Instance, g: int, active_slots: Iterable[int]
) -> dict[int, list[int]] | None:
    """One-shot assignment extraction (``None`` when infeasible)."""
    return ActiveTimeFeasibility(instance, g).assignment(active_slots)
