"""E-obs (engineering) — instrumentation overhead of `repro.obs`.

Not a paper claim: pins the cost of the metrics/trace layer added
across the engine.  Two complementary pins:

* a **deterministic budget**: the measured per-operation cost of the
  metric primitives, times a generous per-task operation count, must be
  under 3% of the per-task solve floor of a stock sweep workload;
* an **A/B batch comparison**: the same workload with the registry
  enabled vs ``REGISTRY.disable()``-d, interleaved in pairs to cancel
  machine drift, with the allowed margin widened by the *measured*
  run-to-run noise of the disabled arm — a genuine >3% regression fails
  either way, a noisy CI box does not produce false alarms.
"""

import gc
import statistics
import time

from repro.engine import BatchRunner, build_sweep_tasks, default_grid
from repro.obs import REGISTRY, MetricsRegistry, TaskTrace, render_prometheus

#: The pin: instrumentation must cost < 3% of the uninstrumented run.
OVERHEAD_LIMIT = 0.03

#: Generous ceiling on metric operations the engine performs per task
#: (counters, histogram observes, gauge moves, trace spans).  The real
#: number is ~15; the pin holds even at 4x that.
OPS_PER_TASK = 60


def _workload():
    return build_sweep_tasks([default_grid("busy")], limit=24)


def _run_batch(tasks):
    with BatchRunner(jobs=1) as runner:
        results = list(runner.run_stream(tasks))
    assert all(r.ok for r in results)


def test_per_op_budget_is_under_3pct_of_task_floor(emit):
    tasks = _workload()
    _run_batch(tasks)  # warm imports and solver caches

    # Floor of the per-task solve time (min over repeats).
    per_task = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        _run_batch(tasks)
        per_task = min(
            per_task, (time.perf_counter() - start) / len(tasks)
        )

    # Measured cost of one counter-inc + histogram-observe + trace-span
    # round through a live registry (the primitives the hot path uses).
    reg = MetricsRegistry()
    counter = reg.counter("bench_total", "bench", ("status",)).labels("ok")
    histogram = reg.histogram("bench_seconds", "bench")
    trace = TaskTrace(algorithm="bench")
    rounds = 20_000
    start = time.perf_counter()
    for _ in range(rounds):
        counter.inc()
        histogram.observe(0.001)
        trace.add_span("solving", 0.001)
    per_op_round = (time.perf_counter() - start) / rounds
    trace.spans.clear()

    budget = OPS_PER_TASK / 3 * per_op_round  # OPS_PER_TASK single ops
    overhead = budget / per_task
    emit(
        "obs per-op budget",
        ["per-task floor", "per-op round", "budget", "overhead"],
        [[f"{per_task * 1e3:.3f} ms", f"{per_op_round * 1e6:.2f} us",
          f"{budget * 1e6:.1f} us", f"{overhead:.2%}"]],
    )
    assert overhead < OVERHEAD_LIMIT, (
        f"{OPS_PER_TASK} metric ops cost {overhead:.2%} of a "
        f"{per_task * 1e3:.2f} ms task (limit {OVERHEAD_LIMIT:.0%})"
    )


def test_batch_overhead_enabled_vs_disabled(emit):
    tasks = _workload()
    _run_batch(tasks)  # warm

    pairs = 7
    on_times, off_times = [], []
    gc.collect()
    gc.disable()
    try:
        for _ in range(pairs):
            for arm, sink in (("on", on_times), ("off", off_times)):
                if arm == "on":
                    REGISTRY.enable()
                else:
                    REGISTRY.disable()
                start = time.perf_counter()
                _run_batch(tasks)
                sink.append(time.perf_counter() - start)
    finally:
        gc.enable()
        REGISTRY.enable()

    on_med = statistics.median(on_times)
    off_med = statistics.median(off_times)
    ratio = on_med / off_med
    # Allowed margin: the 3% pin plus the disabled arm's own measured
    # relative spread — a box whose *identical* runs differ by 8% cannot
    # resolve a 3% effect, and must not fail the pin on noise.
    spread = (max(off_times) - min(off_times)) / off_med
    limit = 1.0 + OVERHEAD_LIMIT + spread / 2
    emit(
        "obs A/B overhead",
        ["enabled med", "disabled med", "ratio", "noise spread", "limit"],
        [[f"{on_med * 1e3:.1f} ms", f"{off_med * 1e3:.1f} ms",
          f"{ratio:.4f}", f"{spread:.2%}", f"{limit:.4f}"]],
    )
    assert ratio < limit, (
        f"enabled/disabled ratio {ratio:.4f} exceeds {limit:.4f} "
        f"(3% pin + {spread / 2:.2%} measured noise allowance)"
    )


def test_render_throughput(benchmark):
    # Rendering cost matters for scrape frequency, not the solve path;
    # keep it on the books so a quadratic regression shows up.
    reg = MetricsRegistry()
    for i in range(20):
        family = reg.counter(f"bench_{i}_total", "bench", ("k",))
        for j in range(10):
            family.labels(k=f"v{j}").inc(j)
    hist = reg.histogram("bench_seconds", "bench", ("algo",))
    for j in range(10):
        hist.labels(algo=f"a{j}").observe(0.01 * j)
    text = benchmark(render_prometheus, reg)
    assert text.count("# TYPE") == 21
