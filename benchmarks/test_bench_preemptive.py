"""E11/E12 — Theorems 6 and 7: preemptive busy time.

Paper claims: with unbounded g the greedy is *exact* (Theorem 6); for
bounded g, redistributing its output interval-by-interval costs at most
OPT_inf + ℓ(J)/g <= 2 OPT (Theorem 7).  Exactness is checked against an
independent LP reference; the Theorem-7 additive decomposition is measured
per instance.
"""

import pytest
from scipy.optimize import linprog

from repro.busytime import (
    greedy_unbounded_preemptive,
    mass_lower_bound,
    opt_infinity,
    preemptive_bounded,
)
from repro.instances import random_flexible_instance


def lp_reference(inst) -> float:
    """Independent optimum for preemptive unbounded busy time."""
    if inst.n == 0:
        return 0.0
    T = inst.horizon
    a, b = [], []
    for j in inst.jobs:
        row = [0.0] * T
        r, d = j.integral_window()
        for t in range(r, d):
            row[t] = -1.0
        a.append(row)
        b.append(-j.length)
    res = linprog(c=[1.0] * T, A_ub=a, b_ub=b, bounds=[(0, 1)] * T,
                  method="highs")
    assert res.status == 0
    return float(res.fun)


def test_theorem6_exactness(rng, emit):
    rows = []
    for (n, T) in [(6, 10), (12, 16), (20, 24)]:
        max_gap = 0.0
        for _ in range(8):
            inst = random_flexible_instance(n, T, rng=rng)
            greedy = greedy_unbounded_preemptive(inst)
            greedy.verify()
            ref = lp_reference(inst)
            max_gap = max(max_gap, abs(greedy.total_busy_time - ref))
        rows.append([f"n={n}, T={T}", max_gap])
        assert max_gap < 1e-6
    emit(
        "E11 / Theorem 6 — greedy vs LP optimum (paper: exact)",
        ["family", "max |greedy - OPT|"],
        rows,
    )


def test_theorem7_bound(rng, emit):
    rows = []
    for g in (2, 3, 4):
        worst = 0.0
        for _ in range(8):
            inst = random_flexible_instance(12, 16, rng=rng)
            unbounded = greedy_unbounded_preemptive(inst).total_busy_time
            bounded = preemptive_bounded(inst, g)
            bounded.verify()
            additive = unbounded + mass_lower_bound(inst, g)
            assert bounded.total_busy_time <= additive + 1e-6
            lower = max(unbounded, mass_lower_bound(inst, g))
            worst = max(worst, bounded.total_busy_time / lower)
        rows.append([g, worst, 2.0])
        assert worst <= 2.0 + 1e-9
    emit(
        "E12 / Theorem 7 — bounded-g preemptive: cost / max(lower bounds)",
        ["g", "max ratio", "paper bound"],
        rows,
    )


def test_preemption_value(rng, emit):
    """Preemptive OPT_inf <= non-preemptive OPT_inf, sometimes strictly."""
    strict = 0
    total = 0
    for _ in range(15):
        inst = random_flexible_instance(8, 12, rng=rng)
        pre = greedy_unbounded_preemptive(inst).total_busy_time
        non = opt_infinity(inst).busy_time
        assert pre <= non + 1e-6
        total += 1
        if pre < non - 1e-6:
            strict += 1
    emit(
        "E11 — value of preemption at g = inf",
        ["instances", "preemption strictly helps"],
        [[total, strict]],
    )


@pytest.mark.parametrize("n", [15, 40])
def test_preemptive_greedy_runtime(benchmark, rng, n):
    inst = random_flexible_instance(n, n + 8, rng=rng)
    s = benchmark(greedy_unbounded_preemptive, inst)
    assert s.is_valid()


@pytest.mark.parametrize("g", [2, 4])
def test_preemptive_bounded_runtime(benchmark, rng, g):
    inst = random_flexible_instance(20, 28, rng=rng)
    s = benchmark(preemptive_bounded, inst, g)
    assert s.is_valid()
