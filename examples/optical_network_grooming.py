#!/usr/bin/env python3
"""Optical network grooming: minimizing OADM fiber time (the paper's other
motivating application, via Flammini et al. [5] and Kumar-Rudra [11]).

Scenario: lightpath requests on a wavelength-division line each occupy a
fixed time interval (interval jobs — transmission slots are contractual).
A fiber carries at most ``g`` wavelengths; the cost of the design is the
total time fibers are lit.  This is busy time with interval jobs.

The script builds a request pattern with rush-hour bursts, computes the
demand profile (the quantity the 2-approximations charge), runs all four
interval algorithms and prints the profile alongside the solutions so the
charging argument is visible.

Run:  python examples/optical_network_grooming.py [seed]
"""

import sys

import numpy as np

from repro import Instance
from repro.analysis import format_table
from repro.busytime import (
    best_lower_bound,
    chain_peeling_two_approx,
    compute_demand_profile,
    exact_busy_time_interval,
    first_fit,
    greedy_tracking,
    kumar_rudra,
)
from repro.instances import random_interval_instance


def rush_hour_requests(rng: np.random.Generator) -> Instance:
    """Lightpath requests: a steady trickle plus two bursts."""
    base = random_interval_instance(10, 20.0, max_length=6.0, rng=rng)
    jobs = list(base.jobs)
    next_id = len(jobs)
    for center in (5.0, 14.0):  # bursts
        for _ in range(6):
            a = center + float(rng.uniform(-1.0, 1.0))
            ln = float(rng.uniform(0.5, 2.0))
            from repro.core import Job

            jobs.append(Job(a, a + ln, ln, id=next_id))
            next_id += 1
    return Instance(tuple(jobs))


def main(seed: int = 3) -> None:
    rng = np.random.default_rng(seed)
    g = 3  # wavelengths per fiber
    requests = rush_hour_requests(rng)
    print(f"requests: {requests.describe()}, g={g} wavelengths/fiber\n")

    profile = compute_demand_profile(requests, g)
    print(
        format_table(
            "Demand profile (fibers forced lit per segment)",
            ["segment", "requests", "fibers"],
            [
                [f"[{a:.2f}, {b:.2f})", raw, profile.demand(i)]
                for i, ((a, b), raw) in enumerate(
                    zip(profile.segments, profile.raw)
                )
            ][:12]
            + ([["...", "...", "..."]] if len(profile.segments) > 12 else []),
        )
    )
    print(f"\nprofile lower bound: {profile.cost:.2f} fiber-hours")

    rows = []
    for name, fn, bound in [
        ("FIRSTFIT [5]", first_fit, 4),
        ("GREEDYTRACKING (Thm 5)", greedy_tracking, 3),
        ("chain peeling (Thm 3)", chain_peeling_two_approx, 2),
        ("Kumar-Rudra levels (App A.1)", kumar_rudra, 2),
    ]:
        s = fn(requests, g)
        s.verify()
        rows.append(
            [name, s.total_busy_time, s.num_machines,
             s.total_busy_time / profile.cost, bound]
        )
    if requests.n <= 20:
        opt = exact_busy_time_interval(requests, g)
        rows.insert(0, ["exact (MILP)", opt.total_busy_time,
                        opt.num_machines, opt.total_busy_time / profile.cost,
                        1])

    print(
        format_table(
            "\nFiber-hours by grooming algorithm",
            ["algorithm", "fiber-hours", "fibers", "vs profile", "bound"],
            rows,
        )
    )
    print(f"\nbest lower bound (Obs 2-4): {best_lower_bound(requests, g):.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
