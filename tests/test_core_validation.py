"""Unit tests for precondition helpers (repro.core.validation)."""

import pytest

from repro.core import (
    Instance,
    require_capacity,
    require_integral,
    require_interval_jobs,
    require_nonempty,
    require_unit_jobs,
)


class TestRequireCapacity:
    def test_accepts_positive_int(self):
        assert require_capacity(3) == 3

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            require_capacity(0)
        with pytest.raises(ValueError):
            require_capacity(-2)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            require_capacity(2.0)
        with pytest.raises(TypeError):
            require_capacity(True)


class TestRequireIntegral:
    def test_accepts_integral(self, tiny_instance):
        assert require_integral(tiny_instance) is tiny_instance

    def test_rejects_real(self):
        inst = Instance.from_intervals([(0.0, 1.5)])
        with pytest.raises(ValueError, match="integral"):
            require_integral(inst, "test context")


class TestRequireIntervalJobs:
    def test_accepts_intervals(self, interval_instance):
        assert require_interval_jobs(interval_instance) is interval_instance

    def test_rejects_flexible_and_names_ids(self, tiny_instance):
        with pytest.raises(ValueError, match="flexible job ids"):
            require_interval_jobs(tiny_instance)


class TestRequireUnitJobs:
    def test_accepts_units(self):
        inst = Instance.from_tuples([(0, 3, 1), (1, 2, 1)])
        assert require_unit_jobs(inst) is inst

    def test_rejects_longer(self, tiny_instance):
        with pytest.raises(ValueError, match="unit"):
            require_unit_jobs(tiny_instance)


class TestRequireNonempty:
    def test_accepts(self, tiny_instance):
        assert require_nonempty(tiny_instance) is tiny_instance

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no jobs"):
            require_nonempty(Instance(tuple()))
