"""Tests for lower bounds (Obs. 2–4) and the demand profile (Defs. 11–13)."""

import pytest

from repro.busytime import (
    best_lower_bound,
    compute_demand_profile,
    demand_profile_lower_bound,
    exact_busy_time_interval,
    mass_lower_bound,
    pad_to_multiple_of_g,
    span_lower_bound,
)
from repro.busytime.demand_profile import DUMMY_LABEL
from repro.core import Instance
from repro.instances import random_interval_instance


class TestMassBound:
    def test_value(self, interval_instance):
        assert mass_lower_bound(interval_instance, 2) == pytest.approx(
            interval_instance.total_length / 2
        )

    def test_paper_example_disjoint_units(self):
        """g disjoint unit jobs: mass bound is 1, OPT pays g (Section 4.1)."""
        g = 4
        inst = Instance.from_intervals([(2 * i, 2 * i + 1) for i in range(g)])
        assert mass_lower_bound(inst, g) == pytest.approx(1.0)
        assert exact_busy_time_interval(inst, g).total_busy_time == pytest.approx(
            float(g)
        )


class TestSpanBound:
    def test_value(self, interval_instance):
        assert span_lower_bound(interval_instance) == pytest.approx(5.0)

    def test_paper_example_identical_units(self):
        """g^2 identical unit jobs: span bound 1, OPT pays g (Section 4.1)."""
        g = 3
        inst = Instance.from_intervals([(0, 1)] * (g * g))
        assert span_lower_bound(inst) == pytest.approx(1.0)
        assert exact_busy_time_interval(inst, g).total_busy_time == pytest.approx(
            float(g)
        )

    def test_rejects_flexible(self, tiny_instance):
        with pytest.raises(ValueError):
            span_lower_bound(tiny_instance)


class TestDemandProfile:
    def test_segments_and_raw(self, interval_instance):
        profile = compute_demand_profile(interval_instance, 2)
        for (a, b), raw in zip(profile.segments, profile.raw):
            mid = (a + b) / 2
            assert interval_instance.raw_demand_at(mid) == raw

    def test_cost_formula(self):
        inst = Instance.from_intervals([(0, 2), (0, 2), (0, 2), (1, 3)])
        profile = compute_demand_profile(inst, 2)
        # [0,1): 3 jobs -> 2 machines; [1,2): 4 -> 2; [2,3): 1 -> 1
        assert profile.cost == pytest.approx(2 + 2 + 1)

    def test_demands_and_max(self, interval_instance):
        profile = compute_demand_profile(interval_instance, 2)
        assert profile.max_demand == max(profile.demands)
        assert profile.max_raw == max(profile.raw)

    def test_span_property(self, interval_instance):
        profile = compute_demand_profile(interval_instance, 2)
        assert profile.span == pytest.approx(span_lower_bound(interval_instance))

    def test_level_region_span_telescopes(self, rng):
        """sum_k Sp({D >= k}) equals the profile cost."""
        for _ in range(10):
            inst = random_interval_instance(8, 15.0, rng=rng)
            g = int(rng.integers(1, 4))
            profile = compute_demand_profile(inst, g)
            total = sum(
                profile.level_region_span(k)
                for k in range(1, profile.max_demand + 1)
            )
            assert total == pytest.approx(profile.cost)


class TestBoundDominance:
    def test_profile_dominates_mass_and_span(self, rng):
        for _ in range(15):
            inst = random_interval_instance(8, 15.0, rng=rng)
            g = int(rng.integers(1, 4))
            profile = demand_profile_lower_bound(inst, g)
            assert profile >= mass_lower_bound(inst, g) - 1e-9
            assert profile >= span_lower_bound(inst) - 1e-9
            assert best_lower_bound(inst, g) == pytest.approx(profile)

    def test_opt_respects_all_bounds(self, rng):
        for _ in range(8):
            inst = random_interval_instance(6, 12.0, rng=rng)
            g = int(rng.integers(1, 4))
            opt = exact_busy_time_interval(inst, g).total_busy_time
            assert opt >= best_lower_bound(inst, g) - 1e-6

    def test_empty_instance(self):
        assert best_lower_bound(Instance(tuple()), 3) == 0.0


class TestPadding:
    def test_padded_demand_multiple_of_g(self, rng):
        for _ in range(10):
            inst = random_interval_instance(7, 12.0, rng=rng)
            g = int(rng.integers(1, 5))
            padded, dummy_ids = pad_to_multiple_of_g(inst, g)
            profile = compute_demand_profile(padded, g)
            for raw in profile.raw:
                assert raw % g == 0

    def test_profile_cost_unchanged(self, rng):
        for _ in range(10):
            inst = random_interval_instance(7, 12.0, rng=rng)
            g = int(rng.integers(1, 5))
            padded, _ = pad_to_multiple_of_g(inst, g)
            assert compute_demand_profile(padded, g).cost == pytest.approx(
                compute_demand_profile(inst, g).cost
            )

    def test_dummies_labelled(self, interval_instance):
        padded, dummy_ids = pad_to_multiple_of_g(interval_instance, 3)
        for jid in dummy_ids:
            assert padded.job_by_id(jid).label == DUMMY_LABEL

    def test_no_padding_when_already_multiple(self):
        g = 2
        inst = Instance.from_intervals([(0, 1), (0, 1)])
        padded, dummy_ids = pad_to_multiple_of_g(inst, g)
        assert dummy_ids == []
        assert padded.n == inst.n
