"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.instances import figure3, figure8
from repro.io import save_instance


@pytest.fixture
def active_file(tmp_path, tiny_instance):
    path = tmp_path / "active.json"
    save_instance(tiny_instance, path)
    return str(path)


@pytest.fixture
def busy_file(tmp_path, interval_instance):
    path = tmp_path / "busy.csv"
    save_instance(interval_instance, path)
    return str(path)


class TestActiveCommand:
    @pytest.mark.parametrize("algorithm", ["rounding", "minimal", "exact"])
    def test_algorithms(self, active_file, capsys, algorithm):
        assert main(["active", active_file, "--g", "2",
                     "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "active time:" in out

    def test_unit_algorithm_rejects_nonunit(self, active_file, capsys):
        assert main(["active", active_file, "--g", "2",
                     "--algorithm", "unit"]) == 1
        assert "error" in capsys.readouterr().err

    def test_infeasible_instance(self, tmp_path, capsys):
        from repro.core import Instance

        path = tmp_path / "bad.json"
        save_instance(Instance.from_tuples([(0, 1, 1), (0, 1, 1)]), path)
        assert main(["active", str(path), "--g", "1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["active", "/nonexistent.json", "--g", "2"]) == 1


class TestBusyCommand:
    @pytest.mark.parametrize(
        "algorithm",
        ["greedy_tracking", "first_fit", "chain_peeling", "kumar_rudra",
         "exact"],
    )
    def test_algorithms(self, busy_file, capsys, algorithm):
        assert main(["busy", busy_file, "--g", "2",
                     "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "busy time:" in out
        assert "machine" in out


class TestGadgetCommand:
    def test_print_facts(self, capsys):
        assert main(["gadget", "figure3", "--g", "4"]) == 0
        out = capsys.readouterr().out
        assert "opt_active_time" in out

    def test_write_instance(self, tmp_path, capsys):
        out_path = tmp_path / "gadget.json"
        assert main(["gadget", "lp_gap", "--g", "3",
                     "--out", str(out_path)]) == 0
        from repro.io import load_instance

        inst = load_instance(out_path)
        from repro.instances import lp_gap

        assert inst.n == lp_gap(3).instance.n

    @pytest.mark.parametrize(
        "name", ["figure1", "figure6", "figure8", "figure9", "figure10"]
    )
    def test_all_gadgets_printable(self, capsys, name):
        assert main(["gadget", name, "--g", "3", "--eps", "0.1"]) == 0


class TestBoundsCommand:
    def test_bounds_table(self, busy_file, capsys):
        assert main(["bounds", busy_file, "--g", "2"]) == 0
        out = capsys.readouterr().out
        for token in ("mass", "span", "profile", "best"):
            assert token in out

    def test_bounds_reject_flexible(self, active_file, capsys):
        assert main(["bounds", active_file, "--g", "2"]) == 1
