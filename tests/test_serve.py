"""Tests for the HTTP/JSONL serving front end (repro.serve).

A real ThreadingHTTPServer is started on an ephemeral port and driven
through the urllib client plus raw HTTP where headers matter.  The
server runs in-process, so tests can temporarily register slow solvers
to pin down streaming/concurrency behavior deterministically.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.core import Instance
from repro.engine import REGISTRY, ResultCache
from repro.engine.registry import SolveOutcome, SolverSpec
from repro.serve import (
    RequestError,
    ServeClient,
    ServeClientError,
    create_server,
    parse_task_request,
    task_request,
)

#: Sleep used by the test-only slow solver; latency assertions key off it.
_SLOW_SECONDS = 0.8


def _slow_solver(instance, g, **params):
    time.sleep(_SLOW_SECONDS)
    return SolveOutcome(objective=float(g))


@pytest.fixture
def slow_solver():
    name = "slow-serve-test"
    if ("active", name) not in REGISTRY:
        REGISTRY.register(
            SolverSpec(
                problem="active",
                name=name,
                solve=_slow_solver,
                exact=False,
                guarantee="-",
                complexity="-",
                description="sleeps then answers (test only)",
            )
        )
    yield name
    REGISTRY._specs.pop(("active", name), None)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    srv = create_server(
        port=0,
        jobs=1,
        cache=ResultCache(directory=cache_dir),
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5.0)


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url)


@pytest.fixture
def inst():
    return Instance.from_tuples([(0, 4, 2), (1, 5, 3)])


def _post_raw(server, path, body: bytes):
    """Raw POST for header-level and malformed-body assertions."""
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(
            "POST", path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestAlgosEndpoint:
    def test_lists_every_registered_solver(self, client):
        payload = client.algos()
        served = {(s["problem"], s["name"]) for s in payload["solvers"]}
        assert served == {spec.key for spec in REGISTRY.specs()}
        assert payload["problems"]["active"] == list(REGISTRY.names("active"))

    def test_lists_backends_with_capabilities(self, client):
        backends = {b["name"]: b for b in client.algos()["backends"]}
        assert {"scipy-highs", "reference", "mip"} <= set(backends)
        assert "lp" in backends["scipy-highs"]["capabilities"]
        assert backends["scipy-highs"]["status"] in ("default", "unavailable")

    def test_healthz(self, client):
        health = client.health()
        assert health["ok"] is True
        assert "cache" in health and "jobs" in health


class TestSolveEndpoint:
    def test_roundtrip_matches_inprocess_solve(self, client, inst):
        result = client.solve(inst, "active", 2, algorithm="minimal")
        direct = REGISTRY.solve("active", "minimal", inst, 2)
        assert result.ok
        assert result.objective == direct.objective
        assert result.n == 2

    def test_default_algorithm_is_cli_default(self, client, inst):
        result = client.solve(inst, "busy", 2)
        assert result.ok
        assert result.algorithm == "greedy_tracking"

    def test_meta_and_params_roundtrip(self, client, inst):
        result = client.solve(
            inst, "active", 2, algorithm="minimal", meta={"source": "test"}
        )
        assert result.meta == {"source": "test"}

    def test_repeat_solve_is_a_cache_hit(self, client):
        fresh = Instance.from_tuples([(0, 6, 2), (2, 7, 3), (1, 5, 1)])
        first = client.solve(fresh, "active", 3, algorithm="minimal")
        again = client.solve(fresh, "active", 3, algorithm="minimal")
        assert not first.cached
        assert again.cached
        assert again.objective == first.objective

    def test_unknown_algorithm_gets_menu(self, client, inst):
        with pytest.raises(ServeClientError) as err:
            client.solve(inst, "active", 2, algorithm="nope")
        assert err.value.status == 400
        # the registry's menu message, verbatim
        assert "registered" in str(err.value)
        assert "minimal" in str(err.value)

    def test_unknown_backend_gets_menu(self, client, inst):
        with pytest.raises(ServeClientError) as err:
            client.solve(inst, "active", 2, backend="glpk")
        assert err.value.status == 400
        assert "scipy-highs" in str(err.value)

    def test_backend_on_combinatorial_algorithm_errors(self, client, inst):
        with pytest.raises(ServeClientError) as err:
            client.solve(
                inst, "active", 2, algorithm="minimal", backend="reference"
            )
        assert err.value.status == 400
        assert "combinatorial" in str(err.value)

    def test_solver_failure_is_an_ok_false_record_not_an_error(self, client):
        infeasible = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        result = client.solve(infeasible, "active", 1, algorithm="minimal")
        assert not result.ok
        assert result.error

    def test_bad_json_body_is_400(self, server):
        status, _, body = _post_raw(server, "/solve", b"{not json")
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]

    def test_missing_g_is_400(self, server, inst):
        request = task_request(inst, "active", 2)
        del request["g"]
        status, _, body = _post_raw(
            server, "/solve", json.dumps(request).encode()
        )
        assert status == 400
        assert "'g'" in json.loads(body)["error"]

    def test_unknown_field_is_400(self, server, inst):
        request = {**task_request(inst, "active", 2), "algoritm": "minimal"}
        status, _, body = _post_raw(
            server, "/solve", json.dumps(request).encode()
        )
        assert status == 400
        assert "algoritm" in json.loads(body)["error"]

    def test_handwritten_instance_without_marker(self, server):
        # curl-style minimal body: bare jobs array, ids defaulted
        request = {
            "instance": {"jobs": [
                {"release": 0, "deadline": 4, "length": 2},
                {"release": 1, "deadline": 5, "length": 3},
            ]},
            "problem": "active",
            "algorithm": "minimal",
            "g": 2,
        }
        status, _, body = _post_raw(
            server, "/solve", json.dumps(request).encode()
        )
        assert status == 200
        assert json.loads(body)["ok"]


class TestBatchEndpoint:
    def _requests(self, inst):
        other = Instance.from_tuples([(0, 3, 1), (2, 6, 2), (1, 4, 2)])
        return [
            task_request(inst, "active", 2, algorithm="minimal",
                         meta={"pos": 0}),
            task_request(other, "active", 2, algorithm="minimal",
                         meta={"pos": 1}),
            task_request(inst, "active", 2, algorithm="minimal",
                         meta={"pos": 2}),  # duplicate of pos 0
            task_request(other, "busy", 2, algorithm="first_fit",
                         meta={"pos": 3}),
        ]

    def test_ordered_jsonl_with_server_side_dedupe(self, client, inst):
        results = list(client.batch(self._requests(inst)))
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert [r.meta["pos"] for r in results] == [0, 1, 2, 3]
        assert all(r.ok for r in results)
        # the duplicate reuses the first occurrence's result
        assert results[2].cached
        assert results[2].objective == results[0].objective

    def test_repost_hits_cache_for_every_task(self, client, inst):
        requests = self._requests(inst)
        list(client.batch(requests))
        again = list(client.batch(requests))
        assert [r.index for r in again] == [0, 1, 2, 3]
        assert all(r.cached for r in again)

    def test_streams_chunked_ndjson(self, server, inst):
        body = "".join(
            json.dumps(r) + "\n" for r in self._requests(inst)
        ).encode()
        status, headers, raw = _post_raw(server, "/batch", body)
        assert status == 200
        assert headers.get("Transfer-Encoding") == "chunked"
        assert headers.get("Content-Type") == "application/x-ndjson"
        lines = [json.loads(line) for line in raw.splitlines() if line]
        assert [r["index"] for r in lines] == [0, 1, 2, 3]

    def test_malformed_line_fails_whole_batch_before_solving(
        self, server, client, inst
    ):
        tasks_before = client.health()["tasks_served"]
        good = json.dumps(task_request(inst, "active", 2))
        status, _, body = _post_raw(
            server, "/batch", (good + "\n{oops\n").encode()
        )
        assert status == 400
        assert "line 2" in json.loads(body)["error"]
        assert client.health()["tasks_served"] == tasks_before

    def test_invalid_task_names_its_line(self, server, inst):
        bad = json.dumps(task_request(inst, "active", 2, algorithm="nope"))
        status, _, body = _post_raw(server, "/batch", (bad + "\n").encode())
        assert status == 400
        message = json.loads(body)["error"]
        assert "line 1" in message and "registered" in message

    def test_empty_batch_is_empty_stream(self, client):
        assert list(client.batch([])) == []


class TestIncrementalStreaming:
    """Per-result streaming on /batch and the no-lock concurrency model."""

    def _stream_raw(self, server, requests):
        """POST a batch and return ``(index, seconds_since_post)`` lines."""
        body = "".join(json.dumps(r) + "\n" for r in requests).encode()
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        arrivals = []
        try:
            start = time.perf_counter()
            conn.request(
                "POST", "/batch", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            while True:
                line = response.readline()
                if not line:
                    break
                if line.strip():
                    record = json.loads(line)
                    arrivals.append(
                        (record["index"], time.perf_counter() - start)
                    )
        finally:
            conn.close()
        return arrivals

    def test_first_line_arrives_before_slow_task_finishes(
        self, server, slow_solver
    ):
        # One slow task at the tail must not hold back finished
        # predecessors: under the old per-wave streaming all three
        # results landed in one wave, after the slow solve.
        fresh = Instance.from_tuples([(0, 5, 2), (1, 6, 3), (2, 7, 1)])
        other = Instance.from_tuples([(0, 4, 1), (3, 8, 2)])
        arrivals = self._stream_raw(server, [
            task_request(fresh, "active", 2, algorithm="minimal"),
            task_request(other, "active", 2, algorithm="minimal"),
            task_request(fresh, "active", 2, algorithm=slow_solver),
        ])
        assert [i for i, _ in arrivals] == [0, 1, 2]
        assert arrivals[0][1] < _SLOW_SECONDS * 0.75, arrivals
        assert arrivals[-1][1] >= _SLOW_SECONDS * 0.9, arrivals

    def test_solve_is_not_blocked_behind_a_long_batch(
        self, server, client, slow_solver, inst
    ):
        # Regression for the whole-wave lock: a /solve issued while a
        # long /batch is mid-solve used to queue behind the entire wave.
        slow_inst = Instance.from_tuples([(0, 9, 3), (1, 7, 2)])
        batch_results = []
        thread = threading.Thread(
            target=lambda: batch_results.extend(
                client.batch(
                    [task_request(slow_inst, "active", 2,
                                  algorithm=slow_solver)]
                )
            )
        )
        thread.start()
        try:
            time.sleep(0.15)  # batch is now mid-solve
            start = time.perf_counter()
            result = client.solve(inst, "active", 2, algorithm="minimal")
            elapsed = time.perf_counter() - start
        finally:
            thread.join()
        assert result.ok
        assert elapsed < _SLOW_SECONDS / 2, elapsed
        assert len(batch_results) == 1 and batch_results[0].ok

    def test_disconnect_mid_batch_keeps_counters_and_server_healthy(
        self, server, client, slow_solver, inst
    ):
        # Regression: a BrokenPipeError from _write_chunk escaped the
        # handler as a traceback and left batches_served permanently
        # short of the batches actually started.
        before = client.health()
        fast = Instance.from_tuples([(0, 6, 1), (2, 8, 2), (1, 5, 2)])
        requests = [
            task_request(fast, "active", 3, algorithm="minimal"),
            task_request(fast, "active", 2, algorithm=slow_solver),
            task_request(fast, "active", 3, algorithm="minimal"),
        ]
        body = "".join(json.dumps(r) + "\n" for r in requests).encode()
        host, port = server.server_address[:2]
        sock = socket.create_connection((host, port), timeout=30)
        try:
            sock.sendall(
                b"POST /batch HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            buf = b""
            while b'"ok"' not in buf:  # first result line has arrived
                buf += sock.recv(4096)
        finally:
            # hang up while the slow task is still solving
            sock.close()
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            health = client.health()
            if health["batches_served"] > before["batches_served"]:
                break
            time.sleep(0.05)
        assert health["batches_served"] == before["batches_served"] + 1
        # only results actually yielded were counted, never the full list
        served = health["tasks_served"] - before["tasks_served"]
        assert 1 <= served <= len(requests)
        # and the server keeps serving
        assert client.solve(inst, "active", 2, algorithm="minimal").ok


class TestClientTransportErrors:
    def test_connection_refused_is_wrapped_with_target_url(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        client = ServeClient(f"http://127.0.0.1:{port}", http_timeout=2.0)
        with pytest.raises(ServeClientError) as err:
            client.health()
        assert "cannot reach" in str(err.value)
        assert f"127.0.0.1:{port}/healthz" in str(err.value)
        assert err.value.status == 0


class TestHTTPPlumbing:
    def test_unknown_path_is_404_with_endpoint_menu(self, server):
        status, _, body = _post_raw(server, "/nope", b"{}")
        assert status == 404
        assert "/batch" in json.loads(body)["error"]

    def test_get_on_post_endpoint_is_404(self, client, server):
        with pytest.raises(ServeClientError) as err:
            client._get_json("/solve")
        assert err.value.status == 404

    def test_missing_content_length_is_411(self, server):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.putrequest("POST", "/solve", skip_accept_encoding=True)
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 411
        finally:
            conn.close()

    def test_non_numeric_job_field_is_400_not_a_dropped_connection(
        self, server
    ):
        # Regression: a quoted number in a hand-written payload raised
        # TypeError inside Job arithmetic, escaping the RequestError
        # handler — the thread tracebacked and the client saw a reset.
        request = {
            "instance": {"jobs": [
                {"release": "0", "deadline": 4, "length": 2},
            ]},
            "problem": "active", "algorithm": "minimal", "g": 2,
        }
        status, _, body = _post_raw(
            server, "/solve", json.dumps(request).encode()
        )
        assert status == 400
        assert "'release'" in json.loads(body)["error"]

    def test_oversized_body_is_413_and_closes_the_connection(self, server):
        # Regression: erroring before draining the body left the unread
        # bytes on a keep-alive connection, where they were parsed as
        # the next request line and corrupted every later request.
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.putrequest("POST", "/solve", skip_accept_encoding=True)
            conn.putheader("Content-Length", str(200 * 1024 * 1024))
            conn.endheaders()
            conn.send(b'{"x": 1}')  # partial body the server never reads
            response = conn.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            conn.close()


class TestParseTaskRequest:
    """Unit-level validation, independent of HTTP."""

    def test_produces_same_digest_as_cli_path(self, inst):
        from repro.engine import make_task

        task = parse_task_request(task_request(inst, "active", 2,
                                               algorithm="minimal"))
        direct = make_task(index=0, problem="active", algorithm="minimal",
                           g=2, instance=inst)
        assert task.digest == direct.digest

    def test_default_backend_applies_to_lp_algorithms_only(self, inst):
        lp_task = parse_task_request(
            task_request(inst, "active", 2, algorithm="rounding"),
            default_backend="reference",
        )
        assert lp_task.params["backend"] == "reference"
        comb_task = parse_task_request(
            task_request(inst, "active", 2, algorithm="minimal"),
            default_backend="reference",
        )
        assert "backend" not in comb_task.params

    def test_default_timeout_applies_when_unset(self, inst):
        task = parse_task_request(
            task_request(inst, "active", 2), default_timeout=4.5
        )
        assert task.timeout == 4.5
        override = parse_task_request(
            task_request(inst, "active", 2, timeout=1.0),
            default_timeout=4.5,
        )
        assert override.timeout == 1.0

    def test_explicit_null_timeout_cannot_disable_the_server_default(
        self, inst
    ):
        # Regression: ``"timeout": null`` used to bypass default_timeout
        # entirely, letting a client shed the protective deadline and
        # wedge a worker on an unbounded exact solve.
        request = task_request(inst, "active", 2)
        request["timeout"] = None
        task = parse_task_request(request, default_timeout=4.5)
        assert task.timeout == 4.5

    def test_explicit_null_timeout_without_default_stays_unbounded(
        self, inst
    ):
        request = task_request(inst, "active", 2)
        request["timeout"] = None
        assert parse_task_request(request).timeout is None

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda r: r.__setitem__("g", 0), "'g'"),
            (lambda r: r.__setitem__("g", True), "'g'"),
            (lambda r: r.__setitem__("timeout", -1), "'timeout'"),
            (lambda r: r.__setitem__("params", []), "'params'"),
            (lambda r: r.__setitem__("problem", "both"), "unknown problem"),
            (lambda r: r.pop("instance"), "missing 'instance'"),
            (
                lambda r: r.__setitem__("instance", {"jobs": "x"}),
                "'jobs' array",
            ),
        ],
    )
    def test_rejects_bad_fields(self, inst, mutate, fragment):
        request = task_request(inst, "active", 2, timeout=2.0)
        mutate(request)
        with pytest.raises(RequestError) as err:
            parse_task_request(request, index=5)
        assert fragment in str(err.value)
        assert "task 5" in str(err.value)

    def test_batch_index_becomes_task_index(self, inst):
        task = parse_task_request(task_request(inst, "active", 2), index=7)
        assert task.index == 7


class TestHealthzCapacity:
    def test_reports_window_sizing_fields(self, client):
        # The fabric dispatcher sizes per-host windows from these; they
        # must be present and sane even on an idle server.
        health = client.health()
        assert health["jobs"] == 1
        assert health["queue_depth"] >= 0
        assert health["streams_in_flight"] >= 0

    def test_capacity_tracks_live_batch(self, server, slow_solver):
        client = ServeClient(server.url)
        # Distinct digests: identical requests would dedupe into one
        # solve and the stream could finish before the probe lands.
        requests = [
            task_request(
                Instance.from_tuples([(0, 5 + i, 2), (1, 6 + i, 3)]),
                "active",
                2,
                algorithm=slow_solver,
            )
            for i in range(3)
        ]
        stream = client.batch(requests)
        first = next(stream)  # at least one task solving server-side
        probe = ServeClient(server.url)
        health = probe.health()
        assert health["streams_in_flight"] >= 1
        assert first.ok
        assert len(list(stream)) == 2


class TestClientKeepAlive:
    def test_connection_reused_across_requests(self, server):
        client = ServeClient(server.url)
        client.algos()
        conn = client._local.conn
        assert conn is not None
        client.health()
        client.stats()
        assert client._local.conn is conn

    def test_wedged_connection_state_recovers_transparently(self, server):
        # A keep-alive connection stuck mid-exchange (CannotSendRequest)
        # must be replaced and the request resent, not surfaced.
        client = ServeClient(server.url)
        assert client.health()["ok"] is True
        conn = client._local.conn
        conn._HTTPConnection__state = "Request-sent"
        assert client.health()["ok"] is True
        assert client._local.conn is not conn

    def test_close_is_reusable(self, server):
        client = ServeClient(server.url)
        client.health()
        client.close()
        assert getattr(client._local, "conn", None) is None
        assert client.health()["ok"] is True  # reconnects on demand

    def test_threads_get_independent_connections(self, server):
        client = ServeClient(server.url)
        client.health()
        main_conn = client._local.conn
        seen = []

        def probe():
            client.health()
            seen.append(client._local.conn)

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join(timeout=10)
        assert seen and seen[0] is not main_conn
        assert client._local.conn is main_conn


class TestClientGetRetries:
    def _dead_port(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_get_retries_with_exponential_backoff(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", sleeps.append
        )
        client = ServeClient(
            f"http://127.0.0.1:{self._dead_port()}",
            http_timeout=2.0,
            get_retries=3,
            backoff_base=0.2,
            backoff_cap=10.0,
        )
        with pytest.raises(ServeClientError) as err:
            client.health()
        assert err.value.status == 0
        assert len(sleeps) == 3
        # Exponential schedule with jitter in [0.5, 1.0]x.
        for attempt, slept in enumerate(sleeps):
            assert 0.2 * (2 ** attempt) * 0.5 <= slept
            assert slept <= 0.2 * (2 ** attempt)

    def test_backoff_is_capped(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", sleeps.append
        )
        client = ServeClient(
            f"http://127.0.0.1:{self._dead_port()}",
            http_timeout=2.0,
            get_retries=4,
            backoff_base=1.0,
            backoff_cap=1.5,
        )
        with pytest.raises(ServeClientError):
            client.algos()
        assert len(sleeps) == 4
        assert all(s <= 1.5 for s in sleeps)

    def test_posts_never_auto_retry(self, monkeypatch, inst):
        # Retry policy for solves belongs to the caller (the fabric
        # dispatcher); the client must fail POSTs fast.
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", sleeps.append
        )
        client = ServeClient(
            f"http://127.0.0.1:{self._dead_port()}",
            http_timeout=2.0,
            get_retries=3,
        )
        with pytest.raises(ServeClientError):
            client.solve(inst, "active", 2, algorithm="minimal")
        assert sleeps == []

    def test_4xx_does_not_retry(self, monkeypatch, client):
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", sleeps.append
        )
        with pytest.raises(ServeClientError) as err:
            client._get_json("/no-such-endpoint")
        assert err.value.status == 404
        assert sleeps == []
