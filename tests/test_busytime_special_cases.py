"""Tests for the footnote-1 special-case algorithms."""

import numpy as np
import pytest

from repro.busytime import (
    best_lower_bound,
    clique_greedy,
    exact_busy_time_interval,
    proper_clique_exact,
    proper_greedy,
)
from repro.core import Instance, Job
from repro.instances import random_clique_instance, random_proper_instance


def make_proper_clique(rng, n: int) -> Instance:
    """Sorted lefts in [0,4), sorted rights in (5,9]: proper + clique."""
    lefts = np.sort(rng.uniform(0, 4, n))
    rights = np.sort(rng.uniform(5, 9, n))
    return Instance(
        tuple(
            Job(float(a), float(b), float(b - a), id=i)
            for i, (a, b) in enumerate(zip(lefts, rights))
        )
    )


class TestProperGreedy:
    def test_verifies(self, rng):
        inst = random_proper_instance(10, 18.0, rng=rng)
        s = proper_greedy(inst, 2)
        s.verify()

    def test_rejects_improper(self):
        inst = Instance.from_intervals([(0, 10), (2, 4)])
        with pytest.raises(ValueError, match="proper"):
            proper_greedy(inst, 2)

    def test_within_2x_on_proper(self, rng):
        for _ in range(10):
            inst = random_proper_instance(8, 15.0, rng=rng)
            g = int(rng.integers(1, 4))
            s = proper_greedy(inst, g)
            opt = exact_busy_time_interval(inst, g).total_busy_time
            assert s.total_busy_time <= 2 * opt + 1e-6


class TestCliqueGreedy:
    def test_verifies(self, clique_instance):
        s = clique_greedy(clique_instance, 2)
        s.verify()

    def test_rejects_non_clique(self):
        inst = Instance.from_intervals([(0, 1), (5, 6)])
        with pytest.raises(ValueError, match="clique"):
            clique_greedy(inst, 2)

    def test_groups_of_g(self, rng):
        inst = random_clique_instance(10, 20.0, rng=rng)
        s = clique_greedy(inst, 3)
        sizes = sorted(len(b) for b in s.bundles)
        assert max(sizes) <= 3
        assert sum(sizes) == 10

    def test_within_2x_on_cliques(self, rng):
        for _ in range(10):
            inst = random_clique_instance(8, 15.0, rng=rng)
            g = int(rng.integers(1, 4))
            s = clique_greedy(inst, g)
            opt = exact_busy_time_interval(inst, g).total_busy_time
            assert s.total_busy_time <= 2 * opt + 1e-6

    def test_empty(self):
        assert clique_greedy(Instance(tuple()), 2).total_busy_time == 0


class TestProperCliqueExact:
    def test_matches_milp(self, rng):
        for _ in range(15):
            n = int(rng.integers(2, 8))
            g = int(rng.integers(1, 4))
            inst = make_proper_clique(rng, n)
            dp = proper_clique_exact(inst, g)
            dp.verify()
            milp = exact_busy_time_interval(inst, g)
            assert dp.total_busy_time == pytest.approx(
                milp.total_busy_time, abs=1e-6
            )

    def test_bundles_consecutive(self, rng):
        inst = make_proper_clique(rng, 7)
        s = proper_clique_exact(inst, 3)
        order = {j.id: k for k, j in enumerate(
            sorted(inst.jobs, key=lambda j: j.release)
        )}
        for b in s.bundles:
            positions = sorted(order[j.id] for j in b.jobs)
            assert positions == list(range(positions[0], positions[-1] + 1))

    def test_rejects_non_proper_clique(self):
        inst = Instance.from_intervals([(0, 10), (2, 4)])  # clique, not proper
        with pytest.raises(ValueError):
            proper_clique_exact(inst, 2)

    def test_g1_each_job_alone_or_grouped(self, rng):
        inst = make_proper_clique(rng, 5)
        s = proper_clique_exact(inst, 1)
        # with g = 1 and a clique, no two jobs may share a machine
        assert s.num_machines == 5

    def test_dominates_clique_greedy(self, rng):
        for _ in range(8):
            inst = make_proper_clique(rng, int(rng.integers(2, 9)))
            g = int(rng.integers(1, 4))
            exact = proper_clique_exact(inst, g).total_busy_time
            greedy = clique_greedy(inst, g).total_busy_time
            assert exact <= greedy + 1e-9

    def test_empty(self):
        assert proper_clique_exact(Instance(tuple()), 2).total_busy_time == 0
