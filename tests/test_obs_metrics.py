"""Tests for `repro.obs`: metric families, the Prometheus renderer,
trace spans and the JSONL event log."""

import io
import json
import math
import threading

import pytest

from repro.obs import (
    EventLog,
    MetricsRegistry,
    TaskTrace,
    render_prometheus,
    trace_labels,
    trace_spans,
)
from repro.obs.prom import CONTENT_TYPE


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help", ("status",))
        c.labels(status="ok").inc(3)
        c.labels("err").inc()
        assert c.labels(status="ok").value == 3
        assert c.labels(status="err").value == 1

    def test_wrong_label_count_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help", ("a", "b"))
        with pytest.raises(ValueError):
            c.labels("only-one")
        with pytest.raises(ValueError):
            c.labels(a="x", wrong="y")

    def test_unlabeled_family_rejects_labels_shortcut(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help", ("who",))
        with pytest.raises(ValueError):
            c.inc()  # must go through .labels(...)


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "help")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4

    def test_set_function_evaluates_at_read(self):
        reg = MetricsRegistry()
        g = reg.gauge("resident", "help")
        state = {"v": 1.0}
        g.set_function(lambda: state["v"])
        assert g.value == 1.0
        state["v"] = 7.0
        assert g.value == 7.0


class TestHistogram:
    def test_bucket_counts_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "help", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        counts, total, count = h._solo().snapshot()
        assert counts == [1, 1, 1, 1]  # one per bucket + overflow
        assert count == 4
        assert total == pytest.approx(55.55)

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are `le` (less-or-equal): an observation
        # exactly on an edge belongs to that edge's bucket.
        reg = MetricsRegistry()
        h = reg.histogram("lat", "help", buckets=(1.0, 2.0))
        h.observe(1.0)
        counts, _, _ = h._solo().snapshot()
        assert counts == [1, 0, 0]

    def test_quantile_and_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "help", buckets=(0.1, 1.0, 10.0))
        for _ in range(99):
            h.observe(0.05)
        h.observe(5.0)
        assert h.quantile(0.5) == 0.1
        assert h.quantile(1.0) == 10.0
        summary = h.summary()
        assert summary["count"] == 100
        assert summary["p50"] == 0.1
        assert summary["p99"] == 0.1

    def test_empty_quantile_is_nan(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "help")
        assert math.isnan(h.quantile(0.5))

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("lat", "help", buckets=(1.0, 0.5))


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", ("k",))
        b = reg.counter("x_total", "other help", ("k",))
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "help")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "help")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "help", ("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "help", ("b",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name", "help")
        with pytest.raises(ValueError):
            reg.counter("ok_total", "help", ("bad-label",))
        with pytest.raises(ValueError):
            reg.histogram("h", "help", ("le",))  # reserved

    def test_disable_gates_recording(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help")
        h = reg.histogram("h", "help")
        reg.disable()
        c.inc()
        h.observe(1.0)
        reg.enable()
        c.inc()
        assert c.value == 1
        assert h.count == 0

    def test_value_shorthand_never_raises(self):
        reg = MetricsRegistry()
        assert reg.value("missing") == 0.0
        reg.counter("x_total", "help", ("k",)).labels(k="a").inc()
        assert reg.value("x_total", {"k": "a"}) == 1.0

    def test_concurrent_increments_are_lossless(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help")

        def spin():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestPrometheusRendering:
    def test_help_type_and_series_lines(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "Jobs\nprocessed", ("status",)) \
            .labels(status="ok").inc(2)
        text = render_prometheus(reg)
        assert "# HELP jobs_total Jobs\\nprocessed\n" in text
        assert "# TYPE jobs_total counter\n" in text
        assert 'jobs_total{status="ok"} 2\n' in text
        assert text.endswith("\n")

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "h", ("path",)) \
            .labels(path='a"b\\c\nd').inc()
        text = render_prometheus(reg)
        assert r'x_total{path="a\"b\\c\nd"} 1' in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = render_prometheus(reg)
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 5.55" in text
        assert "lat_seconds_count 3" in text

    def test_content_type_advertises_format_004(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestTaskTrace:
    def test_spans_and_labels_roundtrip(self):
        trace = TaskTrace(algorithm="rounding", backend=None)
        trace.add_span("queued", 0.25)
        with trace.span("solving"):
            pass
        trace.label(status="ok")
        payload = trace.to_payload()
        assert payload["labels"] == {"algorithm": "rounding", "status": "ok"}
        names = [s["name"] for s in payload["spans"]]
        assert names == ["queued", "solving"]
        metrics = {"trace": payload}
        assert trace_spans(metrics)["queued"] == 0.25
        assert trace_labels(metrics)["status"] == "ok"

    def test_repeated_span_names_fold_by_summation(self):
        trace = TaskTrace()
        trace.add_span("solving", 1.0)
        trace.add_span("solving", 2.0)
        assert trace_spans({"trace": trace.to_payload()}) == {"solving": 3.0}

    def test_missing_trace_reads_as_empty(self):
        assert trace_spans(None) == {}
        assert trace_spans({}) == {}
        assert trace_labels({"metrics": 1}) == {}


class TestEventLog:
    def test_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "logs" / "events.jsonl"
        with EventLog(path) as log:
            log.emit("start", jobs=2)
            log.emit("done", ok=True)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "start"
        assert first["jobs"] == 2
        assert "ts" in first

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("a")
        with EventLog(path) as log:
            log.emit("b")
        assert len(path.read_text().splitlines()) == 2

    def test_stream_target_is_not_closed(self):
        stream = io.StringIO()
        with EventLog(stream) as log:
            log.emit("x", detail=object())  # non-serializable -> repr
        assert not stream.closed
        record = json.loads(stream.getvalue())
        assert record["event"] == "x"
        assert "object" in record["detail"]

    def test_emit_after_close_is_a_noop(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("a")
        log.close()
        log.emit("b")
        assert len(path.read_text().splitlines()) == 1
