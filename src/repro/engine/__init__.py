"""`repro.engine` — the parallel batch-solving engine.

Layers, bottom up:

* :mod:`~repro.engine.registry` — central ``(problem, name)`` solver
  registry with metadata; the single dispatch point for every consumer.
* :mod:`~repro.engine.cache` — content-addressed result cache (memory
  LRU + optional on-disk JSON store).
* :mod:`~repro.engine.workers` — picklable task/result records and the
  worker-side executor with timeouts and rich error context.
* :mod:`~repro.engine.runner` — :class:`BatchRunner`, which shards
  tasks across a process pool with deterministic result ordering.
* :mod:`~repro.engine.results` — streaming JSONL store + aggregation
  into :mod:`repro.analysis` tables.
* :mod:`~repro.engine.sweep` — generator x algorithm x g experiment
  grids driving all of the above.
"""

from .cache import ResultCache, canonical_task, instance_digest, task_digest
from .registry import (
    REGISTRY,
    SolveOutcome,
    SolverRegistry,
    SolverSpec,
    backend_task_params,
    get_solver,
    solve,
)
from .results import (
    aggregate,
    aggregate_table,
    group_warm_stats,
    read_results,
    warm_stats_table,
    write_results,
)
from .runner import BatchRunner, PRIORITY_URGENT, ResultStream, StreamStats
from .sweep import SweepGrid, build_sweep_tasks, default_grid, run_sweep
from .workers import Task, TaskResult, TaskTimeout, execute_task, make_task

__all__ = [
    "BatchRunner",
    "PRIORITY_URGENT",
    "REGISTRY",
    "ResultCache",
    "ResultStream",
    "SolveOutcome",
    "SolverRegistry",
    "SolverSpec",
    "StreamStats",
    "SweepGrid",
    "Task",
    "TaskResult",
    "TaskTimeout",
    "aggregate",
    "aggregate_table",
    "backend_task_params",
    "build_sweep_tasks",
    "canonical_task",
    "default_grid",
    "execute_task",
    "get_solver",
    "group_warm_stats",
    "instance_digest",
    "make_task",
    "read_results",
    "run_sweep",
    "solve",
    "task_digest",
    "warm_stats_table",
    "write_results",
]
