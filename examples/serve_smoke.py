"""Serving smoke test: start ``repro serve``, stream a batch, verify dedupe.

Starts a real ``repro serve`` subprocess on an ephemeral port, POSTs a
batch (three distinct tasks plus one duplicate) through the urllib
client, and checks the serving contract end to end:

* results come back as JSONL **in task order**;
* the duplicate digest is deduped server-side (``cached`` on first POST);
* re-POSTing the same batch hits the shared result cache for every task.

CI runs this as the serving-smoke leg; it is also the minimal usage
example for :mod:`repro.serve`.
"""

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

import repro
from repro.core import Instance
from repro.serve import ServeClient, task_request


def start_server(cache_dir: str) -> tuple[subprocess.Popen, str]:
    """Launch ``repro serve --port 0`` and return (process, base URL)."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "2", "--cache-dir", cache_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on (http://\S+)", banner)
    if not match:
        proc.terminate()
        raise RuntimeError(f"server did not announce a URL: {banner!r}")
    return proc, match.group(1)


def main() -> None:
    instances = [
        Instance.from_tuples([(0, 4, 2), (1, 5, 3)]),
        Instance.from_tuples([(0, 3, 1), (2, 6, 2), (1, 4, 2)]),
        Instance.from_tuples([(0, 2, 1), (0, 5, 2)]),
    ]
    requests = [
        task_request(inst, "active", 3, algorithm="minimal", meta={"pos": i})
        for i, inst in enumerate(instances)
    ]
    # a duplicate digest: same instance/coordinates as task 0
    requests.append(
        task_request(instances[0], "active", 3, algorithm="minimal",
                     meta={"pos": 3})
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        proc, url = start_server(cache_dir)
        try:
            client = ServeClient(url, http_timeout=120.0)

            algos = client.algos()
            assert "minimal" in algos["problems"]["active"], algos["problems"]
            print(f"server at {url}: "
                  f"{len(algos['solvers'])} solvers, "
                  f"{len(algos['backends'])} backends")

            first = list(client.batch(requests))
            assert [r.index for r in first] == [0, 1, 2, 3], first
            assert all(r.ok for r in first), [r.error for r in first]
            assert first[3].cached, "duplicate digest was not deduped"
            assert first[3].objective == first[0].objective
            print("first batch : ordered, duplicate deduped server-side")

            second = list(client.batch(requests))
            assert [r.index for r in second] == [0, 1, 2, 3], second
            assert all(r.cached for r in second), second
            print("second batch: every task served from the shared cache")

            # 4 cache hits: every task of the second batch (the first
            # batch's duplicate is deduped in-run, not via the cache).
            health = client.health()
            assert health["ok"] and health["cache"]["hits"] >= 4, health
            print(f"serve smoke OK: {health['tasks_served']} tasks served, "
                  f"{health['cache']['hits']} cache hits")
        finally:
            proc.terminate()
            proc.wait(timeout=10)


if __name__ == "__main__":
    main()  # assertion failures exit non-zero; success exits 0
