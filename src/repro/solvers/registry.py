"""Backend registry: name -> :class:`SolverBackend`, with capability routing.

Selection rules, in order:

1. an explicit ``backend=`` argument (a name or a backend instance) wins;
2. otherwise the ``REPRO_LP_BACKEND`` environment variable;
3. otherwise the default (``scipy-highs``), falling back to the first
   *available* backend that has every required capability.

A typo'd name raises ``ValueError`` carrying the full backend menu —
the same UX as the sweep CLI's generator/algorithm filters — so scripts
fail loudly instead of silently running a different solver.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Any, Iterable, Mapping

from .base import SolverBackend, SolverResult
from .highs_backend import HighsBackend
from .ir import LinearProgram
from .mip_backend import PythonMipBackend
from .reference import ReferenceBackend
from .scipy_backend import ScipyHighsBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backend_names",
    "backend_menu",
    "backend_names",
    "backend_status",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "solve_ir",
]

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "REPRO_LP_BACKEND"

#: The backend used when nothing is requested anywhere.
DEFAULT_BACKEND = "scipy-highs"

_BACKENDS: dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend) -> SolverBackend:
    """Add a backend instance; duplicate names are an error."""
    if backend.name in _BACKENDS:
        raise ValueError(f"backend {backend.name!r} already registered")
    _BACKENDS[backend.name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, sorted."""
    return tuple(sorted(_BACKENDS))


def available_backend_names() -> tuple[str, ...]:
    """Names of backends whose dependencies are importable here."""
    return tuple(
        name for name in backend_names() if _BACKENDS[name].available()
    )


def backend_menu() -> str:
    """Human-readable list of backends with availability notes."""
    parts = []
    for name in backend_names():
        backend = _BACKENDS[name]
        if backend.available():
            caps = ",".join(sorted(backend.capabilities()))
            parts.append(f"{name} ({caps})")
        else:
            reason = getattr(backend, "unavailable_reason", lambda: "")()
            parts.append(f"{name} (unavailable: {reason})" if reason
                         else f"{name} (unavailable)")
    return "; ".join(parts)


def backend_status(name: str) -> dict[str, Any]:
    """One backend's name, capabilities and availability, JSON-ready.

    The shared source for every backend listing — the ``repro algos``
    table and the serving layer's ``GET /algos`` both render from this,
    so their menus cannot drift apart.
    """
    backend = get_backend(name)
    if backend.available():
        status = "default" if name == DEFAULT_BACKEND else "available"
        reason = None
    else:
        status = "unavailable"
        reason = getattr(backend, "unavailable_reason", lambda: "")() or None
    return {
        "name": name,
        "capabilities": sorted(backend.capabilities()),
        "status": status,
        **({"reason": reason} if reason else {}),
    }


def get_backend(name: str) -> SolverBackend:
    """Look one backend up by name; unknown names get the full menu."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available backends: {backend_menu()}"
        ) from None


def resolve_backend(
    backend: str | SolverBackend | None = None,
    *,
    require: Iterable[str] = (),
) -> SolverBackend:
    """Pick the backend for a solve, enforcing required capabilities.

    Parameters
    ----------
    backend:
        Explicit request — a registered name, a backend instance, or
        ``None`` for "environment, then default".
    require:
        Capabilities the solve needs (``{"lp"}``, ``{"milp"}``, ...).
        An *explicitly* requested backend missing one is an error; the
        *default* silently falls back to the first available backend
        that has them all (capability routing).
    """
    need = frozenset(require)
    if backend is not None and not isinstance(backend, str):
        missing = need - backend.capabilities()
        if missing:
            raise ValueError(
                f"backend {backend.name!r} lacks required "
                f"capabilities {sorted(missing)}"
            )
        return backend

    explicit = backend if backend is not None else os.environ.get(
        BACKEND_ENV_VAR
    )
    if explicit:
        chosen = get_backend(explicit)
        if not chosen.available():
            reason = getattr(chosen, "unavailable_reason", lambda: "")()
            raise ValueError(
                f"backend {explicit!r} is not available"
                + (f": {reason}" if reason else "")
                + f"; available backends: {backend_menu()}"
            )
        missing = need - chosen.capabilities()
        if missing:
            raise ValueError(
                f"backend {explicit!r} lacks required capabilities "
                f"{sorted(missing)}; available backends: {backend_menu()}"
            )
        return chosen

    default = _BACKENDS.get(DEFAULT_BACKEND)
    if (
        default is not None
        and default.available()
        and need <= default.capabilities()
    ):
        return default
    for name in backend_names():
        candidate = _BACKENDS[name]
        if candidate.available() and need <= candidate.capabilities():
            return candidate
    raise ValueError(
        f"no available backend provides {sorted(need)}; "
        f"registered backends: {backend_menu()}"
    )


def solve_ir(
    lp: LinearProgram,
    *,
    backend: str | SolverBackend | None = None,
    time_limit: float | None = None,
    options: Mapping[str, Any] | None = None,
) -> SolverResult:
    """Route one IR solve through the registry — the main entry point.

    The required capability (``lp`` vs ``milp``) is derived from the
    program itself, so callers cannot accidentally hand a MILP to an
    LP-only backend.
    """
    chosen = resolve_backend(backend, require={lp.required_capability})
    start = time.perf_counter()
    result = chosen.solve(lp, time_limit=time_limit, options=options)
    if result.elapsed == 0.0:  # backend didn't time itself
        result = replace(result, elapsed=time.perf_counter() - start)
    return result


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
register_backend(ScipyHighsBackend())
register_backend(HighsBackend())
register_backend(PythonMipBackend())
register_backend(ReferenceBackend())
