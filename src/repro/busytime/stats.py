"""Schedule statistics: utilization, balance and fragmentation.

Operational metrics downstream users ask of a busy-time solution beyond the
objective itself — how efficiently the paid-for machine time is used, how
evenly machines are loaded, and how fragmented each machine's on-time is.
Used by the examples and handy for comparing algorithms beyond total cost.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from .schedule import BusyTimeSchedule

__all__ = ["ScheduleStats", "compute_stats"]


@dataclass(frozen=True)
class ScheduleStats:
    """Summary metrics of a busy-time schedule.

    Attributes
    ----------
    total_busy_time:
        The objective value.
    machines:
        Number of machines used.
    utilization:
        ``mass / (g * busy)`` — fraction of paid capacity doing work
        (1.0 means every machine ran ``g`` jobs whenever it was on).
    mean_machine_busy, max_machine_busy:
        Load distribution across machines.
    busy_blocks:
        Total number of maximal busy intervals across machines (equals
        ``machines`` when every machine's on-time is contiguous; the paper
        notes contiguity is WLOG for the objective, but algorithms may
        produce fragmented machines).
    fragmentation:
        ``busy_blocks / machines`` — 1.0 means fully contiguous.
    """

    total_busy_time: float
    machines: int
    utilization: float
    mean_machine_busy: float
    max_machine_busy: float
    busy_blocks: int
    fragmentation: float

    def rows(self) -> list[list[object]]:
        """Rows for :func:`repro.analysis.format_table`."""
        return [
            ["total busy time", round(self.total_busy_time, 4)],
            ["machines", self.machines],
            ["utilization", round(self.utilization, 4)],
            ["mean machine busy", round(self.mean_machine_busy, 4)],
            ["max machine busy", round(self.max_machine_busy, 4)],
            ["busy blocks", self.busy_blocks],
            ["fragmentation", round(self.fragmentation, 4)],
        ]


def compute_stats(schedule: BusyTimeSchedule) -> ScheduleStats:
    """Compute :class:`ScheduleStats` for a schedule."""
    if not schedule.bundles:
        return ScheduleStats(
            total_busy_time=0.0,
            machines=0,
            utilization=0.0,
            mean_machine_busy=0.0,
            max_machine_busy=0.0,
            busy_blocks=0,
            fragmentation=0.0,
        )
    busies = [b.busy_time for b in schedule.bundles]
    mass = sum(b.mass for b in schedule.bundles)
    total = sum(busies)
    blocks = sum(len(b.busy_intervals) for b in schedule.bundles)
    return ScheduleStats(
        total_busy_time=total,
        machines=len(busies),
        utilization=(mass / (schedule.g * total)) if total > 0 else 0.0,
        mean_machine_busy=statistics.fmean(busies),
        max_machine_busy=max(busies),
        busy_blocks=blocks,
        fragmentation=blocks / len(busies),
    )
