"""Approximation-ratio measurement harness.

The paper's results are worst-case ratios; the benchmark suite measures the
corresponding empirical ratios on random and adversarial instances.  This
module centralizes the bookkeeping: run algorithm(s), compute a baseline
(exact optimum or lower bound), collect per-instance ratios and aggregate.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = [
    "RatioSample",
    "RatioSummary",
    "collect_ratios",
    "summarize",
    "summarize_groups",
]


@dataclass(frozen=True)
class RatioSample:
    """One measured (cost, baseline) pair."""

    label: str
    cost: float
    baseline: float
    meta: dict = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """``cost / baseline`` (``inf`` for a zero baseline with cost)."""
        if self.baseline <= 0:
            return 0.0 if self.cost <= 0 else float("inf")
        return self.cost / self.baseline


@dataclass(frozen=True)
class RatioSummary:
    """Aggregate statistics over a set of ratio samples."""

    label: str
    count: int
    mean: float
    worst: float
    best: float

    def row(self) -> str:
        """One formatted table row (label, n, mean/max/min ratio)."""
        return (
            f"{self.label:<28} n={self.count:<4d} "
            f"mean={self.mean:6.3f}  max={self.worst:6.3f}  min={self.best:6.3f}"
        )


def collect_ratios(
    label: str,
    runs: Iterable[tuple[float, float]],
    *,
    meta: dict | None = None,
) -> list[RatioSample]:
    """Wrap raw ``(cost, baseline)`` pairs into samples."""
    return [
        RatioSample(label=label, cost=c, baseline=b, meta=meta or {})
        for c, b in runs
    ]


def summarize_groups(samples: Sequence[RatioSample]) -> list[RatioSummary]:
    """Group samples by label and summarize each group (label-sorted)."""
    groups: dict[str, list[RatioSample]] = {}
    for sample in samples:
        groups.setdefault(sample.label, []).append(sample)
    return [summarize(groups[label]) for label in sorted(groups)]


def summarize(samples: Sequence[RatioSample]) -> RatioSummary:
    """Aggregate samples sharing a label."""
    if not samples:
        raise ValueError("no samples to summarize")
    label = samples[0].label
    ratios = [s.ratio for s in samples]
    return RatioSummary(
        label=label,
        count=len(ratios),
        mean=statistics.fmean(ratios),
        worst=max(ratios),
        best=min(ratios),
    )
