"""Tests for local-search post-optimization (repro.busytime.local_search)."""

import pytest

from repro.busytime import (
    BusyTimeSchedule,
    exact_busy_time_interval,
    first_fit,
    greedy_tracking,
)
from repro.busytime.local_search import (
    improve_schedule,
    merge_bundles_once,
    move_jobs_once,
)
from repro.core import Instance, Job
from repro.instances import figure8, random_interval_instance


class TestMergeOnce:
    def test_merges_disjoint_bundles(self):
        groups = [[Job(0, 1, 1, id=0)], [Job(2, 3, 1, id=1)]]
        assert merge_bundles_once(groups, 2)
        assert len(groups) == 1

    def test_respects_capacity(self):
        groups = [[Job(0, 2, 2, id=0)], [Job(0, 2, 2, id=1)]]
        assert merge_bundles_once(groups, 2)  # two overlap, g=2 OK
        groups2 = [
            [Job(0, 2, 2, id=0), Job(0, 2, 2, id=1)],
            [Job(0, 2, 2, id=2)],
        ]
        assert not merge_bundles_once(groups2, 2)  # would need g=3

    def test_nothing_to_merge(self):
        groups = [[Job(0, 2, 2, id=0), Job(0, 2, 2, id=1)]]
        assert not merge_bundles_once(groups, 2)


class TestMoveOnce:
    def test_moves_job_to_cover_gap(self):
        # bundle A: long + far-away straggler; bundle B overlaps straggler
        groups = [
            [Job(0, 2, 2, id=0), Job(8, 9, 1, id=1)],
            [Job(8, 10, 2, id=2)],
        ]
        assert move_jobs_once(groups, 2)
        cost = sum(
            __import__("repro").core.span(j.window for j in g)
            for g in groups
        )
        assert cost == pytest.approx(4.0)  # straggler absorbed by B

    def test_no_beneficial_move(self):
        groups = [[Job(0, 2, 2, id=0)], [Job(5, 7, 2, id=1)]]
        assert not move_jobs_once(groups, 1)


class TestImproveSchedule:
    def test_never_worse(self, rng):
        for _ in range(12):
            inst = random_interval_instance(12, 18.0, rng=rng)
            g = int(rng.integers(1, 4))
            for algo in (first_fit, greedy_tracking):
                before = algo(inst, g)
                after = improve_schedule(before)
                after.verify()
                assert after.total_busy_time <= before.total_busy_time + 1e-9

    def test_never_below_opt(self, rng):
        for _ in range(6):
            inst = random_interval_instance(7, 12.0, rng=rng)
            g = int(rng.integers(1, 3))
            opt = exact_busy_time_interval(inst, g).total_busy_time
            improved = improve_schedule(first_fit(inst, g))
            assert improved.total_busy_time >= opt - 1e-6

    def test_repairs_figure8_adversarial_bundling(self):
        """Local search recovers the Figure-8 trap back to the optimum."""
        gad = figure8(eps=0.2, eps_prime=0.1)
        groups = [
            [gad.instance.job_by_id(j) for j in b]
            for b in gad.witness["adversarial_bundles"]
        ]
        bad = BusyTimeSchedule.from_bundle_jobs(gad.instance, gad.g, groups)
        improved = improve_schedule(bad)
        improved.verify()
        assert improved.total_busy_time == pytest.approx(
            gad.facts["opt_busy_time"]
        )

    def test_pinned_starts_untouched(self, rng):
        inst = random_interval_instance(8, 12.0, rng=rng)
        before = first_fit(inst, 2)
        after = improve_schedule(before)
        assert after.starts == before.starts

    def test_empty_schedule(self):
        s = BusyTimeSchedule.from_bundle_jobs(Instance(tuple()), 2, [])
        assert improve_schedule(s).total_busy_time == 0.0
