"""End-to-end integration tests crossing module boundaries."""

import pytest

from repro import (
    Instance,
    best_lower_bound,
    chain_peeling_two_approx,
    compute_demand_profile,
    exact_active_time,
    exact_busy_time_interval,
    first_fit,
    greedy_tracking,
    greedy_unbounded_preemptive,
    kumar_rudra,
    minimal_feasible_schedule,
    opt_infinity,
    preemptive_bounded,
    round_active_time,
    schedule_flexible,
    solve_active_time_lp,
)
from repro.instances import (
    random_active_time_instance,
    random_flexible_instance,
    random_interval_instance,
)


class TestActiveTimePipeline:
    """LP -> right-shift -> round -> verify, against exact and Theorem 1."""

    def test_full_chain_on_random_instances(self, rng):
        checked = 0
        for _ in range(10):
            inst = random_active_time_instance(8, 12, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                exact = exact_active_time(inst, g)
            except RuntimeError:
                continue
            lp = solve_active_time_lp(inst, g)
            rounded = round_active_time(inst, g, lp=lp, strict=True)
            minimal = minimal_feasible_schedule(inst, g)
            rounded.schedule.verify()
            minimal.verify()
            # the full hierarchy of bounds:
            assert lp.objective <= exact.cost + 1e-6
            assert exact.cost <= rounded.cost
            assert rounded.cost <= 2 * lp.objective + 1e-6
            assert exact.cost <= minimal.cost <= 3 * exact.cost
            checked += 1
        assert checked >= 4

    def test_rounding_never_below_exact(self, rng):
        for _ in range(6):
            inst = random_active_time_instance(6, 9, rng=rng)
            try:
                exact = exact_active_time(inst, 2)
            except RuntimeError:
                continue
            rounded = round_active_time(inst, 2)
            assert rounded.cost >= exact.cost


class TestBusyTimeAlgorithmHierarchy:
    """All interval algorithms vs all lower bounds vs exact."""

    def test_hierarchy_on_random_instances(self, rng):
        for _ in range(6):
            inst = random_interval_instance(7, 12.0, rng=rng)
            g = int(rng.integers(1, 4))
            lb = best_lower_bound(inst, g)
            opt = exact_busy_time_interval(inst, g).total_busy_time
            assert lb <= opt + 1e-6
            results = {
                "first_fit": first_fit(inst, g),
                "greedy_tracking": greedy_tracking(inst, g),
                "chain_peeling": chain_peeling_two_approx(inst, g),
                "kumar_rudra": kumar_rudra(inst, g),
            }
            factors = {
                "first_fit": 4,
                "greedy_tracking": 3,
                "chain_peeling": 2,
                "kumar_rudra": 2,
            }
            for name, schedule in results.items():
                schedule.verify()
                assert opt - 1e-6 <= schedule.total_busy_time
                assert schedule.total_busy_time <= factors[name] * opt + 1e-6


class TestFlexiblePipelineEndToEnd:
    def test_pipeline_consistency(self, rng):
        for _ in range(4):
            inst = random_flexible_instance(7, 11, rng=rng)
            g = int(rng.integers(1, 4))
            placement = opt_infinity(inst)
            s = schedule_flexible(inst, g, algorithm="greedy_tracking")
            s.verify()
            # bundle intervals realize the recorded starts
            for b in s.bundles:
                for pinned in b.jobs:
                    assert pinned.release == pytest.approx(
                        s.starts[pinned.id]
                    )
            # OPT_inf lower-bounds the bounded-capacity outcome
            assert s.total_busy_time >= placement.busy_time - 1e-6

    def test_preemption_hierarchy(self, rng):
        """preemptive g=inf <= nonpreemptive g=inf <= bounded outcomes."""
        for _ in range(5):
            inst = random_flexible_instance(6, 10, rng=rng)
            g = int(rng.integers(1, 4))
            pre_inf = greedy_unbounded_preemptive(inst).total_busy_time
            non_inf = opt_infinity(inst).busy_time
            pre_g = preemptive_bounded(inst, g).total_busy_time
            non_g = schedule_flexible(inst, g).total_busy_time
            assert pre_inf <= non_inf + 1e-6
            assert pre_inf <= pre_g + 1e-6
            # preemptive bounded-g relaxes non-preemptive bounded-g is not
            # guaranteed by these algorithms (both are approximations), but
            # both respect the unbounded preemptive lower bound:
            assert non_g >= pre_inf - 1e-6


class TestProfileConsistency:
    def test_profile_vs_verifier_view(self, rng):
        """The profile's peak raw demand matches coverage counting."""
        from repro.core import coverage_counts

        for _ in range(6):
            inst = random_interval_instance(8, 14.0, rng=rng)
            profile = compute_demand_profile(inst, 2)
            cov = coverage_counts([j.window for j in inst.jobs])
            assert profile.max_raw == max(c for _, c in cov)

    def test_one_machine_per_demand_unit_suffices(self, rng):
        """Scheduling each demand level's worth on enough machines is enough:
        the exact optimum never exceeds profile * 2 on these sizes (sanity
        for the tightness direction of Observation 4)."""
        for _ in range(4):
            inst = random_interval_instance(6, 10.0, rng=rng)
            g = int(rng.integers(1, 3))
            profile = compute_demand_profile(inst, g).cost
            opt = exact_busy_time_interval(inst, g).total_busy_time
            assert profile <= opt + 1e-6 <= 2 * profile + 1e-5


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_snippet(self):
        """The README/The __init__ docstring example runs as documented."""
        inst = Instance.from_tuples([(0, 4, 2), (1, 5, 3), (0, 6, 1)])
        solution = round_active_time(inst, g=2)
        assert solution.cost <= 2 * solution.lp_objective + 1e-9
        jobs = Instance.from_intervals([(0, 2), (1, 3), (2.5, 4)])
        schedule = greedy_tracking(jobs, g=2)
        assert schedule.total_busy_time > 0
