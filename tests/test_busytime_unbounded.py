"""Tests for the unbounded-capacity placement (OPT_inf, Theorem 4 substitute)."""

import pytest

from repro.busytime import opt_infinity, pin_instance
from repro.core import Instance, span
from repro.instances import random_flexible_instance, random_interval_instance


class TestOptInfinity:
    def test_interval_instance_is_span(self, interval_instance):
        placement = opt_infinity(interval_instance)
        assert placement.busy_time == pytest.approx(
            span(j.window for j in interval_instance.jobs)
        )
        for j in interval_instance.jobs:
            assert placement.starts[j.id] == j.release

    def test_flexible_consolidation(self):
        inst = Instance.from_tuples([(0, 5, 2), (0, 5, 2), (1, 6, 2)])
        placement = opt_infinity(inst)
        assert placement.busy_time == pytest.approx(2.0)

    def test_empty(self):
        placement = opt_infinity(Instance(tuple()))
        assert placement.busy_time == 0.0
        assert placement.starts == {}

    def test_rejects_non_integral_flexible(self):
        from repro.core import Job

        inst = Instance((Job(0.0, 2.5, 1.0, id=0),))
        with pytest.raises(ValueError, match="pin_instance"):
            opt_infinity(inst)

    def test_placement_lower_bounds_interval_span(self, rng):
        """OPT_inf never exceeds the span of any specific placement."""
        for _ in range(8):
            inst = random_flexible_instance(6, 10, rng=rng)
            placement = opt_infinity(inst)
            # pin everything as early as possible, compare spans
            early = pin_instance(
                inst, {j.id: j.release for j in inst.jobs}
            )
            assert placement.busy_time <= span(
                j.window for j in early.jobs
            ) + 1e-6

    def test_busy_time_matches_pinned_span(self, rng):
        for _ in range(8):
            inst = random_flexible_instance(6, 10, rng=rng)
            placement = opt_infinity(inst)
            pinned = pin_instance(inst, placement.starts)
            assert span(j.window for j in pinned.jobs) == pytest.approx(
                placement.busy_time, abs=1e-6
            )


class TestPinInstance:
    def test_pins_to_intervals(self, rng):
        inst = random_flexible_instance(6, 10, rng=rng)
        pinned = pin_instance(inst, {j.id: j.release for j in inst.jobs})
        assert pinned.all_interval
        for orig, new in zip(inst.jobs, pinned.jobs):
            assert new.id == orig.id
            assert new.length == orig.length

    def test_missing_start_raises(self, tiny_instance):
        with pytest.raises(KeyError):
            pin_instance(tiny_instance, {0: 0})

    def test_invalid_start_raises(self, tiny_instance):
        starts = {j.id: float(j.deadline) for j in tiny_instance.jobs}
        with pytest.raises(ValueError):
            pin_instance(tiny_instance, starts)

    def test_interval_jobs_roundtrip(self, rng):
        inst = random_interval_instance(6, 10.0, rng=rng)
        pinned = pin_instance(inst, {j.id: j.release for j in inst.jobs})
        assert pinned == inst
