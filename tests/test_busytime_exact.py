"""Tests for the exact busy-time oracles."""

import pytest

from repro.busytime import (
    brute_force_busy_time_interval,
    exact_busy_time_flexible,
    exact_busy_time_interval,
)
from repro.core import Instance
from repro.instances import random_interval_instance


class TestIntervalExact:
    def test_verifies(self, interval_instance):
        s = exact_busy_time_interval(interval_instance, 2)
        s.verify()

    def test_monotone_in_g(self, rng):
        for _ in range(5):
            inst = random_interval_instance(6, 10.0, rng=rng)
            costs = [
                exact_busy_time_interval(inst, g).total_busy_time
                for g in (1, 2, 4)
            ]
            assert costs == sorted(costs, reverse=True)

    def test_g1_total_length_when_disjointable(self):
        inst = Instance.from_intervals([(0, 1), (1, 2), (2, 3)])
        s = exact_busy_time_interval(inst, 1)
        # optimal cost is the total length; machine count may vary among ties
        assert s.total_busy_time == pytest.approx(3.0)

    def test_empty(self):
        assert exact_busy_time_interval(Instance(tuple()), 1).total_busy_time == 0


class TestBruteForce:
    def test_matches_milp(self, rng):
        for _ in range(10):
            inst = random_interval_instance(
                int(rng.integers(2, 7)), 10.0, rng=rng
            )
            g = int(rng.integers(1, 4))
            bf = brute_force_busy_time_interval(inst, g)
            ex = exact_busy_time_interval(inst, g)
            assert bf.total_busy_time == pytest.approx(
                ex.total_busy_time, abs=1e-6
            )

    def test_guard(self, rng):
        inst = random_interval_instance(12, 20.0, rng=rng)
        with pytest.raises(ValueError, match="brute force"):
            brute_force_busy_time_interval(inst, 2)

    def test_empty(self):
        s = brute_force_busy_time_interval(Instance(tuple()), 1)
        assert s.total_busy_time == 0


class TestFlexibleExact:
    def test_verifies(self):
        inst = Instance.from_tuples([(0, 4, 2), (1, 5, 2), (0, 6, 1)])
        s = exact_busy_time_flexible(inst, 2)
        s.verify()

    def test_never_above_interval_exact(self, rng):
        """Flexibility can only help."""
        for _ in range(5):
            inst = random_interval_instance(5, 8.0, integral=True, rng=rng)
            g = int(rng.integers(1, 3))
            rigid = exact_busy_time_interval(inst, g).total_busy_time
            # widen every window by 2 slots
            from repro.core import Job

            widened = Instance(
                tuple(
                    Job(
                        max(0, j.release - 1),
                        j.deadline + 1,
                        j.length,
                        id=j.id,
                    )
                    for j in inst.jobs
                )
            )
            flex = exact_busy_time_flexible(widened, g).total_busy_time
            assert flex <= rigid + 1e-6

    def test_empty(self):
        assert exact_busy_time_flexible(Instance(tuple()), 1).total_busy_time == 0
