"""Tests for the unit-job exact algorithm (Chang–Gabow–Khuller special case)."""

import pytest

from repro.activetime import exact_active_time, unit_jobs_optimal_schedule
from repro.core import Instance
from repro.instances import random_unit_instance


class TestBasics:
    def test_simple(self):
        inst = Instance.from_tuples([(0, 2, 1), (0, 2, 1), (1, 3, 1)])
        s = unit_jobs_optimal_schedule(inst, 2)
        s.verify()
        assert s.cost == exact_active_time(inst, 2).cost

    def test_rejects_non_unit(self, tiny_instance):
        with pytest.raises(ValueError, match="unit"):
            unit_jobs_optimal_schedule(tiny_instance, 2)

    def test_infeasible_raises(self):
        inst = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        with pytest.raises(ValueError):
            unit_jobs_optimal_schedule(inst, 1)

    def test_singleton_windows_force_slots(self):
        inst = Instance.from_tuples([(0, 1, 1), (2, 3, 1), (4, 5, 1)])
        s = unit_jobs_optimal_schedule(inst, 3)
        assert s.cost == 3  # disjoint singleton windows cannot share slots


class TestOptimality:
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_matches_exact_milp(self, g, rng):
        matched = 0
        for _ in range(20):
            n = int(rng.integers(2, 12))
            T = int(rng.integers(2, 10))
            inst = random_unit_instance(n, T, rng=rng)
            try:
                exact = exact_active_time(inst, g)
            except RuntimeError:
                continue
            s = unit_jobs_optimal_schedule(inst, g)
            s.verify()
            assert s.cost == exact.cost, (
                [(j.release, j.deadline) for j in inst.jobs],
                g,
            )
            matched += 1
        assert matched >= 8

    def test_clustered_deadlines(self):
        # g+1 jobs sharing a 2-slot window plus a straggler
        inst = Instance.from_tuples(
            [(0, 2, 1)] * 3 + [(1, 4, 1)]
        )
        s = unit_jobs_optimal_schedule(inst, 2)
        assert s.cost == exact_active_time(inst, 2).cost == 2
