"""Property-based tests for the extension modules (widths, online, io, span)."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import Instance, Job

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def integral_flexible(draw, max_n=7, max_t=11):
    n = draw(st.integers(1, max_n))
    jobs = []
    for i in range(n):
        p = draw(st.integers(1, 3))
        slack = draw(st.integers(0, 4))
        r = draw(st.integers(0, max(0, max_t - p - slack)))
        jobs.append(Job(r, r + p + slack, p, id=i))
    return Instance(tuple(jobs))


@st.composite
def interval_with_widths(draw, g=4, max_n=10):
    n = draw(st.integers(1, max_n))
    out = []
    for i in range(n):
        a = draw(st.floats(0, 12, allow_nan=False))
        ln = draw(st.floats(0.25, 4, allow_nan=False))
        w = draw(st.floats(0.25, g, allow_nan=False))
        job = Job(round(a, 3), round(a, 3) + round(ln, 3), round(ln, 3), id=i)
        out.append((job, round(w, 3)))
    return out


class TestWidthProperties:
    @given(interval_with_widths())
    @settings(max_examples=60, **COMMON)
    def test_narrow_wide_feasible_and_bounded(self, pairs):
        from repro.busytime import (
            WidthInstance,
            WidthJob,
            khandekar_narrow_wide,
            width_mass_lower_bound,
            width_profile_lower_bound,
        )

        g = 4
        wi = WidthInstance(tuple(WidthJob(j, w) for j, w in pairs))
        s = khandekar_narrow_wide(wi, g)
        s.verify()
        lb = max(
            width_mass_lower_bound(wi, g), width_profile_lower_bound(wi, g)
        )
        assert s.total_busy_time <= 5 * lb + 1e-6

    @given(interval_with_widths())
    @settings(max_examples=60, **COMMON)
    def test_width_profile_dominates_mass(self, pairs):
        from repro.busytime import (
            WidthInstance,
            WidthJob,
            width_mass_lower_bound,
            width_profile_lower_bound,
        )

        g = 4
        wi = WidthInstance(tuple(WidthJob(j, w) for j, w in pairs))
        assert width_profile_lower_bound(wi, g) >= width_mass_lower_bound(
            wi, g
        ) - 1e-6


class TestOnlineProperties:
    @given(integral_flexible())
    @settings(max_examples=40, **COMMON)
    def test_policies_feasible_on_pinned_instances(self, inst):
        from repro.busytime import online_best_fit, online_first_fit, pin_instance

        pinned = pin_instance(inst, {j.id: j.release for j in inst.jobs})
        for policy in (online_first_fit, online_best_fit):
            s = policy(pinned, 2)
            s.verify()

    @given(integral_flexible())
    @settings(max_examples=40, **COMMON)
    def test_best_fit_no_more_machines_than_jobs(self, inst):
        from repro.busytime import online_best_fit, pin_instance

        pinned = pin_instance(inst, {j.id: j.release for j in inst.jobs})
        s = online_best_fit(pinned, 2)
        assert s.num_machines <= pinned.n


class TestIoProperties:
    @given(integral_flexible())
    @settings(max_examples=100, **COMMON)
    def test_json_roundtrip(self, inst):
        from repro.io import instance_from_json, instance_to_json

        assert instance_from_json(instance_to_json(inst)) == inst

    @given(integral_flexible())
    @settings(max_examples=100, **COMMON)
    def test_csv_roundtrip(self, inst):
        from repro.io import instance_from_csv, instance_to_csv

        assert instance_from_csv(instance_to_csv(inst)) == inst


class TestSpanSearchProperties:
    @given(integral_flexible(max_n=6, max_t=9))
    @settings(max_examples=20, **COMMON)
    def test_two_exact_solvers_agree(self, inst):
        from repro.busytime import opt_infinity, span_search_exact

        value, starts = span_search_exact(inst)
        assert value == pytest.approx(opt_infinity(inst).busy_time, abs=1e-9)
        for jid, s in starts.items():
            assert inst.job_by_id(jid).can_start_at(s)

    @given(integral_flexible(max_n=6, max_t=9))
    @settings(max_examples=20, **COMMON)
    def test_earliest_fit_upper_bounds(self, inst):
        from repro.busytime import earliest_fit_span, span_search_exact

        upper, _ = earliest_fit_span(inst)
        exact, _ = span_search_exact(inst)
        assert exact <= upper + 1e-9


class TestSpecialCaseProperties:
    @given(st.integers(2, 7), st.integers(1, 4), st.randoms())
    @settings(max_examples=30, **COMMON)
    def test_proper_clique_dp_at_most_greedy(self, n, g, pyrandom):
        from repro.busytime import clique_greedy, proper_clique_exact

        # strictly increasing endpoints on both sides keep the instance
        # proper even when the random source repeats values; the offset must
        # be applied after sorting or distinct draws can collide (0.0+1e-3
        # vs 0.001+0) and produce a strictly-contained window
        lefts = [v + i * 1e-3
                 for i, v in enumerate(sorted(pyrandom.uniform(0, 4)
                                              for _ in range(n)))]
        rights = [v + i * 1e-3
                  for i, v in enumerate(sorted(pyrandom.uniform(5, 9)
                                               for _ in range(n)))]
        inst = Instance(
            tuple(
                Job(a, b, b - a, id=i)
                for i, (a, b) in enumerate(zip(lefts, rights))
            )
        )
        dp = proper_clique_exact(inst, g)
        dp.verify()
        greedy = clique_greedy(inst, g)
        assert dp.total_busy_time <= greedy.total_busy_time + 1e-9
