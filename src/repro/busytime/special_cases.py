"""Special instance classes discussed in footnote 1 and related work.

Flammini et al. [5] sharpen the busy-time bounds on structured interval
instances, and Mertzios et al. [12] solve one class exactly:

* **proper instances** (no window strictly contains another): greedy by
  release time is 2-approximate;
* **clique instances** (all windows share a common point): a greedy grouping
  of ``g`` consecutive jobs (sorted by release) is 2-approximate;
* **proper clique instances**: a simple dynamic program is *exact* — in an
  optimal solution the bundles are consecutive runs in the sorted order, so
  a shortest-path DP over group boundaries suffices.

These are extensions beyond the paper's own theorems; the DP's consecutive-
runs property follows from the standard exchange argument (swapping two jobs
between bundles of a proper clique never increases either span), and the
test-suite cross-checks the DP against the exact MILP.
"""

from __future__ import annotations

from ..core.jobs import Instance, Job
from ..core.validation import require_capacity, require_interval_jobs
from .firstfit import first_fit
from .schedule import BusyTimeSchedule

__all__ = ["proper_greedy", "clique_greedy", "proper_clique_exact"]


def proper_greedy(instance: Instance, g: int) -> BusyTimeSchedule:
    """Greedy-by-release first fit on a proper instance (2-approximate).

    Raises ``ValueError`` when some window strictly contains another — the
    guarantee is specific to proper instances (on general instances this
    ordering is only the FIRSTFIT heuristic with a different order).
    """
    require_interval_jobs(instance, "proper greedy")
    require_capacity(g)
    if not instance.is_proper():
        raise ValueError(
            "proper_greedy requires a proper instance "
            "(no window strictly inside another)"
        )
    return first_fit(instance, g, order="release")


def clique_greedy(instance: Instance, g: int) -> BusyTimeSchedule:
    """Group ``g`` consecutive jobs (by release) on a clique instance.

    All windows share a common point, so any ``g`` jobs may share a machine;
    grouping *consecutive* jobs in release order keeps each bundle's span
    close to its longest member (the 2-approximation of Flammini et al.).
    """
    require_interval_jobs(instance, "clique greedy")
    require_capacity(g)
    if instance.n == 0:
        return BusyTimeSchedule.from_bundle_jobs(instance, g, [])
    if not instance.is_clique():
        raise ValueError(
            "clique_greedy requires a clique instance "
            "(all windows sharing a common time point)"
        )
    ordered = sorted(instance.jobs, key=lambda j: (j.release, j.deadline, j.id))
    groups = [ordered[i : i + g] for i in range(0, len(ordered), g)]
    return BusyTimeSchedule.from_bundle_jobs(instance, g, groups)


def proper_clique_exact(instance: Instance, g: int) -> BusyTimeSchedule:
    """Exact busy time for proper clique instances (Mertzios et al. [12]).

    Sort jobs by release time; in a proper instance deadlines then appear in
    the same order, and in a clique any subset is capacity-feasible.  An
    exchange argument shows some optimal solution uses bundles that are
    consecutive runs of length at most ``g`` in this order, so

        f(i) = min over 1 <= k <= min(i, g) of
               f(i - k) + (d_i - r_{i-k+1})

    computes the optimum in ``O(n g)``.
    """
    require_interval_jobs(instance, "proper clique DP")
    require_capacity(g)
    if instance.n == 0:
        return BusyTimeSchedule.from_bundle_jobs(instance, g, [])
    if not instance.is_proper() or not instance.is_clique():
        raise ValueError(
            "proper_clique_exact requires a proper clique instance"
        )
    ordered = sorted(instance.jobs, key=lambda j: (j.release, j.deadline, j.id))
    n = len(ordered)
    INF = float("inf")
    cost = [INF] * (n + 1)
    choice = [0] * (n + 1)
    cost[0] = 0.0
    for i in range(1, n + 1):
        for k in range(1, min(i, g) + 1):
            span = ordered[i - 1].deadline - ordered[i - k].release
            cand = cost[i - k] + span
            if cand < cost[i]:
                cost[i] = cand
                choice[i] = k
    groups: list[list[Job]] = []
    i = n
    while i > 0:
        k = choice[i]
        groups.append(ordered[i - k : i])
        i -= k
    groups.reverse()
    return BusyTimeSchedule.from_bundle_jobs(instance, g, groups)
