"""Exact active-time optima: MILP for real work, brute force for cross-checks.

The paper conjectures the active-time problem is NP-hard; no polynomial exact
algorithm is known for general lengths.  For measuring approximation ratios
we therefore use the HiGHS MILP (:func:`repro.lp.milp.solve_active_time_exact`)
and, on tiny instances, an independent brute force that enumerates slot
subsets in increasing size — the two must agree, which the test-suite checks.
"""

from __future__ import annotations

import itertools

from ..core.jobs import Instance
from ..core.validation import require_capacity, require_integral
from ..flow.feasibility import ActiveTimeFeasibility
from ..lp.milp import solve_active_time_exact
from .schedule import ActiveTimeSchedule, schedule_from_slots

__all__ = [
    "exact_active_time",
    "brute_force_active_time",
    "lower_bound_mass",
]


def exact_active_time(
    instance: Instance, g: int, *, backend: str | None = None
) -> ActiveTimeSchedule:
    """Optimal active-time schedule via the exact MILP.

    ``backend`` selects the MILP backend (see :mod:`repro.solvers`).
    """
    require_integral(instance)
    require_capacity(g)
    if instance.n == 0:
        return ActiveTimeSchedule(instance, g, tuple(), {})
    result = solve_active_time_exact(instance, g, backend=backend)
    return schedule_from_slots(instance, g, result.witness["active_slots"])


def brute_force_active_time(
    instance: Instance, g: int, *, max_horizon: int = 16
) -> ActiveTimeSchedule:
    """Optimal schedule by enumerating slot subsets (tiny instances only).

    Searches subsets of ``{1..T}`` in increasing cardinality, pruned by the
    mass lower bound ``ceil(P / g)``, and returns the first feasible one.
    Guarded by ``max_horizon`` because the search is ``O(2^T)``.
    """
    require_integral(instance)
    require_capacity(g)
    if instance.n == 0:
        return ActiveTimeSchedule(instance, g, tuple(), {})
    T = instance.horizon
    if T > max_horizon:
        raise ValueError(
            f"brute force limited to horizon {max_horizon}, instance has {T}"
        )
    oracle = ActiveTimeFeasibility(instance, g)
    all_slots = list(range(1, T + 1))
    lo = lower_bound_mass(instance, g)
    for k in range(lo, T + 1):
        for subset in itertools.combinations(all_slots, k):
            if oracle.is_feasible(subset):
                return schedule_from_slots(instance, g, subset, oracle=oracle)
    raise ValueError(f"instance infeasible for g={g} even with all slots open")


def lower_bound_mass(instance: Instance, g: int) -> int:
    """``ceil(P / g)`` — the full-slot lower bound used in Theorem 1."""
    require_capacity(g)
    if instance.n == 0:
        return 0
    total = int(round(instance.total_length))
    return -(-total // g)
