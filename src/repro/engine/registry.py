"""Central solver registry: ``(problem, name) -> solver + metadata``.

The seed CLI hard-coded two algorithm-name tuples and a chain of
``if/elif`` dispatch; every new consumer (batch runner, sweep driver,
examples) would have had to repeat them.  This module is the single
source of truth instead: each algorithm is registered once with a
uniform call signature and enough metadata (exactness, guarantee,
complexity, capabilities) for callers to build menus, validate requests
and annotate results.

The design follows the solver-abstraction layers in scipy's HiGHS
wrapper and python-mip: raw algorithms keep their natural signatures,
and thin adapters normalize them into a single ``SolveOutcome`` shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..core.jobs import Instance

__all__ = [
    "SolveOutcome",
    "SolverSpec",
    "SolverRegistry",
    "REGISTRY",
    "backend_task_params",
    "get_solver",
    "solve",
]

#: Problem families the registry knows about.
PROBLEMS = ("active", "busy")


@dataclass(frozen=True)
class SolveOutcome:
    """Uniform result of one solver invocation.

    ``objective`` is the quantity the problem minimizes (active slots or
    total busy time); ``metrics`` holds JSON-serializable extras (lower
    bounds, machine counts, LP objectives); ``schedule`` is the rich
    in-process object for callers that want to inspect or verify it —
    it is *not* shipped across process boundaries or into caches.
    """

    objective: float
    metrics: dict[str, Any] = field(default_factory=dict)
    schedule: Any | None = None


@dataclass(frozen=True)
class SolverSpec:
    """One registered algorithm plus its metadata.

    ``backend_capability`` names the LP/MILP backend capability the
    algorithm routes through :mod:`repro.solvers` (``"lp"`` or
    ``"milp"``); ``None`` marks purely combinatorial algorithms that
    accept no ``backend=`` parameter.
    """

    problem: str
    name: str
    solve: Callable[..., SolveOutcome]
    exact: bool
    guarantee: str
    complexity: str
    description: str
    capabilities: frozenset[str] = frozenset()
    backend_capability: str | None = None

    @property
    def key(self) -> tuple[str, str]:
        return (self.problem, self.name)

    def describe_row(self) -> list[str]:
        """Row for the ``repro algos`` table."""
        return [
            self.problem,
            self.name,
            "exact" if self.exact else self.guarantee,
            self.backend_capability or "-",
            self.complexity,
            self.description,
        ]


class SolverRegistry:
    """Mapping of ``(problem, name)`` to :class:`SolverSpec`."""

    def __init__(self) -> None:
        self._specs: dict[tuple[str, str], SolverSpec] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, spec: SolverSpec) -> SolverSpec:
        """Add a spec; duplicate ``(problem, name)`` keys are an error."""
        if spec.problem not in PROBLEMS:
            raise ValueError(
                f"unknown problem {spec.problem!r}; choose from {PROBLEMS}"
            )
        if spec.key in self._specs:
            raise ValueError(
                f"solver {spec.name!r} already registered for "
                f"problem {spec.problem!r}"
            )
        self._specs[spec.key] = spec
        return spec

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, problem: str, name: str) -> SolverSpec:
        """Return the spec for ``(problem, name)`` or raise ``KeyError``."""
        try:
            return self._specs[(problem, name)]
        except KeyError:
            raise KeyError(
                f"no solver {name!r} for problem {problem!r}; "
                f"registered: {self.names(problem)}"
            ) from None

    def names(self, problem: str) -> tuple[str, ...]:
        """Sorted solver names registered for ``problem``."""
        return tuple(
            sorted(n for (p, n) in self._specs if p == problem)
        )

    def specs(self, problem: str | None = None) -> tuple[SolverSpec, ...]:
        """All specs (optionally restricted to one problem), sorted."""
        return tuple(
            spec
            for key, spec in sorted(self._specs.items())
            if problem is None or key[0] == problem
        )

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[SolverSpec]:
        return iter(self.specs())

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._specs

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: str,
        name: str,
        instance: Instance,
        g: int,
        **params: Any,
    ) -> SolveOutcome:
        """Look up and invoke a solver with a uniform signature."""
        spec = self.get(problem, name)
        if params.get("backend") is not None and spec.backend_capability is None:
            raise ValueError(_no_backend_message(problem, name))
        return spec.solve(instance, g, **params)


def _no_backend_message(problem: str, name: str) -> str:
    return (
        f"algorithm {name!r} ({problem}) is combinatorial and does not "
        "use an LP/MILP backend; drop --backend or pick an LP-based "
        "algorithm (see `repro algos`)"
    )


def backend_task_params(
    problem: str,
    name: str,
    backend: str | None,
    *,
    strict: bool = True,
) -> dict[str, str]:
    """Solver params pinning the effective LP/MILP backend for one task.

    The single source of the backend-routing policy, shared by the CLI
    and the sweep driver (their pinned names must agree byte-for-byte —
    the name feeds the task digest, hence the cache key):

    * algorithms that route through :mod:`repro.solvers` get
      ``{"backend": <resolved name>}`` — the explicit request, else the
      ``REPRO_LP_BACKEND``/default resolution — validated against the
      algorithm's required capability (typos raise with the menu);
    * combinatorial algorithms get ``{}``; explicitly naming a backend
      for one raises when ``strict`` (single-algorithm CLI commands) and
      is ignored when not (sweeps legitimately mix both kinds).
    """
    from ..solvers import resolve_backend

    spec = REGISTRY.get(problem, name)
    if spec.backend_capability is None:
        if backend is not None and strict:
            raise ValueError(_no_backend_message(problem, name))
        return {}
    chosen = resolve_backend(backend, require={spec.backend_capability})
    return {"backend": chosen.name}


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------


def _active_metrics(instance: Instance, g: int) -> dict[str, Any]:
    from ..activetime import lower_bound_mass

    return {"lower_bound": float(lower_bound_mass(instance, g))}


def _solve_active_rounding(
    instance: Instance, g: int, backend: str | None = None
) -> SolveOutcome:
    from ..activetime import round_active_time

    sol = round_active_time(instance, g, backend=backend)
    sol.schedule.verify()
    metrics = _active_metrics(instance, g)
    metrics.update(
        lp_objective=float(sol.lp_objective),
        ratio_vs_lp=float(sol.ratio_vs_lp),
    )
    return SolveOutcome(
        objective=float(sol.schedule.cost),
        metrics=metrics,
        schedule=sol.schedule,
    )


def _solve_active_minimal(instance: Instance, g: int) -> SolveOutcome:
    from ..activetime import minimal_feasible_schedule

    schedule = minimal_feasible_schedule(instance, g)
    schedule.verify()
    return SolveOutcome(
        objective=float(schedule.cost),
        metrics=_active_metrics(instance, g),
        schedule=schedule,
    )


def _solve_active_exact(
    instance: Instance, g: int, backend: str | None = None
) -> SolveOutcome:
    from ..activetime import exact_active_time

    schedule = exact_active_time(instance, g, backend=backend)
    schedule.verify()
    return SolveOutcome(
        objective=float(schedule.cost),
        metrics=_active_metrics(instance, g),
        schedule=schedule,
    )


def _solve_active_unit(instance: Instance, g: int) -> SolveOutcome:
    from ..activetime import unit_jobs_optimal_schedule

    schedule = unit_jobs_optimal_schedule(instance, g)
    schedule.verify()
    return SolveOutcome(
        objective=float(schedule.cost),
        metrics=_active_metrics(instance, g),
        schedule=schedule,
    )


def _busy_outcome(schedule, instance: Instance, g: int) -> SolveOutcome:
    from ..busytime import best_lower_bound, mass_lower_bound

    schedule.verify()
    # The span/profile bounds require interval jobs; flexible instances
    # fall back to the always-valid mass bound (Observation 2).
    if instance.all_interval:
        bound = best_lower_bound(instance, g)
    else:
        bound = mass_lower_bound(instance, g)
    return SolveOutcome(
        objective=float(schedule.total_busy_time),
        metrics={
            "lower_bound": float(bound),
            "num_machines": int(schedule.num_machines),
        },
        schedule=schedule,
    )


def _make_busy_flexible(name: str) -> Callable[..., SolveOutcome]:
    def _solve(
        instance: Instance, g: int, backend: str | None = None
    ) -> SolveOutcome:
        from ..busytime import schedule_flexible

        return _busy_outcome(
            schedule_flexible(instance, g, algorithm=name, backend=backend),
            instance,
            g,
        )

    _solve.__name__ = f"_solve_busy_{name}"
    return _solve


def _solve_busy_exact(
    instance: Instance, g: int, backend: str | None = None
) -> SolveOutcome:
    from ..busytime import exact_busy_time_interval

    return _busy_outcome(
        exact_busy_time_interval(instance, g, backend=backend), instance, g
    )


_ACTIVE_SOLVERS: tuple[
    tuple[str, Callable, bool, str, str, str, frozenset, str | None], ...
] = (
    (
        "rounding",
        _solve_active_rounding,
        False,
        "2-approx (Thm 2)",
        "LP + O(n log n) rounding",
        "LP rounding with minimal barely-open slot closure",
        frozenset({"integral", "flexible"}),
        "lp",
    ),
    (
        "minimal",
        _solve_active_minimal,
        False,
        "3-approx (Thm 1)",
        "O(T * maxflow)",
        "greedy slot closure to a minimal feasible set",
        frozenset({"integral", "flexible"}),
        None,
    ),
    (
        "exact",
        _solve_active_exact,
        True,
        "exact",
        "MILP (exponential)",
        "integer program over slot-open variables",
        frozenset({"integral", "flexible", "expensive"}),
        "milp",
    ),
    (
        "unit",
        _solve_active_unit,
        True,
        "exact (unit jobs)",
        "O(n log n)",
        "Chang-Gabow-Khuller optimal algorithm for unit jobs",
        frozenset({"integral", "unit-only"}),
        None,
    ),
)

_BUSY_FLEXIBLE_META: dict[str, tuple[str, str, str]] = {
    "greedy_tracking": (
        "3-approx (Thm 5)",
        "O(n^2)",
        "pin via OPT_inf, then pack along greedy tracks",
    ),
    "first_fit": (
        "no constant bound",
        "O(n^2)",
        "pin via OPT_inf, then first-fit by decreasing span",
    ),
    "chain_peeling": (
        "4-approx (Thm 10)",
        "O(n^2)",
        "pin via OPT_inf, then peel 2-approximate chains",
    ),
    "kumar_rudra": (
        "4-approx (Thm 10)",
        "O(n log n)",
        "pin via OPT_inf, then Kumar-Rudra level coloring",
    ),
}


def _register_builtin(registry: SolverRegistry) -> None:
    for (
        name,
        fn,
        exact,
        guarantee,
        complexity,
        desc,
        caps,
        backend_cap,
    ) in _ACTIVE_SOLVERS:
        registry.register(
            SolverSpec(
                problem="active",
                name=name,
                solve=fn,
                exact=exact,
                guarantee=guarantee,
                complexity=complexity,
                description=desc,
                capabilities=caps,
                backend_capability=backend_cap,
            )
        )
    from ..busytime import INTERVAL_ALGORITHMS

    for name in INTERVAL_ALGORITHMS:
        guarantee, complexity, desc = _BUSY_FLEXIBLE_META.get(
            name, ("heuristic", "unknown", "interval packer")
        )
        registry.register(
            SolverSpec(
                problem="busy",
                name=name,
                solve=_make_busy_flexible(name),
                exact=False,
                guarantee=guarantee,
                complexity=complexity,
                description=desc,
                capabilities=frozenset({"interval", "flexible"}),
                # The OPT_inf pinning stage is a MILP on flexible
                # (non-interval) instances; interval inputs bypass it.
                backend_capability="milp",
            )
        )
    registry.register(
        SolverSpec(
            problem="busy",
            name="exact",
            solve=_solve_busy_exact,
            exact=True,
            guarantee="exact",
            complexity="MILP (exponential)",
            description="integer program over interval bundles",
            capabilities=frozenset({"interval", "expensive"}),
            backend_capability="milp",
        )
    )


#: The default process-wide registry with every built-in algorithm.
REGISTRY = SolverRegistry()
_register_builtin(REGISTRY)


def get_solver(problem: str, name: str) -> SolverSpec:
    """Shorthand for :meth:`SolverRegistry.get` on the default registry."""
    return REGISTRY.get(problem, name)


def solve(
    problem: str,
    name: str,
    instance: Instance,
    g: int,
    **params: Any,
) -> SolveOutcome:
    """Shorthand for :meth:`SolverRegistry.solve` on the default registry."""
    return REGISTRY.solve(problem, name, instance, g, **params)
