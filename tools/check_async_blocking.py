#!/usr/bin/env python3
"""Static check: no blocking calls inside ``repro.serve`` coroutines.

The asyncio serving tier multiplexes every connection on one event
loop; a single blocking call inside an ``async def`` stalls *all* of
them.  This script walks the AST of every module under
``src/repro/serve`` and flags, inside coroutine bodies:

* ``time.sleep(...)`` — use ``asyncio.sleep`` or move off-loop;
* blocking socket methods (``recv``/``recv_into``/``sendall``/
  ``accept``/``makefile``) — coroutines speak through
  ``StreamReader``/``StreamWriter``;
* the synchronous :class:`ServeClient` — a coroutine calling the
  blocking HTTP client would wedge the loop under its own server;
* builtin ``open(...)`` — file I/O belongs on the request executor;
* ``subprocess`` / ``urllib`` usage — same reason;
* ``.join(...)`` on ``threading.Thread`` values is *not* flagged (too
  many false positives against ``str.join``) — keep thread joins out of
  coroutines by review.

Blocking work that is deliberate (e.g. a call that is known to be
nonblocking in context) can be waived with a ``# blocking-ok`` comment
on the offending line.  Module-level and plain-function code is not
scanned: blocking there is fine (request parsing and solving run on the
executor by design).

The check also fails if ``http.server`` or ``socketserver`` are
imported anywhere in the package — the threading server was deleted in
the asyncio rewrite and must not creep back.

Exit status: 0 clean, 1 findings (printed as ``path:line: message``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SERVE_DIR = Path(__file__).resolve().parents[1] / "src" / "repro" / "serve"

#: Attribute calls that block the calling thread when the receiver is a
#: socket-like object.
_BLOCKING_SOCKET_ATTRS = {
    "recv",
    "recv_into",
    "recvfrom",
    "sendall",
    "accept",
    "makefile",
}

#: Modules whose use inside a coroutine is blocking by construction.
_BLOCKING_MODULES = {"subprocess", "urllib"}

#: Importing these anywhere re-introduces the deleted threading server.
_BANNED_IMPORTS = {"http.server", "socketserver"}


def _waived(source_lines: list[str], node: ast.AST) -> bool:
    line = source_lines[node.lineno - 1]
    return "# blocking-ok" in line or "#blocking-ok" in line


class _CoroutineScanner(ast.NodeVisitor):
    """Scan one ``async def`` body, skipping nested sync functions.

    A nested plain ``def`` inside a coroutine is almost always an
    executor target or callback — blocking there is the *point*.
    """

    def __init__(self, path: Path, source_lines: list[str],
                 findings: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings = findings

    def _flag(self, node: ast.AST, message: str) -> None:
        if not _waived(self.lines, node):
            self.findings.append(f"{self.path}:{node.lineno}: {message}")

    # -- nested scopes -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # sync helper inside a coroutine: allowed to block

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        for child in node.body:
            self.visit(child)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = func.value
            if (
                isinstance(owner, ast.Name)
                and owner.id == "time"
                and func.attr == "sleep"
            ):
                self._flag(node, "time.sleep() in coroutine "
                                 "(use asyncio.sleep or run_in_executor)")
            elif (
                isinstance(owner, ast.Name)
                and owner.id in _BLOCKING_MODULES
            ):
                self._flag(node, f"{owner.id}.{func.attr}() in coroutine "
                                 "(move to the request executor)")
            elif func.attr in _BLOCKING_SOCKET_ATTRS:
                self._flag(node, f".{func.attr}() in coroutine looks like "
                                 "blocking socket I/O (use the stream "
                                 "reader/writer)")
        elif isinstance(func, ast.Name):
            if func.id == "open":
                self._flag(node, "open() in coroutine "
                                 "(file I/O belongs on the executor)")
            elif func.id == "ServeClient":
                self._flag(node, "synchronous ServeClient built inside a "
                                 "coroutine")
        self.generic_visit(node)


def _scan_module(path: Path, findings: list[str]) -> None:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _BANNED_IMPORTS and not _waived(lines, node):
                    findings.append(
                        f"{path}:{node.lineno}: import of {alias.name} — "
                        "the threading server is gone; serve on asyncio"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module in _BANNED_IMPORTS and not _waived(lines, node):
                findings.append(
                    f"{path}:{node.lineno}: import from {node.module} — "
                    "the threading server is gone; serve on asyncio"
                )
        elif isinstance(node, ast.AsyncFunctionDef):
            scanner = _CoroutineScanner(path, lines, findings)
            for child in node.body:
                scanner.visit(child)


def main() -> int:
    if not SERVE_DIR.is_dir():
        print(f"serve package not found at {SERVE_DIR}", file=sys.stderr)
        return 2
    findings: list[str] = []
    for path in sorted(SERVE_DIR.rglob("*.py")):
        _scan_module(path, findings)
    if findings:
        print(f"{len(findings)} blocking-call finding(s) in async serving "
              "code:", file=sys.stderr)
        for finding in findings:
            print(f"  {finding}", file=sys.stderr)
        return 1
    print(f"async-blocking check clean: {SERVE_DIR.relative_to(Path.cwd())}"
          if SERVE_DIR.is_relative_to(Path.cwd()) else
          f"async-blocking check clean: {SERVE_DIR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
