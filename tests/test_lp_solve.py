"""Unit tests for the LP relaxation solver (repro.lp.solve)."""

import pytest

from repro.core import Instance
from repro.instances import lp_gap, random_active_time_instance
from repro.lp import solve_active_time_exact, solve_active_time_lp


class TestOptimality:
    def test_lp_lower_bounds_ip(self, rng):
        for _ in range(10):
            inst = random_active_time_instance(6, 8, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                exact = solve_active_time_exact(inst, g)
            except RuntimeError:
                continue
            lp = solve_active_time_lp(inst, g)
            assert lp.objective <= exact.objective + 1e-6

    def test_lp_gap_gadget_value(self):
        for g in (2, 3, 5):
            gad = lp_gap(g)
            lp = solve_active_time_lp(gad.instance, g)
            assert lp.objective == pytest.approx(gad.facts["lp_opt"], abs=1e-6)

    def test_single_job(self):
        inst = Instance.from_tuples([(0, 4, 2)])
        lp = solve_active_time_lp(inst, 1)
        assert lp.objective == pytest.approx(2.0)

    def test_empty_instance(self):
        lp = solve_active_time_lp(Instance(tuple()), 1)
        assert lp.objective == 0.0

    def test_infeasible_raises(self):
        # 2 unit jobs in a single slot with g = 1
        inst = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        with pytest.raises(RuntimeError):
            solve_active_time_lp(inst, 1)


class TestSolutionStructure:
    def test_y_indexing_one_based(self, tiny_instance):
        lp = solve_active_time_lp(tiny_instance, 2)
        assert len(lp.y) == tiny_instance.horizon + 1
        assert lp.y[0] == 0.0

    def test_objective_equals_y_sum(self, tiny_instance):
        lp = solve_active_time_lp(tiny_instance, 2)
        assert lp.objective == pytest.approx(float(lp.y[1:].sum()), abs=1e-6)

    def test_x_within_windows(self, tiny_instance):
        lp = solve_active_time_lp(tiny_instance, 2)
        for (jid, t), v in lp.x.items():
            assert tiny_instance.job_by_id(jid).is_live_in_slot(t)
            assert -1e-9 <= v <= 1.0 + 1e-9

    def test_coverage_constraints_met(self, tiny_instance):
        lp = solve_active_time_lp(tiny_instance, 2)
        for job in tiny_instance.jobs:
            mass = sum(v for (jid, t), v in lp.x.items() if jid == job.id)
            assert mass >= job.length - 1e-6

    def test_slot_load_bounded(self, tiny_instance):
        lp = solve_active_time_lp(tiny_instance, 2)
        for t in range(1, tiny_instance.horizon + 1):
            assert lp.slot_load(t) <= 2 * lp.y[t] + 1e-6

    def test_open_slots(self, tiny_instance):
        lp = solve_active_time_lp(tiny_instance, 2)
        opened = lp.open_slots()
        assert opened == sorted(opened)
        for t in opened:
            assert lp.y[t] > 0


class TestDeadlineBookkeeping:
    def test_distinct_deadlines(self, tiny_instance):
        lp = solve_active_time_lp(tiny_instance, 2)
        assert lp.distinct_deadlines() == [4, 5, 6]

    def test_blocks_partition_up_to_last_deadline(self, tiny_instance):
        lp = solve_active_time_lp(tiny_instance, 2)
        blocks = lp.deadline_blocks()
        assert blocks[-1][1] == 6
        for (a1, b1), (a2, b2) in zip(blocks, blocks[1:]):
            assert a2 == b1 + 1

    def test_block_masses_sum_to_objective(self, rng):
        for _ in range(8):
            inst = random_active_time_instance(5, 8, rng=rng)
            try:
                lp = solve_active_time_lp(inst, 2)
            except RuntimeError:
                continue
            assert sum(lp.block_masses()) == pytest.approx(
                lp.objective, abs=1e-6
            )

    def test_blocks_cover_all_open_slots(self, rng):
        for _ in range(8):
            inst = random_active_time_instance(5, 8, rng=rng)
            try:
                lp = solve_active_time_lp(inst, 2)
            except RuntimeError:
                continue
            blocks = lp.deadline_blocks()
            lo = blocks[0][0]
            for t in lp.open_slots():
                assert t >= lo
