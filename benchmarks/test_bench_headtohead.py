"""E13 — head-to-head synthesis: every busy-time algorithm on every family.

Not a single paper figure but the summary the paper's results imply: across
instance families and capacities, the cost ordering of the proven guarantees
(2-approx <= 3-approx <= 4-approx, all >= the profile bound) should be
visible in aggregate, and no algorithm may ever breach its own bound.
"""

import pytest

from repro.busytime import (
    best_lower_bound,
    chain_peeling_two_approx,
    first_fit,
    greedy_tracking,
    kumar_rudra,
)
from repro.instances import (
    random_clique_instance,
    random_interval_instance,
    random_laminar_instance,
    random_proper_instance,
)

ALGOS = {
    "first_fit(4x)": (first_fit, 4.0),
    "greedy_tracking(3x)": (greedy_tracking, 3.0),
    "chain_peeling(2x)": (chain_peeling_two_approx, 2.0),
    "kumar_rudra(2x)": (kumar_rudra, 2.0),
}

FAMILIES = {
    "uniform": lambda rng: random_interval_instance(20, 30.0, rng=rng),
    "proper": lambda rng: random_proper_instance(20, 30.0, rng=rng),
    "clique": lambda rng: random_clique_instance(20, 30.0, rng=rng),
    "laminar": lambda rng: random_laminar_instance(3, 2, rng=rng),
}


def test_headtohead_matrix(rng, emit):
    rows = []
    for fam_name, factory in FAMILIES.items():
        for g in (2, 4):
            means = {}
            worsts = {}
            for _ in range(8):
                inst = factory(rng)
                lb = best_lower_bound(inst, g)
                for algo_name, (fn, bound) in ALGOS.items():
                    s = fn(inst, g)
                    ratio = s.total_busy_time / lb
                    means[algo_name] = means.get(algo_name, 0.0) + ratio / 8
                    worsts[algo_name] = max(
                        worsts.get(algo_name, 0.0), ratio
                    )
                    assert ratio <= bound + 1e-9, (fam_name, g, algo_name)
            rows.append(
                [f"{fam_name}, g={g}"]
                + [round(means[a], 3) for a in ALGOS]
            )
    emit(
        "E13 — mean cost / profile bound per family (columns = algorithms)",
        ["family"] + list(ALGOS),
        rows,
    )


def test_clique_instances_near_optimal(rng):
    """On clique instances (footnote 1 regime) all algorithms do well:
    every job crosses one point so the profile bound is strong."""
    for _ in range(5):
        inst = random_clique_instance(15, 25.0, rng=rng)
        lb = best_lower_bound(inst, 3)
        for fn, bound in ALGOS.values():
            assert fn(inst, 3).total_busy_time <= bound * lb + 1e-9


@pytest.mark.parametrize("algo_name", sorted(ALGOS))
def test_algorithm_runtime_uniform_family(benchmark, rng, algo_name):
    inst = random_interval_instance(40, 60.0, rng=rng)
    fn, _ = ALGOS[algo_name]
    s = benchmark(fn, inst, 3)
    assert s.is_valid()
