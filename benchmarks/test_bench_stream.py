"""E19 (engineering) — wave vs stream time-to-first-result.

Not a paper claim: measures what incremental streaming buys the serving
path.  ``BatchRunner.run`` delivers nothing until the whole batch is
done (the old per-wave serving model); ``run_stream`` yields each
result as soon as it and its predecessors land, so time-to-first-result
drops from the slowest-task-bound batch makespan to roughly one task's
latency.
"""

import multiprocessing
import time

import pytest

from repro.core import Instance
from repro.engine import BatchRunner, make_task
from repro.engine.registry import REGISTRY, SolveOutcome, SolverSpec

_SLEEP = 0.3
_TASKS = 4
_JOBS = 2

_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="registers a solver that only fork-children inherit",
)


def _paced_solver(instance, g, **params):
    time.sleep(_SLEEP)
    return SolveOutcome(objective=float(g))


@pytest.fixture
def paced_solver():
    name = "paced-bench-stream"
    if ("active", name) not in REGISTRY:
        REGISTRY.register(
            SolverSpec(
                problem="active",
                name=name,
                solve=_paced_solver,
                exact=False,
                guarantee="-",
                complexity="-",
                description="fixed-latency solver (benchmark only)",
            )
        )
    yield name
    REGISTRY._specs.pop(("active", name), None)


def _tasks(paced_solver):
    instances = [
        Instance.from_tuples([(0, 4 + i, 2), (1, 5 + i, 3)])
        for i in range(_TASKS)
    ]
    return [
        make_task(index=i, problem="active", algorithm=paced_solver, g=2,
                  instance=inst)
        for i, inst in enumerate(instances)
    ]


@_FORK_ONLY
def test_stream_beats_wave_time_to_first_result(paced_solver, emit):
    tasks = _tasks(paced_solver)

    with BatchRunner(jobs=_JOBS) as runner:
        start = time.perf_counter()
        results = runner.run(tasks)
        wave_ttfr = time.perf_counter() - start  # nothing before run() ends
        wave_total = wave_ttfr
    assert all(r.ok for r in results)

    with BatchRunner(jobs=_JOBS) as runner:
        start = time.perf_counter()
        stream_ttfr = stream_total = None
        for result in runner.run_stream(tasks):
            assert result.ok
            if stream_ttfr is None:
                stream_ttfr = time.perf_counter() - start
        stream_total = time.perf_counter() - start

    emit(
        f"wave vs stream ({_TASKS} tasks x {_SLEEP:.1f}s, jobs={_JOBS})",
        ["mode", "first result (s)", "all results (s)"],
        [
            ["run (wave)", f"{wave_ttfr:.3f}", f"{wave_total:.3f}"],
            ["run_stream", f"{stream_ttfr:.3f}", f"{stream_total:.3f}"],
        ],
    )
    # The batch makespan is ~2 rounds of sleeps; the first stream yield
    # lands after ~1 sleep.  Margins are loose for CI noise.
    assert stream_ttfr < wave_ttfr
    assert stream_ttfr < _SLEEP * 1.8, stream_ttfr
    assert wave_ttfr >= _SLEEP * 1.8, wave_ttfr
