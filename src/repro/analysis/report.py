"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows the paper's figures assert
(claimed ratio vs measured ratio per parameter value); these helpers keep
that output uniform and terminal-friendly.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned monospace table with a title rule."""
    cells = [list(map(_fmt, header))] + [list(map(_fmt, r)) for r in rows]
    widths = [max(len(row[c]) for row in cells) for c in range(len(header))]
    lines = [title, "=" * len(title)]
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    title: str,
    xlabel: str,
    ylabel: str,
    points: Sequence[tuple[object, object]],
) -> str:
    """Render an (x, y) series as a two-column table."""
    return format_table(title, [xlabel, ylabel], [list(p) for p in points])


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
