"""Tests for the random instance generators."""

import numpy as np
import pytest

from repro.instances import (
    random_active_time_instance,
    random_clique_instance,
    random_flexible_instance,
    random_interval_instance,
    random_laminar_instance,
    random_proper_instance,
    random_unit_instance,
    tight_window_instance,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda r: random_active_time_instance(8, 12, rng=r),
            lambda r: random_unit_instance(8, 10, rng=r),
            lambda r: random_interval_instance(8, 15.0, rng=r),
            lambda r: random_flexible_instance(8, 12, rng=r),
            lambda r: random_proper_instance(8, 15.0, rng=r),
            lambda r: random_clique_instance(8, 15.0, rng=r),
        ],
    )
    def test_seed_reproducible(self, factory):
        a = factory(np.random.default_rng(5))
        b = factory(np.random.default_rng(5))
        assert a == b

    def test_int_seed_accepted(self):
        a = random_interval_instance(5, 10.0, rng=3)
        b = random_interval_instance(5, 10.0, rng=3)
        assert a == b


class TestShapes:
    def test_active_time_integral_and_within_horizon(self, rng):
        inst = random_active_time_instance(20, 15, rng=rng)
        assert inst.is_integral
        assert inst.n == 20
        assert inst.latest_deadline <= 15
        assert inst.earliest_release >= 0

    def test_unit_instance(self, rng):
        inst = random_unit_instance(15, 10, rng=rng)
        assert inst.all_unit
        assert inst.is_integral

    def test_interval_instance(self, rng):
        inst = random_interval_instance(15, 20.0, rng=rng)
        assert inst.all_interval

    def test_interval_integral_flag(self, rng):
        inst = random_interval_instance(10, 20.0, integral=True, rng=rng)
        assert inst.all_interval and inst.is_integral

    def test_flexible_has_slack(self, rng):
        inst = random_flexible_instance(15, 20, rng=rng)
        assert any(not j.is_interval for j in inst.jobs)

    def test_proper(self, rng):
        inst = random_proper_instance(12, 20.0, rng=rng)
        assert inst.all_interval
        assert inst.is_proper()

    def test_clique(self, rng):
        inst = random_clique_instance(12, 20.0, rng=rng)
        assert inst.all_interval
        assert inst.is_clique()

    def test_laminar(self, rng):
        inst = random_laminar_instance(3, 2, rng=rng)
        assert inst.all_interval
        assert inst.is_laminar()

    def test_tight_window(self, rng):
        inst = tight_window_instance(10, 3, rng=rng)
        assert inst.n == 10
        assert inst.all_unit
        for j in inst.jobs:
            assert j.window_length == 2
