"""Packaging for the ChangKM14 active/busy-time scheduling reproduction."""

from setuptools import find_packages, setup

setup(
    name="repro-changkm14",
    version="0.2.0",
    description=(
        "Reproduction of Chang-Khuller-Mukherjee (SPAA 2014): active-time "
        "and busy-time scheduling algorithms with a parallel batch engine"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.23",
        "scipy>=1.9",
    ],
    extras_require={
        "test": ["pytest", "hypothesis"],
        "viz": ["matplotlib"],
        "mip": ["mip>=1.14"],
        "highs": ["highspy>=1.7"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Mathematics",
    ],
)
