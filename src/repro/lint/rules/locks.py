"""REP003 — lock discipline inside classes.

Two checks, both born from the serving tier's counter races (the
``last_cache_hits`` cross-stream race fixed in PR 7, the ``/batch``
counter drift fixed in PR 5):

1. Attributes whose name ends in ``lock`` must guard state via ``with``
   — explicit ``.acquire()`` / ``.release()`` pairs leak on exceptions
   and defeat the reader's ability to see the guarded region.
2. A field written under a lock in one method of a class must not be
   read lock-free in *another* method of the same class: either the
   lock is unnecessary, or the read is a data race.  Writes in
   ``__init__`` (construction is single-threaded) and reads in dunder
   helpers (``__repr__`` & co.) are exempt.

The analysis is lexical and per-class: a ``with self.<...>lock:`` block
marks every read/write inside it as guarded.  Cross-object aliasing and
reads that are deliberately racy (monotonic counters polled for
reporting) can be waived with ``# lint: waive[REP003] <reason>``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..base import Finding, ModuleContext, Rule, register

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Methods whose lock-free reads are accepted: construction and
#: debug/teardown surfaces that run single-threaded by convention.
_EXEMPT_READERS = {
    "__init__", "__repr__", "__str__", "__del__", "__post_init__",
}


def _is_lock_name(name: str) -> bool:
    return name.endswith("lock")


def _lockish_expr(expr: ast.AST) -> bool:
    """Whether a ``with`` context expression names a lock."""
    if isinstance(expr, ast.Attribute):
        return _is_lock_name(expr.attr)
    if isinstance(expr, ast.Name):
        return _is_lock_name(expr.id)
    return False


class _MethodScanner(ast.NodeVisitor):
    """Collect self-field accesses of one method, tagged guarded or not."""

    def __init__(self) -> None:
        self.guard_depth = 0
        #: (field, guarded, lineno) per read / write of ``self.<field>``
        self.reads: List[Tuple[str, bool, int]] = []
        self.writes: List[Tuple[str, bool, int]] = []
        self.acquire_calls: List[Tuple[str, int]] = []

    def visit_With(self, node: ast.With) -> None:
        lockish = any(_lockish_expr(item.context_expr)
                      for item in node.items)
        for item in node.items:
            self.visit(item)
        if lockish:
            self.guard_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if lockish:
            self.guard_depth -= 1

    visit_AsyncWith = visit_With

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are their own scope

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("acquire", "release")
            and _lockish_expr(func.value)
        ):
            self.acquire_calls.append((func.attr, node.lineno))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            guarded = self.guard_depth > 0
            if isinstance(node.ctx, ast.Store):
                self.writes.append((node.attr, guarded, node.lineno))
            elif isinstance(node.ctx, ast.Load):
                self.reads.append((node.attr, guarded, node.lineno))
        self.generic_visit(node)


@register
class LockDisciplineRule(Rule):
    __doc__ = __doc__

    id = "REP003"
    title = "lock misuse: non-with acquire, or lock-free read of guarded state"

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            scans: Dict[str, _MethodScanner] = {}
            for item in cls.body:
                if isinstance(item, _FuncDef):
                    scanner = _MethodScanner()
                    for stmt in item.body:
                        scanner.visit(stmt)
                    scans[item.name] = scanner

            # 1. with-only lock usage
            for method, scan in scans.items():
                for verb, lineno in scan.acquire_calls:
                    findings.append(module.finding(
                        "REP003", lineno,
                        f"{cls.name}.{method} calls .{verb}() on a lock; "
                        "guard state with `with` instead",
                    ))

            # 2. guarded-write / lock-free-read pairs
            guarded_writers: Dict[str, Set[str]] = {}
            for method, scan in scans.items():
                if method == "__init__":
                    continue
                for field, guarded, _ in scan.writes:
                    if guarded:
                        guarded_writers.setdefault(field, set()).add(method)
            for method, scan in scans.items():
                if method in _EXEMPT_READERS:
                    continue
                for field, guarded, lineno in scan.reads:
                    writers = guarded_writers.get(field)
                    if not writers or guarded or method in writers:
                        continue
                    findings.append(module.finding(
                        "REP003", lineno,
                        f"{cls.name}.{method} reads self.{field} without "
                        "the lock that guards its writes in "
                        f"{', '.join(sorted(writers))}",
                    ))
        return iter(findings)
