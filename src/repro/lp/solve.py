"""Solving the active-time LP relaxation (``LP1`` of Section 3).

A thin translator: the sparse model from :mod:`repro.lp.model` is emitted
as a backend-neutral IR, routed through :func:`repro.solvers.solve_ir`
(scipy-HiGHS by default, any registered backend via ``backend=``), and the
raw solution vector is post-processed into the quantities the rounding
algorithm consumes: the fractional slot openings ``y_t``, the fractional
assignments ``x_{t,j}``, and the per-deadline masses ``Y_i`` (Definition 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.jobs import Instance
from ..solvers import SolverBackend, solve_ir
from .model import ActiveTimeModel, build_active_time_model

__all__ = ["ActiveTimeLPSolution", "solve_active_time_lp"]

#: Values of ``y_t`` below this are treated as closed slots; the paper's
#: classification (barely/half/fully open) is insensitive at this resolution.
Y_TOL = 1e-9


@dataclass
class ActiveTimeLPSolution:
    """An optimal fractional solution of ``LP1``.

    Attributes
    ----------
    model:
        The LP model that was solved (carries the instance and capacity).
    objective:
        Optimal LP value ``sum_t y_t`` — a lower bound on integral OPT.
    y:
        Array of length ``T + 1``: ``y[t]`` is the opening of slot ``t``
        (index 0 unused, slots are 1-based as in the paper).
    x:
        Fractional assignment ``(job_id, slot) -> value`` (zeros omitted).
    """

    model: ActiveTimeModel
    objective: float
    y: np.ndarray
    x: dict[tuple[int, int], float]

    # ------------------------------------------------------------------
    @property
    def instance(self) -> Instance:
        """The scheduled instance."""
        return self.model.instance

    @property
    def g(self) -> int:
        """Machine capacity."""
        return self.model.g

    @property
    def T(self) -> int:
        """Number of slots."""
        return self.model.T

    def open_slots(self) -> list[int]:
        """Slots with ``y_t > 0`` in increasing order."""
        return [t for t in range(1, self.T + 1) if self.y[t] > Y_TOL]

    def slot_load(self, t: int) -> float:
        """Total fractional mass assigned to slot ``t``."""
        return sum(v for (jid, s), v in self.x.items() if s == t)

    # ------------------------------------------------------------------
    # Deadline bookkeeping (Section 3.1)
    # ------------------------------------------------------------------
    def distinct_deadlines(self) -> list[int]:
        """The sorted distinct deadlines ``t_{d_1} < ... < t_{d_l}``."""
        return sorted({j.integral_window()[1] for j in self.instance.jobs})

    def deadline_blocks(self) -> list[tuple[int, int]]:
        """Half-open slot ranges ``(t_{d_{i-1}} + 1, t_{d_i})`` per deadline.

        The dummy deadline ``t_{d_0}`` is the slot *before* the earliest slot
        with ``y_t > 0`` (so every open slot belongs to some block), clamped
        to at least 0.
        """
        deadlines = self.distinct_deadlines()
        opened = self.open_slots()
        start = (opened[0] - 1) if opened else 0
        blocks: list[tuple[int, int]] = []
        prev = min(start, deadlines[0] - 1) if deadlines else start
        for d in deadlines:
            blocks.append((prev + 1, d))
            prev = d
        return blocks

    def block_masses(self) -> list[float]:
        """``Y_i = sum of y_t over block i`` (Definition 6)."""
        return [
            float(self.y[a : b + 1].sum()) for a, b in self.deadline_blocks()
        ]


def solve_active_time_lp(
    instance: Instance,
    g: int,
    *,
    model: ActiveTimeModel | None = None,
    backend: str | SolverBackend | None = None,
) -> ActiveTimeLPSolution:
    """Solve ``LP1`` to optimality and package the solution.

    Parameters
    ----------
    model:
        A pre-built constraint system (assembled internally when omitted).
    backend:
        Solver backend name or instance (default: registry resolution —
        ``REPRO_LP_BACKEND`` env var, then ``scipy-highs``).

    Raises
    ------
    RuntimeError
        If the LP is infeasible — i.e. the instance itself cannot be
        scheduled even with every slot open (for example, more than ``g``
        unit jobs sharing a single-slot window) — or the backend fails.
    """
    if model is None:
        model = build_active_time_model(instance, g)
    if model.num_vars == model.T == 0:
        return ActiveTimeLPSolution(
            model=model, objective=0.0, y=np.zeros(1), x={}
        )

    result = solve_ir(model.to_linear_program(), backend=backend)
    if result.status == "infeasible":
        raise RuntimeError(
            f"LP1 could not be solved ({result.backend}: infeasible); "
            f"the instance is infeasible for capacity g={g}"
        )
    result.require_optimal("LP1")
    y, x = model.extract(result.x)
    return ActiveTimeLPSolution(
        model=model, objective=float(result.objective), y=y, x=x
    )
