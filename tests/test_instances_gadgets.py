"""Tests asserting every paper-gadget closed form against the solvers."""

import pytest

from repro.activetime import exact_active_time, round_active_time
from repro.busytime import (
    BusyTimeSchedule,
    compute_demand_profile,
    exact_busy_time_interval,
    pin_instance,
    schedule_flexible,
)
from repro.instances import (
    figure1,
    figure3,
    figure6,
    figure8,
    figure9,
    figure10,
    lp_gap,
)
from repro.lp import solve_active_time_lp


class TestFigure1:
    def test_instance_shape(self):
        gad = figure1()
        assert gad.instance.n == 7
        assert gad.instance.all_interval
        assert gad.g == 3

    def test_optimal_value(self):
        gad = figure1()
        s = exact_busy_time_interval(gad.instance, gad.g)
        assert s.total_busy_time == pytest.approx(gad.facts["opt_busy_time"])

    def test_witness_bundles_feasible_and_optimal(self):
        gad = figure1()
        groups = [
            [gad.instance.job_by_id(j) for j in b]
            for b in gad.witness["bundles"]
        ]
        s = BusyTimeSchedule.from_bundle_jobs(gad.instance, gad.g, groups)
        s.verify()
        assert s.total_busy_time == pytest.approx(gad.facts["opt_busy_time"])
        assert s.num_machines == gad.facts["min_machines"]


class TestFigure3:
    @pytest.mark.parametrize("g", [3, 4, 5])
    def test_job_census(self, g):
        gad = figure3(g)
        labels = [j.label for j in gad.instance.jobs]
        assert labels.count("long") == 2
        assert labels.count("rigid") == g - 2
        assert labels.count("unitA") == g - 2
        assert labels.count("unitB") == g - 2

    @pytest.mark.parametrize("g", [3, 4, 5])
    def test_opt_equals_g(self, g):
        gad = figure3(g)
        assert exact_active_time(gad.instance, g).cost == g

    @pytest.mark.parametrize("g", [3, 4, 5])
    def test_adversarial_slots(self, g):
        from repro.flow import is_feasible_slot_set

        gad = figure3(g)
        slots = gad.witness["adversarial_slots"]
        assert len(slots) == 3 * g - 2
        assert is_feasible_slot_set(gad.instance, g, slots)

    def test_requires_g_at_least_3(self):
        with pytest.raises(ValueError):
            figure3(2)

    def test_rounding_still_within_2(self):
        gad = figure3(4)
        sol = round_active_time(gad.instance, 4, strict=True)
        assert sol.cost <= 2 * gad.facts["opt_active_time"]


class TestLpGap:
    @pytest.mark.parametrize("g", [1, 2, 3, 5])
    def test_closed_forms(self, g):
        gad = lp_gap(g)
        lp = solve_active_time_lp(gad.instance, g)
        assert lp.objective == pytest.approx(gad.facts["lp_opt"], abs=1e-6)
        assert exact_active_time(gad.instance, g).cost == gad.facts["ip_opt"]

    def test_gap_monotone_to_2(self):
        gaps = [lp_gap(g).facts["ip_opt"] / lp_gap(g).facts["lp_opt"]
                for g in (1, 2, 4, 8, 16)]
        assert gaps == sorted(gaps)
        assert gaps[-1] > 1.8

    def test_rejects_bad_g(self):
        with pytest.raises(ValueError):
            lp_gap(0)


class TestFigure6:
    def test_shape(self):
        g = 3
        gad = figure6(g, eps=0.1)
        assert gad.instance.n == 2 * g * g + 2 * g
        flex = [j for j in gad.instance.jobs if j.label == "flex"]
        assert len(flex) == 2 * g
        assert all(not j.is_interval for j in flex)

    def test_adversarial_starts_valid(self):
        gad = figure6(3, eps=0.1)
        pinned = pin_instance(gad.instance, gad.witness["adversarial_starts"])
        assert pinned.all_interval

    def test_adversarial_flex_overlaps_whole_block(self):
        g, eps = 3, 0.1
        gad = figure6(g, eps=eps)
        pinned = pin_instance(gad.instance, gad.witness["adversarial_starts"])
        for idx, fid in enumerate(gad.witness["flex_ids"]):
            block = idx // 2
            flex = pinned.job_by_id(fid)
            for j in pinned.jobs:
                if j.label in (f"A{block}", f"B{block}"):
                    lo = max(flex.release, j.release)
                    hi = min(flex.deadline, j.deadline)
                    assert hi - lo > 1e-9  # genuinely overlaps

    def test_optimal_placement_cost(self):
        g, eps = 3, 0.1
        gad = figure6(g, eps=eps)
        s = schedule_flexible(
            gad.instance, g, starts=gad.witness["optimal_starts"]
        )
        s.verify()
        # with the paper's placement, GREEDYTRACKING recovers the optimum
        assert s.total_busy_time == pytest.approx(
            gad.facts["opt_busy_time"], abs=1e-6
        )

    def test_adversarial_at_least_optimal(self):
        g = 3
        gad = figure6(g, eps=0.1)
        adv = schedule_flexible(
            gad.instance, g, starts=gad.witness["adversarial_starts"]
        )
        adv.verify()
        assert adv.total_busy_time >= gad.facts["opt_busy_time"] - 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            figure6(0)
        with pytest.raises(ValueError):
            figure6(3, eps=0.9)


class TestFigure8:
    def test_closed_forms(self):
        gad = figure8(eps=0.2, eps_prime=0.1)
        opt = exact_busy_time_interval(gad.instance, gad.g)
        assert opt.total_busy_time == pytest.approx(gad.facts["opt_busy_time"])

    def test_profile_equals_opt_here(self):
        gad = figure8(eps=0.2, eps_prime=0.1)
        profile = compute_demand_profile(gad.instance, gad.g)
        assert profile.cost == pytest.approx(gad.facts["opt_busy_time"])

    def test_adversarial_bundles_feasible(self):
        gad = figure8(eps=0.2, eps_prime=0.1)
        groups = [
            [gad.instance.job_by_id(j) for j in b]
            for b in gad.witness["adversarial_bundles"]
        ]
        s = BusyTimeSchedule.from_bundle_jobs(gad.instance, gad.g, groups)
        s.verify()

    def test_validation(self):
        with pytest.raises(ValueError):
            figure8(eps=0.1, eps_prime=0.2)


class TestFigure9:
    @pytest.mark.parametrize("g", [2, 3, 4])
    def test_profile_closed_forms(self, g):
        gad = figure9(g, eps=0.01)
        adv = pin_instance(gad.instance, gad.witness["adversarial_starts"])
        opt = pin_instance(gad.instance, gad.witness["optimal_starts"])
        assert compute_demand_profile(adv, g).cost == pytest.approx(
            gad.facts["dp_profile"], abs=1e-6
        )
        assert compute_demand_profile(opt, g).cost == pytest.approx(
            gad.facts["optimal_profile"], abs=1e-6
        )

    def test_ratio_grows_toward_2(self):
        ratios = []
        for g in (2, 4, 8):
            gad = figure9(g, eps=0.001)
            ratios.append(gad.facts["dp_profile"] / gad.facts["optimal_profile"])
        assert ratios == sorted(ratios)
        assert ratios[-1] > 1.85

    def test_lemma7_bound(self):
        """DP profile <= 2 x optimal-placement profile (Lemma 7)."""
        for g in (2, 3, 5):
            gad = figure9(g)
            assert gad.facts["dp_profile"] <= 2 * gad.facts["optimal_profile"]

    def test_validation(self):
        with pytest.raises(ValueError):
            figure9(1)


class TestFigure10:
    def test_shape(self):
        g = 3
        gad = figure10(g)
        flex = [j for j in gad.instance.jobs if j.label.startswith("flex")]
        assert len(flex) == g - 1

    def test_optimal_placement_cost(self):
        g, eps = 3, 0.05
        gad = figure10(g, eps=eps)
        s = schedule_flexible(
            gad.instance, g, starts=gad.witness["optimal_starts"],
            algorithm="greedy_tracking",
        )
        s.verify()
        assert s.total_busy_time <= gad.facts["opt_busy_time"] + 1e-6

    def test_adversarial_within_4x(self):
        g = 3
        gad = figure10(g)
        for name in ("chain_peeling", "kumar_rudra"):
            s = schedule_flexible(
                gad.instance, g,
                starts=gad.witness["adversarial_starts"], algorithm=name,
            )
            s.verify()
            assert s.total_busy_time <= 4 * gad.facts["opt_busy_time"] + 1e-6

    def test_adversarial_claim_dominates_opt(self):
        for g in (2, 3, 5):
            gad = figure10(g)
            assert gad.facts["adversarial_cost"] > gad.facts["opt_busy_time"]

    def test_validation(self):
        with pytest.raises(ValueError):
            figure10(1)
        with pytest.raises(ValueError):
            figure10(3, eps=0.1, eps_prime=0.2)
