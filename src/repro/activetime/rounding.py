"""The 2-approximate LP-rounding algorithm for active time (Sections 3.2–3.4).

Pipeline (Theorem 2):

1. solve ``LP1`` to optimality (:mod:`repro.lp.solve`);
2. right-shift the solution within each deadline block (Section 3.1);
3. sweep the distinct deadlines ``t_{d_1} < ... < t_{d_l}`` left to right.
   For block ``i`` with mass ``Y_i`` (merged with any carried *proxy*):

   * open the top ``floor(Y_i)`` slots of the block — they are fully open in
     the right-shifted solution;
   * if the fractional remainder is at least 1/2 (*half open*), open its slot
     integrally (it charges itself, factor <= 2);
   * if the remainder is positive but below 1/2 (*barely open*), first try to
     **close** it: probe, via the Figure-2 max-flow network, whether every job
     with deadline up to ``t_{d_i}`` fits in the slots opened so far.  On
     success, carry the remainder forward as a *proxy* (a safety deposit
     pointing at the closed slot); on failure, open the slot and charge it to
     an earlier slot as a dependent / trio / filler
     (:mod:`repro.activetime.charging`);

4. recover an integral assignment on the opened slots with one max-flow.

Invariants maintained per iteration (Lemmas 5 and 6): the prefix of jobs is
feasible in the opened slots, and the number of opened slots is at most twice
the LP mass seen so far.  Both are checked at runtime; violations raise in
``strict`` mode and are recorded otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.jobs import Instance
from ..core.validation import require_capacity, require_integral
from ..flow.feasibility import ActiveTimeFeasibility
from ..lp.solve import ActiveTimeLPSolution, solve_active_time_lp
from .charging import ChargeRecord, ChargingError, ChargingLedger
from .rightshift import RightShiftedSolution, right_shift, snap
from .schedule import ActiveTimeSchedule, schedule_from_slots

__all__ = ["RoundedSolution", "IterationRecord", "round_active_time"]


@dataclass(frozen=True)
class IterationRecord:
    """Trace of one deadline iteration (useful for debugging and figures)."""

    index: int
    block: tuple[int, int]
    mass: float
    proxy_in: Optional[tuple[int, float]]
    opened_full: tuple[int, ...]
    action: str  # "none" | "half" | "carry" | "charged"
    frac_slot: Optional[int]
    frac_value: float
    charge: Optional[ChargeRecord]
    proxy_out: Optional[tuple[int, float]]


@dataclass
class RoundedSolution:
    """Output of :func:`round_active_time` with its full audit trail."""

    schedule: ActiveTimeSchedule
    lp: ActiveTimeLPSolution
    shifted: RightShiftedSolution
    iterations: list[IterationRecord]
    ledger: ChargingLedger
    charging_failures: list[str] = field(default_factory=list)
    repair_slots: list[int] = field(default_factory=list)

    @property
    def cost(self) -> int:
        """Number of active slots in the rounded schedule."""
        return self.schedule.cost

    @property
    def lp_objective(self) -> float:
        """Optimal LP value (lower bound on integral OPT)."""
        return self.lp.objective

    @property
    def ratio_vs_lp(self) -> float:
        """``cost / LP`` — Theorem 2 guarantees this is at most 2."""
        if self.lp_objective <= 0:
            return 0.0 if self.cost == 0 else float("inf")
        return self.cost / self.lp_objective

    @property
    def guarantee_holds(self) -> bool:
        """True when the 2-approximation bound is met (it always should be)."""
        return self.cost <= 2.0 * self.lp_objective + 1e-6


def round_active_time(
    instance: Instance,
    g: int,
    *,
    lp: ActiveTimeLPSolution | None = None,
    strict: bool = False,
    backend: str | None = None,
) -> RoundedSolution:
    """Run the Theorem-2 rounding algorithm end to end.

    Parameters
    ----------
    lp:
        A pre-solved optimal LP solution (solved internally when omitted).
    backend:
        LP backend name for the internal ``LP1`` solve (ignored when
        ``lp`` is given); see :mod:`repro.solvers`.
    strict:
        When True, any violation of the proof's invariants (charging target
        missing, prefix infeasible after opening) raises immediately instead
        of being recorded in the result.

    Raises
    ------
    RuntimeError
        If the instance is LP-infeasible (no schedule exists at capacity
        ``g``), or in ``strict`` mode when an invariant breaks.
    """
    require_integral(instance)
    require_capacity(g)
    if instance.n == 0:
        empty = ActiveTimeSchedule(instance, g, tuple(), {})
        lp0 = lp or solve_active_time_lp(instance, g, backend=backend)
        return RoundedSolution(
            schedule=empty,
            lp=lp0,
            shifted=right_shift(lp0),
            iterations=[],
            ledger=ChargingLedger(),
        )

    if lp is None:
        lp = solve_active_time_lp(instance, g, backend=backend)
    shifted = right_shift(lp)
    blocks = shifted.blocks
    masses = shifted.masses

    ledger = ChargingLedger()
    iterations: list[IterationRecord] = []
    charging_failures: list[str] = []
    opened: set[int] = set()
    proxy: Optional[tuple[int, float]] = None  # (pointer slot, value)

    # Prefix feasibility oracles, one per deadline block, built lazily.
    prefix_oracles: dict[int, ActiveTimeFeasibility] = {}

    def prefix_feasible(i: int, slots: set[int]) -> bool:
        _, b = blocks[i]
        oracle = prefix_oracles.get(i)
        if oracle is None:
            prefix = Instance(
                tuple(
                    j for j in instance.jobs if j.integral_window()[1] <= b
                )
            )
            if prefix.n == 0:
                return True
            oracle = ActiveTimeFeasibility(prefix, g)
            prefix_oracles[i] = oracle
        return oracle.is_feasible(slots)

    for i, ((a, b), y_mass) in enumerate(zip(blocks, masses)):
        proxy_in = proxy
        carried = proxy[1] if proxy is not None else 0.0
        y_eff = snap(y_mass + carried)
        whole = int(y_eff)
        frac = snap(y_eff - whole)
        if frac >= 1.0:  # defensive snap artifact
            whole, frac = whole + 1, 0.0

        # The top `whole` slots of the block open integrally; when the proxy
        # pushes `whole` past the block's own fully-open count, the extra slot
        # is the block's half-open slot absorbed to mass 1 (proxy Case 1).
        newly_full = [b - k for k in range(whole) if b - k >= a]
        if len(newly_full) < whole:
            # Remainder of the mass lives before the block: open the proxy's
            # pointer slot (it is the only earlier closed slot with mass).
            if proxy is not None and proxy[0] not in opened:
                newly_full.append(proxy[0])
        for t in sorted(newly_full):
            if t not in opened:
                opened.add(t)
                ledger.register_full(t)

        action = "none"
        charge: Optional[ChargeRecord] = None
        frac_slot: Optional[int] = None
        proxy_out: Optional[tuple[int, float]] = None

        if frac > 0.0:
            cand = b - whole
            if cand >= a:
                frac_slot = cand
            elif proxy is not None:
                frac_slot = proxy[0]
            else:  # pragma: no cover - unreachable for consistent LP data
                raise RuntimeError(
                    f"block {i} has fractional mass {frac} but no slot for it"
                )
            if frac >= 0.5:
                # half open: open integrally, charges itself (factor <= 2)
                action = "half"
                if frac_slot not in opened:
                    opened.add(frac_slot)
                    ledger.register_half(frac_slot, frac)
            else:
                # barely open: try to close it first
                if prefix_feasible(i, opened):
                    action = "carry"
                    proxy_out = (frac_slot, frac)
                else:
                    action = "charged"
                    opened.add(frac_slot)
                    try:
                        charge = ledger.charge_barely(frac_slot, frac)
                    except ChargingError as exc:
                        if strict:
                            raise
                        charging_failures.append(str(exc))
        proxy = proxy_out

        # Lemma 5 invariant: the job prefix fits into the opened slots.
        if action in ("none", "half", "charged") and not prefix_feasible(
            i, opened
        ):
            msg = (
                f"prefix of jobs with deadline <= {b} infeasible after "
                f"iteration {i} (action={action})"
            )
            if strict:
                raise RuntimeError(msg)
            charging_failures.append(msg)

        iterations.append(
            IterationRecord(
                index=i,
                block=(a, b),
                mass=float(y_mass),
                proxy_in=proxy_in,
                opened_full=tuple(sorted(newly_full)),
                action=action,
                frac_slot=frac_slot,
                frac_value=float(frac),
                charge=charge,
                proxy_out=proxy_out,
            )
        )

    # ------------------------------------------------------------------
    # Final extraction; repair loop is a safety net that theory says is
    # never taken (tests assert repair_slots == []).
    # ------------------------------------------------------------------
    oracle = ActiveTimeFeasibility(instance, g)
    repair_slots: list[int] = []
    if not oracle.is_feasible(opened):
        for t in range(1, instance.horizon + 1):
            if t in opened:
                continue
            opened.add(t)
            repair_slots.append(t)
            if oracle.is_feasible(opened):
                break
        if strict and repair_slots:
            raise RuntimeError(
                f"rounded slot set infeasible; repair opened {repair_slots}"
            )

    schedule = schedule_from_slots(instance, g, opened, oracle=oracle)
    return RoundedSolution(
        schedule=schedule,
        lp=lp,
        shifted=shifted,
        iterations=iterations,
        ledger=ledger,
        charging_failures=charging_failures,
        repair_slots=repair_slots,
    )
