"""Unit tests for the Dinic max-flow solver, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.flow import Dinic, NamedFlowNetwork


class TestConstruction:
    def test_add_edge_returns_even_handles(self):
        net = Dinic(3)
        assert net.add_edge(0, 1, 5) == 0
        assert net.add_edge(1, 2, 5) == 2
        assert net.num_edges == 2

    def test_add_node(self):
        net = Dinic(1)
        assert net.add_node() == 1
        assert net.n == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            Dinic(2).add_edge(0, 5, 1)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            Dinic(2).add_edge(0, 1, -1)

    def test_rejects_negative_node_count(self):
        with pytest.raises(ValueError):
            Dinic(-1)


class TestSimpleFlows:
    def test_single_edge(self):
        net = Dinic(2)
        net.add_edge(0, 1, 7)
        assert net.max_flow(0, 1).value == 7

    def test_series_bottleneck(self):
        net = Dinic(3)
        net.add_edge(0, 1, 10)
        net.add_edge(1, 2, 3)
        assert net.max_flow(0, 2).value == 3

    def test_parallel_paths(self):
        net = Dinic(4)
        net.add_edge(0, 1, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(0, 2, 3)
        net.add_edge(2, 3, 3)
        assert net.max_flow(0, 3).value == 5

    def test_no_path(self):
        net = Dinic(3)
        net.add_edge(0, 1, 5)
        assert net.max_flow(0, 2).value == 0

    def test_source_equals_sink_rejected(self):
        with pytest.raises(ValueError):
            Dinic(2).max_flow(1, 1)

    def test_requires_residual_routing(self):
        # Classic diamond where a greedy path must be partially undone.
        net = Dinic(4)
        net.add_edge(0, 1, 1)
        net.add_edge(0, 2, 1)
        net.add_edge(1, 2, 1)
        net.add_edge(1, 3, 1)
        net.add_edge(2, 3, 1)
        assert net.max_flow(0, 3).value == 2


class TestFlowsOutput:
    def test_edge_flows_conserve(self):
        net = Dinic(4)
        e1 = net.add_edge(0, 1, 4)
        e2 = net.add_edge(1, 2, 2)
        e3 = net.add_edge(1, 3, 2)
        e4 = net.add_edge(2, 3, 2)
        res = net.max_flow(0, 3)
        assert res.value == 4
        assert res.flows[e1] == 4
        assert res.flows[e2] == 2
        assert res.flows[e3] == 2
        assert res.flows[e4] == 2

    def test_flows_within_capacity(self):
        net = Dinic(3)
        e = net.add_edge(0, 1, 5)
        net.add_edge(1, 2, 3)
        res = net.max_flow(0, 2)
        assert 0 <= res.flows[e] <= 5


class TestReuse:
    def test_set_capacity_and_resolve(self):
        net = Dinic(2)
        e = net.add_edge(0, 1, 5)
        assert net.max_flow(0, 1).value == 5
        net.set_capacity(e, 2)
        assert net.max_flow(0, 1).value == 2
        net.set_capacity(e, 9)
        assert net.max_flow(0, 1).value == 9

    def test_set_capacity_rejects_odd_handle(self):
        net = Dinic(2)
        net.add_edge(0, 1, 5)
        with pytest.raises(ValueError):
            net.set_capacity(1, 3)

    def test_capacity_getter(self):
        net = Dinic(2)
        e = net.add_edge(0, 1, 5)
        assert net.capacity(e) == 5


class TestMinCut:
    def test_reachable_side(self):
        net = Dinic(4)
        net.add_edge(0, 1, 10)
        net.add_edge(1, 2, 1)  # bottleneck
        net.add_edge(2, 3, 10)
        net.max_flow(0, 3)
        seen = net.min_cut_reachable(0)
        assert seen[0] and seen[1]
        assert not seen[2] and not seen[3]


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs_match(self, seed, rng):
        n = int(rng.integers(4, 15))
        net = Dinic(n)
        G = nx.DiGraph()
        G.add_nodes_from(range(n))
        m = int(rng.integers(n, 4 * n))
        for _ in range(m):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v:
                continue
            c = int(rng.integers(1, 20))
            net.add_edge(u, v, c)
            if G.has_edge(u, v):
                G[u][v]["capacity"] += c
            else:
                G.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(G, 0, n - 1) if G.number_of_edges() else 0
        assert net.max_flow(0, n - 1).value == expected


class TestNamedNetwork:
    def test_named_nodes(self):
        net = NamedFlowNetwork()
        net.add_edge("s", ("job", 1), 3)
        net.add_edge(("job", 1), "t", 2)
        assert net.max_flow("s", "t").value == 2
        assert net.has_node(("job", 1))
        assert not net.has_node("missing")
        assert len(net) == 3

    def test_set_capacity(self):
        net = NamedFlowNetwork()
        e = net.add_edge("a", "b", 5)
        net.set_capacity(e, 1)
        assert net.max_flow("a", "b").value == 1

    def test_raw_access(self):
        net = NamedFlowNetwork()
        net.add_edge("a", "b", 1)
        assert net.raw.num_edges == 1
