"""Unit tests for the exact MILP oracles (repro.lp.milp)."""

import pytest

from repro.core import Instance
from repro.flow import is_feasible_slot_set
from repro.instances import (
    figure3,
    lp_gap,
    random_active_time_instance,
    random_interval_instance,
)
from repro.lp import (
    solve_active_time_exact,
    solve_busy_time_flexible_exact,
    solve_busy_time_interval_exact,
    solve_unbounded_span_exact,
)


class TestActiveTimeExact:
    def test_tiny_known_value(self, tiny_instance):
        res = solve_active_time_exact(tiny_instance, 2)
        assert res.objective == 3.0
        assert len(res.witness["active_slots"]) == 3

    def test_witness_is_feasible(self, rng):
        for _ in range(8):
            inst = random_active_time_instance(6, 8, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                res = solve_active_time_exact(inst, g)
            except RuntimeError:
                continue
            assert is_feasible_slot_set(inst, g, res.witness["active_slots"])

    def test_figure3_closed_form(self):
        for g in (3, 4, 5):
            gad = figure3(g)
            res = solve_active_time_exact(gad.instance, g)
            assert res.objective == gad.facts["opt_active_time"]

    def test_lp_gap_closed_form(self):
        for g in (2, 3, 4):
            gad = lp_gap(g)
            res = solve_active_time_exact(gad.instance, g)
            assert res.objective == gad.facts["ip_opt"]

    def test_empty(self):
        res = solve_active_time_exact(Instance(tuple()), 1)
        assert res.objective == 0.0

    def test_infeasible_raises(self):
        inst = Instance.from_tuples([(0, 1, 1), (0, 1, 1), (0, 1, 1)])
        with pytest.raises(RuntimeError):
            solve_active_time_exact(inst, 2)

    def test_float_conversion(self, tiny_instance):
        res = solve_active_time_exact(tiny_instance, 2)
        assert float(res) == 3.0


class TestBusyTimeIntervalExact:
    def test_disjoint_jobs_share_machine(self):
        inst = Instance.from_intervals([(0, 1), (2, 3), (4, 5)])
        res = solve_busy_time_interval_exact(inst, 1)
        assert res.objective == pytest.approx(3.0)

    def test_identical_jobs_capacity_split(self):
        inst = Instance.from_intervals([(0, 1)] * 4)
        res = solve_busy_time_interval_exact(inst, 2)
        assert res.objective == pytest.approx(2.0)
        assert len(res.witness["bundles"]) == 2

    def test_bundles_partition_jobs(self, interval_instance):
        res = solve_busy_time_interval_exact(interval_instance, 2)
        ids = sorted(j for b in res.witness["bundles"] for j in b)
        assert ids == sorted(j.id for j in interval_instance.jobs)

    def test_rejects_flexible(self, tiny_instance):
        with pytest.raises(ValueError):
            solve_busy_time_interval_exact(tiny_instance, 2)

    def test_real_valued_lengths(self):
        inst = Instance.from_intervals([(0.0, 1.3), (0.9, 2.1)])
        res = solve_busy_time_interval_exact(inst, 2)
        assert res.objective == pytest.approx(2.1)

    def test_empty(self):
        assert solve_busy_time_interval_exact(Instance(tuple()), 1).objective == 0


class TestUnboundedSpanExact:
    def test_interval_jobs_span(self):
        inst = Instance.from_tuples([(0, 2, 2), (3, 5, 2)])
        res = solve_unbounded_span_exact(inst)
        assert res.objective == pytest.approx(4.0)

    def test_flexible_jobs_consolidate(self):
        # two flexible unit jobs with overlapping windows share one slot
        inst = Instance.from_tuples([(0, 3, 1), (0, 3, 1)])
        res = solve_unbounded_span_exact(inst)
        assert res.objective == pytest.approx(1.0)

    def test_starts_within_windows(self, rng):
        from repro.instances import random_flexible_instance

        for _ in range(6):
            inst = random_flexible_instance(5, 8, rng=rng)
            res = solve_unbounded_span_exact(inst)
            for jid, s in res.witness["starts"].items():
                job = inst.job_by_id(int(jid))
                assert job.can_start_at(s)

    def test_value_is_span_of_placement(self, rng):
        from repro.busytime import pin_instance
        from repro.core import span
        from repro.instances import random_flexible_instance

        for _ in range(6):
            inst = random_flexible_instance(5, 8, rng=rng)
            res = solve_unbounded_span_exact(inst)
            pinned = pin_instance(inst, res.witness["starts"])
            assert span(j.window for j in pinned.jobs) == pytest.approx(
                res.objective, abs=1e-6
            )

    def test_empty(self):
        assert solve_unbounded_span_exact(Instance(tuple())).objective == 0


class TestBusyTimeFlexibleExact:
    def test_matches_interval_exact_on_interval_instance(self, rng):
        for _ in range(4):
            inst = random_interval_instance(4, 8.0, integral=True, rng=rng)
            g = int(rng.integers(1, 3))
            a = solve_busy_time_interval_exact(inst, g)
            b = solve_busy_time_flexible_exact(inst, g)
            assert a.objective == pytest.approx(b.objective, abs=1e-6)

    def test_flexibility_helps(self):
        # two unit jobs, wide windows: flexible can align them, g=2
        inst = Instance.from_tuples([(0, 4, 2), (1, 5, 2)])
        res = solve_busy_time_flexible_exact(inst, 2)
        assert res.objective == pytest.approx(2.0)

    def test_capacity_forces_split_or_stretch(self):
        inst = Instance.from_tuples([(0, 2, 2), (0, 2, 2), (0, 2, 2)])
        res = solve_busy_time_flexible_exact(inst, 2)
        # three rigid-ish jobs, capacity 2: two machines over [0,2)
        assert res.objective == pytest.approx(4.0)

    def test_witness_consistency(self):
        inst = Instance.from_tuples([(0, 4, 2), (1, 5, 2)])
        res = solve_busy_time_flexible_exact(inst, 2)
        assert set(res.witness["starts"]) == {0, 1}
        assert set(res.witness["machines"]) == {0, 1}
