"""Distributed sweep fabric: work-stealing dispatch over serve hosts.

One :class:`RemoteDispatcher` turns many ``repro serve`` hosts into a
single sweep engine with the same streaming, ordered, dedupe-aware
contract as the local :class:`repro.engine.runner.BatchRunner`.
"""

from .dispatcher import (
    FabricStats,
    FabricStream,
    HostStats,
    RemoteDispatcher,
    normalize_hosts,
    task_payload,
)

__all__ = [
    "FabricStats",
    "FabricStream",
    "HostStats",
    "RemoteDispatcher",
    "normalize_hosts",
    "task_payload",
]
