"""Tests for throughput maximization under a busy-time budget."""

import pytest

from repro.busytime import (
    exact_busy_time_interval,
    greedy_throughput,
    maximize_throughput_exact,
)
from repro.core import Instance
from repro.instances import random_interval_instance


class TestExactMaximization:
    def test_zero_budget_admits_nothing(self, interval_instance):
        s = maximize_throughput_exact(interval_instance, 2, 0.0)
        assert s.instance.n == 0
        assert s.total_busy_time == 0.0

    def test_full_budget_admits_all(self, rng):
        for _ in range(6):
            inst = random_interval_instance(6, 10.0, rng=rng)
            g = int(rng.integers(1, 4))
            opt = exact_busy_time_interval(inst, g).total_busy_time
            s = maximize_throughput_exact(inst, g, opt + 1e-6)
            assert s.instance.n == inst.n
            s.verify()

    def test_budget_respected(self, rng):
        for _ in range(6):
            inst = random_interval_instance(7, 12.0, rng=rng)
            g = int(rng.integers(1, 4))
            budget = float(rng.uniform(0.5, 4.0))
            s = maximize_throughput_exact(inst, g, budget)
            s.verify()
            assert s.total_busy_time <= budget + 1e-6

    def test_monotone_in_budget(self, rng):
        inst = random_interval_instance(8, 12.0, rng=rng)
        counts = [
            maximize_throughput_exact(inst, 2, b).instance.n
            for b in (1.0, 2.0, 4.0, 8.0, 100.0)
        ]
        assert counts == sorted(counts)
        assert counts[-1] == inst.n

    def test_negative_budget_rejected(self, interval_instance):
        with pytest.raises(ValueError):
            maximize_throughput_exact(interval_instance, 2, -1.0)

    def test_empty(self):
        s = maximize_throughput_exact(Instance(tuple()), 2, 5.0)
        assert s.instance.n == 0


class TestGreedyThroughput:
    def test_budget_respected(self, rng):
        for _ in range(8):
            inst = random_interval_instance(8, 12.0, rng=rng)
            g = int(rng.integers(1, 4))
            budget = float(rng.uniform(0.5, 5.0))
            s = greedy_throughput(inst, g, budget)
            s.verify()
            assert s.total_busy_time <= budget + 1e-6

    def test_never_beats_exact(self, rng):
        for _ in range(8):
            inst = random_interval_instance(6, 10.0, rng=rng)
            g = int(rng.integers(1, 3))
            budget = float(rng.uniform(1.0, 5.0))
            greedy = greedy_throughput(inst, g, budget)
            exact = maximize_throughput_exact(inst, g, budget)
            assert greedy.instance.n <= exact.instance.n

    def test_large_budget_admits_all(self, rng):
        inst = random_interval_instance(8, 12.0, rng=rng)
        s = greedy_throughput(inst, 2, 1e9)
        assert s.instance.n == inst.n

    def test_zero_budget(self, interval_instance):
        s = greedy_throughput(interval_instance, 2, 0.0)
        assert s.instance.n == 0

    def test_stacking_is_free(self):
        """Identical jobs after the first cost zero increment."""
        inst = Instance.from_intervals([(0, 1)] * 3)
        s = greedy_throughput(inst, 3, 1.0)
        assert s.instance.n == 3
        assert s.total_busy_time == pytest.approx(1.0)
