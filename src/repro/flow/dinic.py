"""Maximum flow via Dinic's algorithm, implemented from scratch.

The active-time algorithms repeatedly answer the question "given a set of
active slots, can all jobs be feasibly assigned?"  The paper reduces this to a
max-flow computation on the bipartite network ``G_feas`` (Figure 2).  Those
feasibility probes dominate the running time of both the minimal-feasible
3-approximation and the LP-rounding 2-approximation, so the solver here is
tuned for repeated solves on small-to-medium networks:

* adjacency is stored in flat ``list`` arrays (edge-struct-of-arrays layout),
* BFS level graph + iterative DFS blocking flow (no recursion limits),
* integer capacities throughout, so the returned flow is integral — the
  property the rounding proof leans on ("by integrality of flow").

Dinic's algorithm runs in ``O(V^2 E)`` in general and ``O(E sqrt(V))`` on unit
bipartite networks, far better than needed at the instance sizes the paper's
experiments require.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

__all__ = ["Dinic", "MaxFlowResult"]


class MaxFlowResult:
    """Outcome of a max-flow computation.

    Attributes
    ----------
    value:
        The maximum flow value.
    flows:
        Flow on each edge, indexed by the handle returned by
        :meth:`Dinic.add_edge`.
    """

    __slots__ = ("value", "flows")

    def __init__(self, value: int, flows: list[int]):
        self.value = value
        self.flows = flows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaxFlowResult(value={self.value})"


class Dinic:
    """A reusable max-flow network.

    Typical usage::

        net = Dinic(n_nodes)
        e = net.add_edge(u, v, capacity)
        result = net.max_flow(source, sink)
        result.flows[e]     # flow routed on that edge

    ``max_flow`` may be called again after :meth:`set_capacity` updates; the
    network resets all flows at the start of each call.
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 0:
            raise ValueError("node count must be non-negative")
        self.n = n_nodes
        # Struct-of-arrays edge store: edge i has endpoint head[i],
        # remaining capacity cap[i]; edge i^1 is its residual twin.
        self._head: list[int] = []
        self._cap: list[int] = []
        self._adj: list[list[int]] = [[] for _ in range(n_nodes)]
        self._orig_cap: list[int] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self) -> int:
        """Append a node, returning its index."""
        self._adj.append([])
        self.n += 1
        return self.n - 1

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed edge ``u -> v``; returns an edge handle.

        The handle indexes :attr:`MaxFlowResult.flows` and is accepted by
        :meth:`set_capacity`.
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise IndexError(f"edge ({u}, {v}) out of range for {self.n} nodes")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        handle = len(self._head)
        self._head.append(v)
        self._cap.append(capacity)
        self._orig_cap.append(capacity)
        self._adj[u].append(handle)
        # residual twin
        self._head.append(u)
        self._cap.append(0)
        self._orig_cap.append(0)
        self._adj[v].append(handle + 1)
        return handle

    def set_capacity(self, handle: int, capacity: int) -> None:
        """Update the capacity of a previously added edge."""
        if handle % 2 != 0:
            raise ValueError("handles refer to forward edges (even indices)")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._orig_cap[handle] = capacity

    def capacity(self, handle: int) -> int:
        """Current configured capacity of an edge."""
        return self._orig_cap[handle]

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def max_flow(self, source: int, sink: int) -> MaxFlowResult:
        """Compute a maximum ``source -> sink`` flow.

        Resets residual capacities from the configured capacities first, so
        repeated calls (after :meth:`set_capacity` updates) are independent.
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        cap = self._cap
        cap[:] = self._orig_cap  # reset flows

        head = self._head
        adj = self._adj
        n = self.n
        level = [-1] * n
        it = [0] * n
        total = 0

        INF = float("inf")

        while True:
            # --- BFS: build level graph -------------------------------
            for i in range(n):
                level[i] = -1
            level[source] = 0
            queue = deque([source])
            while queue:
                u = queue.popleft()
                for e in adj[u]:
                    v = head[e]
                    if cap[e] > 0 and level[v] < 0:
                        level[v] = level[u] + 1
                        queue.append(v)
            if level[sink] < 0:
                break

            # --- DFS: blocking flow (iterative) -----------------------
            for i in range(n):
                it[i] = 0
            while True:
                pushed = self._dfs_push(source, sink, INF, level, it)
                if pushed == 0:
                    break
                total += pushed

        flows = [
            self._orig_cap[e] - cap[e] if e % 2 == 0 else 0
            for e in range(len(cap))
        ]
        return MaxFlowResult(total, flows)

    def _dfs_push(self, source, sink, INF, level, it):
        """One augmenting push along the level graph, iteratively."""
        cap, head, adj = self._cap, self._head, self._adj
        # path of (node, edge) frames
        stack: list[int] = [source]
        path_edges: list[int] = []
        while stack:
            u = stack[-1]
            if u == sink:
                # bottleneck along path_edges
                bottleneck = min(cap[e] for e in path_edges)
                for e in path_edges:
                    cap[e] -= bottleneck
                    cap[e ^ 1] += bottleneck
                return bottleneck
            advanced = False
            while it[u] < len(adj[u]):
                e = adj[u][it[u]]
                v = head[e]
                if cap[e] > 0 and level[v] == level[u] + 1:
                    stack.append(v)
                    path_edges.append(e)
                    advanced = True
                    break
                it[u] += 1
            if not advanced:
                level[u] = -1  # dead end; prune
                stack.pop()
                if path_edges:
                    path_edges.pop()
                if stack:
                    it[stack[-1]] += 1
        return 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def min_cut_reachable(self, source: int) -> list[bool]:
        """After :meth:`max_flow`, nodes reachable in the residual graph.

        The returned mask defines the source side of a minimum cut.
        """
        seen = [False] * self.n
        seen[source] = True
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for e in self._adj[u]:
                v = self._head[e]
                if self._cap[e] > 0 and not seen[v]:
                    seen[v] = True
                    queue.append(v)
        return seen

    @property
    def num_edges(self) -> int:
        """Number of forward edges added."""
        return len(self._head) // 2
