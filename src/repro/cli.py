"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
``active``
    Solve an active-time instance from a JSON/CSV file:
    ``python -m repro active jobs.json --g 2 --algorithm rounding``
``busy``
    Solve a busy-time instance:
    ``python -m repro busy jobs.csv --g 3 --algorithm greedy_tracking``
``algos``
    List every registered solver with its metadata.
``sweep``
    Run a generator x algorithm x g experiment grid through the batch
    engine: ``python -m repro sweep --jobs 4 --out results.jsonl``;
    add ``--remote host1:8977,host2:8978`` to fan the grid out across
    running ``repro serve`` hosts via the work-stealing fabric.
``batch``
    Solve many instance files in one run:
    ``python -m repro batch a.json b.csv --problem busy --g 2 --jobs 4``
``gadget``
    Materialize one of the paper's constructions to a file:
    ``python -m repro gadget figure3 --g 5 --out fig3.json``
``cache``
    Inspect the on-disk result cache; ``--prune`` evicts oldest-mtime
    entries down to a byte budget:
    ``python -m repro cache --prune --budget 50M``
``serve``
    HTTP/JSONL serving front end over the batch engine:
    ``python -m repro serve --port 8977 --jobs 4 --disk-budget 200M``
``stats``
    Query a running ``repro serve`` for its metrics digest
    (``GET /stats``), or the raw Prometheus text with ``--raw``:
    ``python -m repro stats --url http://127.0.0.1:8977``
``bounds``
    Print all lower bounds for a busy-time instance.
``experiments``
    Run the registered paper experiments.

Algorithm dispatch goes through :data:`repro.engine.REGISTRY` — the
CLI holds no algorithm lists of its own.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .analysis import format_table
from .analysis.experiments import EXPERIMENTS, run_all, run_experiment
from .busytime import (
    best_lower_bound,
    demand_profile_lower_bound,
    mass_lower_bound,
    span_lower_bound,
)
from .engine import (
    REGISTRY,
    BatchRunner,
    ResultCache,
    SweepGrid,
    aggregate_table,
    backend_task_params,
    default_grid,
    group_warm_stats,
    make_task,
    run_sweep,
    warm_stats_table,
    write_results,
)
from .obs import EventLog, trace_spans
from .instances import (
    PROBLEM_GENERATORS,
    SWEEP_GENERATORS,
    figure1,
    figure3,
    figure6,
    figure8,
    figure9,
    figure10,
    lp_gap,
)
from .io import load_instance, load_instances, save_instance
from .solvers import backend_names, backend_status, resolve_backend

__all__ = ["main"]

GADGETS = {
    "figure1": lambda args: figure1(),
    "figure3": lambda args: figure3(args.g),
    "lp_gap": lambda args: lp_gap(args.g),
    "figure6": lambda args: figure6(args.g, eps=args.eps),
    "figure8": lambda args: figure8(eps=args.eps, eps_prime=args.eps / 2),
    "figure9": lambda args: figure9(args.g, eps=args.eps),
    "figure10": lambda args: figure10(args.g, eps=args.eps, eps_prime=args.eps / 2),
}

DEFAULT_CACHE_DIR = ".repro-cache"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Active/busy-time scheduling (Chang-Khuller-Mukherjee, SPAA 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    backend_help = (
        "LP/MILP backend for LP-based algorithms "
        "(default: $REPRO_LP_BACKEND or scipy-highs)"
    )

    p_active = sub.add_parser("active", help="solve an active-time instance")
    p_active.add_argument("path", help="instance file (.json or .csv)")
    p_active.add_argument("--g", type=int, required=True, help="slot capacity")
    p_active.add_argument(
        "--algorithm", choices=REGISTRY.names("active"), default="rounding"
    )
    p_active.add_argument("--backend", default=None, help=backend_help)

    p_busy = sub.add_parser("busy", help="solve a busy-time instance")
    p_busy.add_argument("path", help="instance file (.json or .csv)")
    p_busy.add_argument("--g", type=int, required=True, help="machine capacity")
    p_busy.add_argument(
        "--algorithm",
        choices=REGISTRY.names("busy"),
        default="greedy_tracking",
    )
    p_busy.add_argument("--backend", default=None, help=backend_help)

    sub.add_parser("algos", help="list registered solvers and backends")

    p_sweep = sub.add_parser(
        "sweep", help="run an experiment grid through the batch engine"
    )
    p_sweep.add_argument(
        "--problem",
        choices=("active", "busy", "both"),
        default="both",
        help="which problem grids to run (default both)",
    )
    p_sweep.add_argument(
        "--generators",
        help=f"comma-separated subset of {sorted(SWEEP_GENERATORS)} "
        "(default: first two families for the problem)",
    )
    p_sweep.add_argument(
        "--algorithms",
        help="comma-separated solver names (default: all cheap registered)",
    )
    p_sweep.add_argument(
        "--g", help="comma-separated g values (default 3,4 active / 2,3 busy)"
    )
    p_sweep.add_argument("--n", type=int, default=10, help="jobs per instance")
    p_sweep.add_argument("--horizon", type=int, default=20)
    p_sweep.add_argument(
        "--instances", type=int, default=3, help="instances per grid cell"
    )
    p_sweep.add_argument("--seed", type=int, default=2014)
    p_sweep.add_argument("--backend", default=None, help=backend_help)
    p_sweep.add_argument("--jobs", type=int, default=1, help="worker processes")
    p_sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-task timeout (s); hard (watchdog-enforced, survives "
        "solvers stuck in native code) with --jobs >= 2, soft at the "
        "default --jobs 1",
    )
    p_sweep.add_argument(
        "--limit", type=int, default=None, help="cap on total tasks"
    )
    p_sweep.add_argument(
        "--out", default="sweep_results.jsonl", help="JSONL result file"
    )
    p_sweep.add_argument(
        "--stream",
        action="store_true",
        help="print each result as a JSONL line on stdout the moment it "
        "completes (tables/summary move to stderr)",
    )
    p_sweep.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"on-disk result cache (default {DEFAULT_CACHE_DIR})",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p_sweep.add_argument(
        "--obs-log",
        default=None,
        metavar="PATH",
        help="append one structured JSON event per result (plus run "
        "start/end) to this JSONL file",
    )
    p_sweep.add_argument(
        "--remote",
        default=None,
        metavar="HOSTS",
        help="dispatch the sweep across running `repro serve` hosts "
        "(comma-separated host:port list) instead of solving locally; "
        "--jobs/--cache-dir then belong to the servers and are ignored",
    )
    p_sweep.add_argument(
        "--window",
        type=int,
        default=None,
        help="fixed per-host in-flight window for --remote (default: "
        "sized from each host's /healthz capacity report)",
    )

    p_batch = sub.add_parser(
        "batch", help="solve many instance files through the engine"
    )
    p_batch.add_argument(
        "paths",
        nargs="+",
        help="instance files (.json/.csv, or .jsonl with one instance per line)",
    )
    p_batch.add_argument(
        "--problem", choices=("active", "busy"), default="active"
    )
    p_batch.add_argument("--g", type=int, required=True)
    p_batch.add_argument("--algorithm", default=None,
                         help="solver name (default: rounding / greedy_tracking)")
    p_batch.add_argument("--backend", default=None, help=backend_help)
    p_batch.add_argument("--jobs", type=int, default=1)
    p_batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-task timeout (s); hard with --jobs >= 2, soft at "
        "--jobs 1 (see sweep --timeout)",
    )
    p_batch.add_argument("--out", default=None, help="JSONL result file")
    p_batch.add_argument(
        "--stream",
        action="store_true",
        help="print each result as a JSONL line on stdout the moment it "
        "completes (tables/summary move to stderr)",
    )
    p_batch.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p_batch.add_argument("--no-cache", action="store_true")
    p_batch.add_argument(
        "--obs-log",
        default=None,
        metavar="PATH",
        help="append one structured JSON event per result (plus run "
        "start/end) to this JSONL file",
    )
    p_batch.add_argument(
        "--remote",
        default=None,
        metavar="HOSTS",
        help="dispatch the batch across running `repro serve` hosts "
        "(comma-separated host:port list) instead of solving locally",
    )
    p_batch.add_argument(
        "--window",
        type=int,
        default=None,
        help="fixed per-host in-flight window for --remote (default: "
        "sized from each host's /healthz capacity report)",
    )

    p_serve = sub.add_parser(
        "serve", help="HTTP/JSONL serving front end over the batch engine"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; 0.0.0.0 to expose)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8977,
        help="TCP port (default 8977; 0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1, help="worker processes per wave"
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-task timeout (s) for requests that set none; "
        "hard (watchdog-enforced) with --jobs >= 2",
    )
    p_serve.add_argument("--backend", default=None, help=backend_help)
    p_serve.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"on-disk result cache (default {DEFAULT_CACHE_DIR})",
    )
    p_serve.add_argument(
        "--disk-budget",
        default=None,
        help="byte budget for the disk cache, K/M/G suffixes accepted "
        "(default unbounded)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="no disk cache (an in-memory cache still dedupes requests)",
    )
    p_serve.add_argument(
        "--warm-pool",
        action="store_true",
        help="pre-spawn the watchdog worker pool at startup (--jobs >= 2) "
        "so the first deadlined request pays no process-spawn latency",
    )
    p_serve.add_argument(
        "--idle-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="reap watchdog workers idle for this long, so a quiet "
        "server releases its worker processes (default: keep warm)",
    )
    p_serve.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="refuse connections past this count with 503 "
        "(default: unbounded)",
    )
    p_serve.add_argument(
        "--write-stall-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="treat a /batch client that accepts no bytes for this long "
        "as disconnected, freeing its leased workers (default 300)",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )

    p_stats = sub.add_parser(
        "stats", help="query a running repro serve for its metrics"
    )
    p_stats.add_argument(
        "--url",
        default="http://127.0.0.1:8977",
        help="server base URL (default http://127.0.0.1:8977)",
    )
    p_stats.add_argument(
        "--raw",
        action="store_true",
        help="print the raw Prometheus /metrics text instead of the "
        "JSON /stats digest",
    )

    p_cache = sub.add_parser(
        "cache", help="inspect or prune the on-disk result cache"
    )
    p_cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    p_cache.add_argument(
        "--prune",
        action="store_true",
        help="evict oldest-mtime entries until the store fits --budget",
    )
    p_cache.add_argument(
        "--budget",
        default="0",
        help="byte budget for --prune; accepts K/M/G suffixes "
        "(default 0 = empty the store)",
    )

    p_gadget = sub.add_parser("gadget", help="materialize a paper gadget")
    p_gadget.add_argument("name", choices=sorted(GADGETS))
    p_gadget.add_argument("--g", type=int, default=3)
    p_gadget.add_argument("--eps", type=float, default=0.1)
    p_gadget.add_argument("--out", help="write the instance to this file")

    p_bounds = sub.add_parser("bounds", help="busy-time lower bounds")
    p_bounds.add_argument("path", help="instance file (.json or .csv)")
    p_bounds.add_argument("--g", type=int, required=True)

    p_exp = sub.add_parser(
        "experiments", help="run registered paper experiments"
    )
    p_exp.add_argument(
        "keys", nargs="*", help=f"subset of {sorted(EXPERIMENTS)} (default all)"
    )

    p_lint = sub.add_parser(
        "lint",
        help="project-specific static analysis (rules REP001-REP006)",
    )
    p_lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to scan (default: src tools benchmarks)",
    )
    p_lint.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of text findings",
    )
    p_lint.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all registered)",
    )
    p_lint.add_argument(
        "--root", metavar="DIR", default=None,
        help="project root for relative paths and the README metrics catalog",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )

    return parser


def _cmd_active(args) -> int:
    instance = load_instance(args.path)
    params = backend_task_params("active", args.algorithm, args.backend)
    outcome = REGISTRY.solve(
        "active", args.algorithm, instance, args.g, **params
    )
    spec = REGISTRY.get("active", args.algorithm)
    schedule = outcome.schedule
    print(f"instance : {instance.describe()}")
    print(f"algorithm: {args.algorithm} ({spec.guarantee})")
    if args.backend:
        print(f"backend  : {args.backend}")
    print(f"active time: {schedule.cost} slots")
    print(f"active slots: {list(schedule.active_slots)}")
    for key in ("lp_objective", "ratio_vs_lp"):
        if key in outcome.metrics:
            print(f"{key}: {outcome.metrics[key]:.3f}")
    return 0


def _cmd_busy(args) -> int:
    instance = load_instance(args.path)
    params = backend_task_params("busy", args.algorithm, args.backend)
    outcome = REGISTRY.solve(
        "busy", args.algorithm, instance, args.g, **params
    )
    schedule = outcome.schedule
    print(f"instance : {instance.describe()}")
    print(f"algorithm: {args.algorithm}")
    if args.backend:
        print(f"backend  : {args.backend}")
    print(f"busy time: {schedule.total_busy_time:g}")
    print(f"machines : {schedule.num_machines}")
    rows = [
        [k + 1, b.busy_time, len(b), b.job_ids()]
        for k, b in enumerate(schedule.bundles)
    ]
    print(format_table("bundles", ["machine", "busy", "jobs", "ids"], rows))
    return 0


def _cmd_algos(args) -> int:
    rows = [spec.describe_row() for spec in REGISTRY.specs()]
    print(
        format_table(
            f"registered solvers ({len(rows)})",
            ["problem", "name", "guarantee", "backend", "complexity",
             "description"],
            rows,
        )
    )
    print()
    backend_rows = []
    for name in backend_names():
        status = backend_status(name)
        note = status["status"]
        if status.get("reason"):
            note = f"{note}: {status['reason']}"
        backend_rows.append(
            [name, ",".join(status["capabilities"]), note]
        )
    print(
        format_table(
            f"LP/MILP backends ({len(backend_rows)})",
            ["backend", "capabilities", "status"],
            backend_rows,
        )
    )
    return 0


def _split_csv(text: str | None) -> tuple[str, ...] | None:
    if text is None:
        return None
    return tuple(s.strip() for s in text.split(",") if s.strip())


def _make_cache(args) -> ResultCache | None:
    if args.no_cache:
        return None
    return ResultCache(directory=args.cache_dir)


def _emit_jsonl(result) -> None:
    """Print one result as a sorted-key JSONL line, unbuffered.

    The flush is the point of ``--stream``: each record must reach a
    pipe/consumer the moment the engine yields it, not at exit.
    """
    print(json.dumps(result.to_record(), sort_keys=True), flush=True)


def _obs_event(result) -> dict:
    """The ``--obs-log`` event fields for one task result."""
    return {
        "index": result.index,
        "digest": result.digest[:12],
        "problem": result.problem,
        "algorithm": result.algorithm,
        "g": result.g,
        "ok": result.ok,
        "objective": result.objective,
        "cached": result.cached,
        "elapsed": round(result.elapsed, 6),
        "spans": trace_spans(result.metrics),
        **({"error": result.error} if result.error else {}),
    }


def _make_dispatcher(args):
    """Build the fabric dispatcher for ``--remote``, or ``None``."""
    if not getattr(args, "remote", None):
        return None
    from .fabric import RemoteDispatcher

    return RemoteDispatcher(args.remote, window=args.window)


def _fabric_report(stats, report) -> None:
    """Per-host fabric table after a ``--remote`` run."""
    rows = [
        [
            label,
            host.window,
            "up" if host.up else "DOWN",
            host.dispatched,
            host.completed,
            host.retried,
            host.probes,
        ]
        for label, host in sorted(stats.hosts.items())
    ]
    print(file=report)
    print(
        format_table(
            "fabric hosts",
            ["host", "window", "state", "dispatched", "completed",
             "retried", "probes"],
            rows,
        ),
        file=report,
    )
    if stats.retried or stats.gave_up:
        print(
            f"fabric   : {stats.retried} re-dispatches, "
            f"{stats.gave_up} tasks given up",
            file=report,
        )


def _cmd_sweep(args) -> int:
    problems = ("active", "busy") if args.problem == "both" else (args.problem,)
    generators = _split_csv(args.generators)
    algorithms = _split_csv(args.algorithms)
    g_values = _split_csv(args.g)

    # A requested name may legitimately apply to only one of the selected
    # problems, but a name unknown to every selected problem is a typo —
    # silently dropping it would fake a successful run.
    if generators:
        known = {g for p in problems for g in PROBLEM_GENERATORS[p]}
        unknown = [g for g in generators if g not in known]
        if unknown:
            raise ValueError(
                f"unknown generator(s) {unknown} for problem "
                f"{args.problem!r}; choose from {sorted(known)}"
            )
    if algorithms:
        known = {a for p in problems for a in REGISTRY.names(p)}
        unknown = [a for a in algorithms if a not in known]
        if unknown:
            raise ValueError(
                f"unknown algorithm(s) {unknown} for problem "
                f"{args.problem!r}; choose from {sorted(known)}"
            )
    if args.backend:
        # Same fail-fast UX as the filters above: a typo'd backend name
        # errors with the menu instead of silently solving elsewhere.
        resolve_backend(args.backend)

    grids = []
    for problem in problems:
        base = default_grid(problem)
        gens = (
            tuple(
                g for g in generators if g in PROBLEM_GENERATORS[problem]
            )
            if generators
            else base.generators
        )
        algos = (
            tuple(a for a in algorithms if a in REGISTRY.names(problem))
            if algorithms
            else base.algorithms
        )
        if generators and not gens:
            continue  # user-picked generators all belong to the other problem
        if algorithms and not algos:
            continue
        grids.append(
            SweepGrid(
                problem=problem,
                generators=gens,
                algorithms=algos,
                g_values=(
                    tuple(int(v) for v in g_values)
                    if g_values
                    else base.g_values
                ),
                instances_per_cell=args.instances,
                n=args.n,
                horizon=args.horizon,
                timeout=args.timeout,
                backend=args.backend,
            )
        )
    if not grids:
        raise ValueError("no grid cells match the requested filters")

    obs_log = EventLog(args.obs_log) if args.obs_log else None
    dispatcher = _make_dispatcher(args)

    def on_result(result):
        if args.stream:
            _emit_jsonl(result)
        if obs_log is not None:
            obs_log.emit("task_result", **_obs_event(result))

    try:
        if obs_log is not None:
            obs_log.emit(
                "sweep_start",
                jobs=args.jobs,
                problems=list(problems),
                **({"remote": dispatcher.urls} if dispatcher else {}),
            )
        outcome = run_sweep(
            grids,
            jobs=args.jobs,
            cache=None if dispatcher else _make_cache(args),
            base_seed=args.seed,
            limit=args.limit,
            on_result=(
                on_result if (args.stream or obs_log is not None) else None
            ),
            dispatcher=dispatcher,
        )
        if obs_log is not None:
            obs_log.emit(
                "sweep_done",
                tasks=len(outcome.results),
                errors=outcome.errors,
                cache_hits=outcome.cache_hits,
                elapsed=round(outcome.elapsed, 6),
            )
    finally:
        if obs_log is not None:
            obs_log.close()
    written = write_results(outcome.results, args.out)
    # With --stream, stdout is a JSONL pipe; human-facing report lines
    # move to stderr so downstream parsers see records only.
    report = sys.stderr if args.stream else sys.stdout
    print(outcome.table, file=report)
    warm_rows = group_warm_stats(outcome.results)
    if warm_rows:
        print(file=report)
        print(
            warm_stats_table(outcome.results, "warm starts by group"),
            file=report,
        )
    print(file=report)
    print(outcome.summary, file=report)
    print(f"results  : {written} records -> {args.out}", file=report)
    if dispatcher is not None and dispatcher.last_stats is not None:
        _fabric_report(dispatcher.last_stats, report)
    for result in outcome.results:
        if not result.ok:
            print(f"error    : {result.error}", file=sys.stderr)
    # Partial failures are expected in exploratory sweeps (some cells may
    # be infeasible) and keep exit 0; a sweep where nothing succeeded is
    # a broken setup and must be visible to scripts and CI.
    if outcome.results and outcome.errors == len(outcome.results):
        return 1
    return 0


def _cmd_batch(args) -> int:
    algorithm = args.algorithm or (
        "rounding" if args.problem == "active" else "greedy_tracking"
    )
    REGISTRY.get(args.problem, algorithm)  # fail fast on unknown names
    params = backend_task_params(args.problem, algorithm, args.backend)
    tasks = []
    for path in args.paths:
        loaded = load_instances(path)
        for pos, instance in enumerate(loaded):
            label = path if len(loaded) == 1 else f"{path}#{pos}"
            tasks.append(
                make_task(
                    index=len(tasks),
                    problem=args.problem,
                    algorithm=algorithm,
                    g=args.g,
                    instance=instance,
                    params=params,
                    meta={"path": label},
                    timeout=args.timeout,
                )
            )
    obs_log = EventLog(args.obs_log) if args.obs_log else None
    dispatcher = _make_dispatcher(args)
    try:
        if obs_log is not None:
            obs_log.emit(
                "batch_start",
                jobs=args.jobs,
                tasks=len(tasks),
                **({"remote": dispatcher.urls} if dispatcher else {}),
            )
        if dispatcher is not None:
            results = []
            stream = dispatcher.run_stream(tasks)
            for result in stream:
                if args.stream:
                    _emit_jsonl(result)
                if obs_log is not None:
                    obs_log.emit("task_result", **_obs_event(result))
                results.append(result)
            cache_hits = sum(1 for r in results if r.cached)
        else:
            with BatchRunner(
                jobs=args.jobs, cache=_make_cache(args)
            ) as runner:
                results = []
                stream = runner.run_stream(tasks)
                for result in stream:
                    if args.stream:
                        _emit_jsonl(result)
                    if obs_log is not None:
                        obs_log.emit("task_result", **_obs_event(result))
                    results.append(result)
                cache_hits = stream.stats.cache_hits
        if obs_log is not None:
            obs_log.emit(
                "batch_done",
                tasks=len(results),
                errors=sum(1 for r in results if not r.ok),
                cache_hits=cache_hits,
            )
    finally:
        if obs_log is not None:
            obs_log.close()
    rows = [
        [
            r.meta.get("path", r.digest[:12]),
            "ok" if r.ok else "ERROR",
            r.objective if r.ok else "-",
            "hit" if r.cached else "",
            f"{r.elapsed:.3f}",
        ]
        for r in results
    ]
    # With --stream, stdout carries records only; reports go to stderr.
    report = sys.stderr if args.stream else sys.stdout
    print(
        format_table(
            f"batch {args.problem}/{algorithm} g={args.g}",
            ["instance", "status", "objective", "cache", "sec"],
            rows,
        ),
        file=report,
    )
    print(file=report)
    print(aggregate_table(results, "batch aggregate"), file=report)
    print(f"cache hits: {cache_hits}/{len(tasks)}", file=report)
    if dispatcher is not None and dispatcher.last_stats is not None:
        _fabric_report(dispatcher.last_stats, report)
    if args.out:
        written = write_results(results, args.out)
        print(f"results  : {written} records -> {args.out}", file=report)
    failures = [r for r in results if not r.ok]
    for result in failures:
        print(f"error    : {result.error}", file=sys.stderr)
    return 1 if failures else 0


def _parse_bytes(text: str) -> int:
    """Parse a byte count with optional K/M/G suffix (``"50M"`` etc.)."""
    text = text.strip()
    scale = {"K": 1024, "M": 1024**2, "G": 1024**3}.get(text[-1:].upper())
    try:
        value = int(float(text[:-1]) * scale) if scale else int(text)
    except ValueError:
        raise ValueError(
            f"cannot parse byte budget {text!r}; use e.g. 1048576, 512K, "
            "50M or 2G"
        ) from None
    if value < 0:
        raise ValueError(f"byte budget must be non-negative, got {text!r}")
    return value


def _cmd_cache(args) -> int:
    directory = Path(args.cache_dir)
    if not directory.is_dir():
        print(f"no cache directory at {directory}")
        return 0
    cache = ResultCache(directory=directory)
    num, size = cache.disk_usage()
    print(f"cache dir: {directory}")
    print(f"entries  : {num}")
    print(f"bytes    : {size}")
    if args.prune:
        budget = _parse_bytes(args.budget)
        summary = cache.prune(budget)
        print(
            f"pruned   : {summary['removed']} entries "
            f"({summary['removed_bytes']} bytes) to budget {budget}"
        )
        print(
            f"kept     : {summary['kept']} entries "
            f"({summary['kept_bytes']} bytes)"
        )
    return 0


def _cmd_serve(args) -> int:
    import signal

    from .serve import create_server

    if args.no_cache:
        cache = ResultCache()  # memory-only: still dedupes across requests
    else:
        budget = (
            _parse_bytes(args.disk_budget)
            if args.disk_budget is not None
            else None
        )
        cache = ResultCache(directory=args.cache_dir, disk_budget=budget)
    server = create_server(
        args.host,
        args.port,
        jobs=args.jobs,
        cache=cache,
        default_backend=args.backend,
        default_timeout=args.timeout,
        verbose=args.verbose,
        write_stall_timeout=args.write_stall_timeout,
        max_connections=args.max_connections,
        warm_pool=args.warm_pool,
        idle_ttl=args.idle_ttl,
    )

    # The runner's worker pools outlive individual batches, so a bare
    # SIGTERM (docker stop, subprocess .terminate()) must run the close
    # path below — otherwise worker processes are orphaned holding each
    # other's inherited pipe ends and linger long after the server.  A
    # running event loop is stopped gracefully (request_shutdown only
    # pokes the loop's wake-up pipe, which is signal-safe); raising
    # from the handler is the fallback for a signal landing before the
    # loop is up.
    term_signum = []

    def _on_term(signum, frame):
        term_signum.append(signum)
        if not server.request_shutdown():
            raise SystemExit(128 + signum)

    signal.signal(signal.SIGTERM, _on_term)
    try:
        print(f"repro serve listening on {server.url}")
        print(
            f"  jobs={args.jobs} "
            f"cache={'memory-only' if args.no_cache else args.cache_dir} "
            f"backend={args.backend or 'default'} "
            f"timeout={args.timeout or 'none'}"
        )
        print(
            "  endpoints: GET /algos, GET /healthz, GET /metrics, "
            "GET /stats, POST /solve, POST /batch"
        )
        sys.stdout.flush()
        server.serve_forever()
    finally:
        server.server_close()
    if term_signum:
        return 128 + term_signum[0]
    return 0


def _cmd_stats(args) -> int:
    from .serve.client import ServeClient

    client = ServeClient(args.url, http_timeout=10.0)
    if args.raw:
        sys.stdout.write(client.metrics())
        return 0
    print(json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_gadget(args) -> int:
    gadget = GADGETS[args.name](args)
    print(f"gadget  : {gadget.name} (g={gadget.g})")
    print(f"instance: {gadget.instance.describe()}")
    for key, value in gadget.facts.items():
        print(f"  {key}: {value}")
    if args.out:
        save_instance(gadget.instance, args.out, gadget=gadget.name, g=gadget.g)
        print(f"written to {args.out}")
    return 0


def _cmd_bounds(args) -> int:
    instance = load_instance(args.path)
    rows = [
        ["mass  (Obs. 2)", mass_lower_bound(instance, args.g)],
        ["span  (Obs. 3)", span_lower_bound(instance)],
        ["profile (Obs. 4)", demand_profile_lower_bound(instance, args.g)],
        ["best", best_lower_bound(instance, args.g)],
    ]
    print(
        format_table(
            f"lower bounds, {instance.describe()}, g={args.g}",
            ["bound", "value"],
            rows,
        )
    )
    return 0


def _cmd_experiments(args) -> int:
    if args.keys:
        for key in args.keys:
            print(run_experiment(key))
            print()
    else:
        print(run_all())
    return 0


def _cmd_lint(args) -> int:
    # Delegate to the lint package's own CLI so ``repro lint`` and
    # ``python -m repro.lint`` stay one surface (same flags, same exits).
    from .lint.cli import main as lint_main

    argv: list[str] = list(args.paths)
    if args.json:
        argv.append("--json")
    if args.rules:
        argv.extend(["--rules", args.rules])
    if args.root is not None:
        argv.extend(["--root", args.root])
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "active": _cmd_active,
        "busy": _cmd_busy,
        "algos": _cmd_algos,
        "sweep": _cmd_sweep,
        "batch": _cmd_batch,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "stats": _cmd_stats,
        "gadget": _cmd_gadget,
        "bounds": _cmd_bounds,
        "experiments": _cmd_experiments,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout was closed early (e.g. ``repro algos | head``); exit
        # quietly instead of tracebacking.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (ValueError, RuntimeError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
