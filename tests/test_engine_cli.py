"""CLI smoke tests for the engine commands (algos/sweep/batch).

``sweep`` and ``batch`` are exercised through ``subprocess`` so the
worker-pool path runs exactly as a user would run it.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.io import save_instance

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _run(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestAlgosCommand:
    def test_lists_all_solvers(self, capsys):
        assert main(["algos"]) == 0
        out = capsys.readouterr().out
        for name in ("rounding", "minimal", "greedy_tracking", "kumar_rudra"):
            assert name in out
        assert "guarantee" in out


class TestSweepCommand:
    def test_smoke_parallel_then_cached(self, tmp_path):
        first = _run(["sweep", "--limit", "4", "--jobs", "2"], tmp_path)
        assert first.returncode == 0, first.stderr
        assert "cache hits: 0" in first.stdout
        assert (tmp_path / "sweep_results.jsonl").exists()
        records = [
            json.loads(line)
            for line in (tmp_path / "sweep_results.jsonl").read_text().splitlines()
        ]
        assert len(records) == 4
        assert all(r["ok"] for r in records)

        second = _run(["sweep", "--limit", "4", "--jobs", "2"], tmp_path)
        assert second.returncode == 0, second.stderr
        assert "cache hits: 4" in second.stdout

    def test_no_cache_flag(self, tmp_path):
        run = _run(
            ["sweep", "--limit", "2", "--no-cache", "--out", "r.jsonl"],
            tmp_path,
        )
        assert run.returncode == 0, run.stderr
        assert not (tmp_path / ".repro-cache").exists()

    def test_typoed_filter_names_are_errors(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["sweep", "--generators", "intervall", "--limit", "1"]) == 1
        assert "unknown generator" in capsys.readouterr().err
        assert main(["sweep", "--algorithms", "greedy_traking",
                     "--limit", "1"]) == 1
        assert "unknown algorithm" in capsys.readouterr().err

    def test_all_tasks_failing_exits_nonzero(self, tmp_path, capsys,
                                             monkeypatch):
        # 60 jobs of mass >= 1 into 20 slots at g=1: certainly infeasible.
        monkeypatch.chdir(tmp_path)
        rc = main(["sweep", "--problem", "active", "--algorithms", "minimal",
                   "--g", "1", "--n", "60", "--horizon", "20",
                   "--instances", "1", "--limit", "2",
                   "--no-cache", "--out", "r.jsonl"])
        captured = capsys.readouterr()
        assert "task " in captured.err
        assert rc == 1

    def test_stream_prints_pure_jsonl_on_stdout(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "sweep", "--limit", "3", "--no-cache", "--stream",
            "--out", "r.jsonl",
        ]) == 0
        captured = capsys.readouterr()
        records = [
            json.loads(line)
            for line in captured.out.splitlines()
            if line.strip()
        ]
        assert [r["index"] for r in records] == [0, 1, 2]
        # the report (table + summary) moved to stderr
        assert "tasks: 3" in captured.err
        assert "sweep aggregate" in captured.err

    def test_inprocess_filters(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "sweep", "--problem", "busy", "--generators", "interval",
            "--algorithms", "first_fit", "--g", "2", "--instances", "1",
            "--no-cache", "--out", "r.jsonl",
        ]) == 0
        out = capsys.readouterr().out
        assert "busy/first_fit g=2" in out
        assert "tasks: 1" in out


class TestBatchCommand:
    @pytest.fixture
    def files(self, tmp_path, tiny_instance, interval_instance):
        a = tmp_path / "a.json"
        b = tmp_path / "b.csv"
        save_instance(tiny_instance, a)
        save_instance(interval_instance, b)
        return a, b

    def test_subprocess_smoke(self, tmp_path, files):
        a, b = files
        run = _run(
            ["batch", str(a), str(b), "--problem", "busy", "--g", "2",
             "--jobs", "2", "--out", "batch.jsonl"],
            tmp_path,
        )
        assert run.returncode == 0, run.stderr
        assert "batch busy/greedy_tracking g=2" in run.stdout
        records = [
            json.loads(line)
            for line in (tmp_path / "batch.jsonl").read_text().splitlines()
        ]
        assert [r["ok"] for r in records] == [True, True]

    def test_jsonl_workload_file(self, tmp_path, capsys, monkeypatch,
                                 tiny_instance, interval_instance):
        from repro.io import instances_to_jsonl

        monkeypatch.chdir(tmp_path)
        work = tmp_path / "work.jsonl"
        work.write_text(instances_to_jsonl([tiny_instance, interval_instance]))
        assert main([
            "batch", str(work), "--problem", "busy", "--g", "2", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert f"{work}#0" in out
        assert f"{work}#1" in out

    def test_stream_prints_pure_jsonl_on_stdout(
        self, tmp_path, capsys, monkeypatch, files
    ):
        a, b = files
        monkeypatch.chdir(tmp_path)
        assert main([
            "batch", str(a), str(b), "--problem", "busy", "--g", "2",
            "--no-cache", "--stream", "--out", "batch.jsonl",
        ]) == 0
        captured = capsys.readouterr()
        lines = [l for l in captured.out.splitlines() if l.strip()]
        records = [json.loads(line) for line in lines]  # stdout: JSONL only
        assert [r["index"] for r in records] == [0, 1]
        assert all(r["ok"] for r in records)
        # human-facing report moved to stderr, and --out still written
        assert "batch aggregate" in captured.err
        assert (tmp_path / "batch.jsonl").read_text().splitlines() == lines

    def test_inprocess_failure_exit_code(self, tmp_path, capsys, monkeypatch):
        from repro.core import Instance

        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.json"
        save_instance(Instance.from_tuples([(0, 1, 1), (0, 1, 1)]), bad)
        assert main([
            "batch", str(bad), "--problem", "active", "--g", "1",
            "--algorithm", "minimal", "--no-cache",
        ]) == 1
        captured = capsys.readouterr()
        assert "ERROR" in captured.out
        assert "task " in captured.err


class TestBackendFlag:
    @pytest.fixture
    def active_file(self, tmp_path, tiny_instance):
        path = tmp_path / "inst.json"
        save_instance(tiny_instance, path)
        return path

    def test_reference_and_scipy_agree(self, active_file, capsys):
        costs = {}
        for backend in ("reference", "scipy-highs"):
            assert main([
                "active", str(active_file), "--g", "2",
                "--backend", backend,
            ]) == 0
            out = capsys.readouterr().out
            assert f"backend  : {backend}" in out
            costs[backend] = [
                line for line in out.splitlines() if "active time" in line
            ]
        assert costs["reference"] == costs["scipy-highs"]

    def test_unknown_backend_exits_nonzero_with_menu(self, active_file,
                                                     capsys):
        assert main([
            "active", str(active_file), "--g", "2", "--backend", "glpk",
        ]) == 1
        err = capsys.readouterr().err
        assert "unknown backend" in err
        assert "scipy-highs" in err and "reference" in err and "mip" in err

    def test_backend_on_combinatorial_algorithm_errors(self, active_file,
                                                       capsys):
        assert main([
            "active", str(active_file), "--g", "2",
            "--algorithm", "minimal", "--backend", "reference",
        ]) == 1
        assert "combinatorial" in capsys.readouterr().err

    def test_sweep_backend_smoke(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "sweep", "--problem", "active", "--algorithms", "rounding",
            "--generators", "active", "--g", "3", "--instances", "1",
            "--backend", "reference", "--no-cache", "--out", "r.jsonl",
        ]) == 0
        out = capsys.readouterr().out
        assert "errors: 0" in out

    def test_sweep_unknown_backend_errors(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["sweep", "--backend", "glpk", "--limit", "1"]) == 1
        assert "unknown backend" in capsys.readouterr().err

    def test_algos_lists_backend_capabilities(self, capsys):
        assert main(["algos"]) == 0
        out = capsys.readouterr().out
        assert "backend" in out
        assert "milp" in out
        assert "scipy-highs" in out and "reference" in out


class TestCacheCommand:
    def test_stats_and_prune(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["sweep", "--limit", "3", "--out", "r.jsonl"]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries  : 3" in out
        assert main(["cache", "--prune", "--budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "pruned   : 3 entries" in out
        assert main(["cache"]) == 0
        assert "entries  : 0" in capsys.readouterr().out

    def test_missing_directory_is_graceful(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["cache"]) == 0
        assert "no cache directory" in capsys.readouterr().out

    def test_bad_budget_errors(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / ".repro-cache").mkdir()
        assert main(["cache", "--prune", "--budget", "10Q"]) == 1
        assert "byte budget" in capsys.readouterr().err

    def test_negative_budget_rejected(self, tmp_path, capsys, monkeypatch):
        # a typo'd negative budget must not silently empty the store
        monkeypatch.chdir(tmp_path)
        (tmp_path / ".repro-cache").mkdir()
        (tmp_path / ".repro-cache" / "k.json").write_text("{}")
        assert main(["cache", "--prune", "--budget=-1K"]) == 1
        assert "non-negative" in capsys.readouterr().err
        assert (tmp_path / ".repro-cache" / "k.json").exists()
