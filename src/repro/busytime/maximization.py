"""The dual problem: throughput maximization under a busy-time budget.

Mertzios et al. [12] (Section 1.3 of the paper) study the *resource
allocation maximization* version of busy time: given interval jobs, a
parallelism bound ``g`` and a busy-time budget ``B``, schedule as many jobs
as possible without the cumulative busy time exceeding ``B``.  They show the
maximization version is NP-hard whenever the minimization version is and
give constant-factor approximations for structured instances.

This module provides:

* :func:`maximize_throughput_exact` — an exact MILP (selection + machine
  assignment + busy indicators with a budget row);
* :func:`greedy_throughput` — a density greedy: repeatedly admit the job
  whose busy-time increment is smallest (ties to shorter jobs), a natural
  heuristic with no worst-case guarantee — the bench measures its gap;
* consistency helpers used by the tests (monotonicity in ``B``, the
  "enough budget admits everything" boundary, etc.).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..core.intervals import interesting_intervals, span
from ..core.jobs import Instance, Job
from ..core.validation import require_capacity, require_interval_jobs
from ..solvers import LinearProgram, SolverBackend, solve_ir
from .firstfit import fits_in_bundle
from .schedule import BusyTimeSchedule

__all__ = ["maximize_throughput_exact", "greedy_throughput"]


def maximize_throughput_exact(
    instance: Instance,
    g: int,
    budget: float,
    *,
    max_machines: int | None = None,
    backend: str | SolverBackend | None = None,
) -> BusyTimeSchedule:
    """Exact maximum-throughput schedule within a busy-time budget.

    Returns a schedule over the *admitted* subset (its ``instance`` field is
    restricted accordingly so ``verify()`` checks exactly the admitted jobs).
    """
    require_interval_jobs(instance, "throughput maximization")
    require_capacity(g)
    if budget < 0:
        raise ValueError("budget must be non-negative")
    n = instance.n
    if n == 0:
        return BusyTimeSchedule.from_bundle_jobs(instance, g, [])
    M = min(max_machines or n, n)
    segments = interesting_intervals(instance)
    seg_len = [b - a for a, b in segments]
    seg_jobs: list[list[int]] = []
    for a, b in segments:
        mid = 0.5 * (a + b)
        seg_jobs.append(
            [k for k, j in enumerate(instance.jobs) if j.is_live_at(mid)]
        )

    z_col: dict[tuple[int, int], int] = {}
    col = 0
    for k in range(n):
        for m in range(min(k + 1, M)):
            z_col[(k, m)] = col
            col += 1
    u_col: dict[tuple[int, int], int] = {}
    for m in range(M):
        for i in range(len(segments)):
            u_col[(m, i)] = col
            col += 1
    num_vars = col

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lb: list[float] = []
    ub: list[float] = []
    row = 0

    # each job on AT MOST one machine (selection)
    for k in range(n):
        for m in range(min(k + 1, M)):
            rows.append(row)
            cols.append(z_col[(k, m)])
            vals.append(1.0)
        lb.append(0.0)
        ub.append(1.0)
        row += 1

    # capacity + busy indicator per (machine, segment)
    for m in range(M):
        for i, live in enumerate(seg_jobs):
            touched = False
            for k in live:
                c = z_col.get((k, m))
                if c is not None:
                    rows.append(row)
                    cols.append(c)
                    vals.append(1.0)
                    touched = True
            if not touched:
                continue
            rows.append(row)
            cols.append(u_col[(m, i)])
            vals.append(-float(g))
            lb.append(-np.inf)
            ub.append(0.0)
            row += 1

    # budget: total busy time <= B
    for (m, i), c in u_col.items():
        rows.append(row)
        cols.append(c)
        vals.append(seg_len[i])
    lb.append(-np.inf)
    ub.append(float(budget))
    row += 1

    a = sparse.coo_matrix((vals, (rows, cols)), shape=(row, num_vars)).tocsr()
    c_vec = np.zeros(num_vars)
    for (k, m), cc in z_col.items():
        c_vec[cc] = -1.0  # maximize selections

    lp = LinearProgram.from_two_sided(
        c_vec,
        a,
        np.asarray(lb),
        np.asarray(ub),
        lb=np.zeros(num_vars),
        ub=np.ones(num_vars),
        integrality=np.ones(num_vars),
        label=f"throughput maximization (g={g}, B={budget:g})",
    )
    result = solve_ir(lp, backend=backend)
    result.require_optimal("throughput MILP")

    groups: dict[int, list[Job]] = {}
    admitted: list[Job] = []
    for (k, m), cc in z_col.items():
        if result.x[cc] > 0.5:
            job = instance.jobs[k]
            groups.setdefault(m, []).append(job)
            admitted.append(job)
    sub = Instance(tuple(sorted(admitted, key=lambda j: j.id)))
    return BusyTimeSchedule.from_bundle_jobs(
        sub, g, [v for _, v in sorted(groups.items())]
    )


def greedy_throughput(
    instance: Instance, g: int, budget: float
) -> BusyTimeSchedule:
    """Density greedy: admit the job with the smallest busy-time increment.

    Each round evaluates, for every unadmitted job, the cheapest increment
    over all machines (or a new machine); admits the global minimum while
    the budget allows.  No approximation guarantee — serves as the baseline
    the exact MILP is compared against in bench E20.
    """
    require_interval_jobs(instance, "greedy throughput")
    require_capacity(g)
    if budget < 0:
        raise ValueError("budget must be non-negative")

    bundles: list[list[Job]] = []
    remaining = sorted(
        instance.jobs, key=lambda j: (j.length, j.release, j.id)
    )
    admitted: list[Job] = []
    used = 0.0

    while remaining:
        best: tuple[float, int, Job, int | None] | None = None
        for job in remaining:
            # new machine
            candidate = (job.length, job.id, job, None)
            if best is None or candidate[:2] < best[:2]:
                best_for_job = candidate
            else:
                best_for_job = candidate
            for k, members in enumerate(bundles):
                if not fits_in_bundle(members, job, g):
                    continue
                before = span(m.window for m in members)
                after = span([m.window for m in members] + [job.window])
                delta = after - before
                if delta < best_for_job[0] - 1e-12:
                    best_for_job = (delta, job.id, job, k)
            if best is None or best_for_job[:2] < best[:2]:
                best = best_for_job
        assert best is not None
        delta, _, job, where = best
        if used + delta > budget + 1e-9:
            break
        used += delta
        admitted.append(job)
        if where is None:
            bundles.append([job])
        else:
            bundles[where].append(job)
        remaining = [j for j in remaining if j.id != job.id]

    sub = Instance(tuple(sorted(admitted, key=lambda j: j.id)))
    return BusyTimeSchedule.from_bundle_jobs(sub, g, bundles)
