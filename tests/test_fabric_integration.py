"""Integration tests for the fabric against real ``repro serve`` processes.

The host-loss test is the contract the fabric exists for: SIGKILL one of
two live servers mid-sweep and the sweep must still finish with exactly
one result per task, in task order, with the loss visible in the retry
counters.  Servers run as subprocesses (a SIGKILL inside a thread pool
would prove nothing) that register a deliberately slow solver first, so
the kill reliably lands while work is in flight.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import Instance
from repro.engine.workers import make_task
from repro.fabric import RemoteDispatcher

_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: Bootstrap for one server subprocess: register a slow test-only solver
#: (0.12s per task keeps several tasks in flight at any instant), then
#: run the normal CLI serve loop on an ephemeral port.
_SERVER_BOOT = """
import sys, time
from repro.engine.registry import REGISTRY, SolveOutcome, SolverSpec

def _slow(instance, g, **params):
    time.sleep(0.12)
    return SolveOutcome(objective=float(g + len(instance.jobs)))

REGISTRY.register(
    SolverSpec(
        problem="busy",
        name="fabric-slow-test",
        solve=_slow,
        exact=False,
        guarantee="-",
        complexity="-",
        description="sleeps then answers (fabric test only)",
    )
)
from repro.cli import main
sys.exit(main(["serve", "--port", "0", "--jobs", "2", "--no-cache"]))
"""


def _start_server(timeout=30.0):
    """Launch one serve subprocess; return ``(proc, base_url)``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", _SERVER_BOOT],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError("server died before announcing its port")
        match = re.search(r"(http://[\d.]+:\d+)", line)
        if match:
            return proc, match.group(1)
    proc.kill()
    raise RuntimeError("server did not announce its port in time")


def _stop(proc):
    if proc.poll() is None:
        proc.kill()
    proc.stdout.close()
    proc.wait(timeout=10)


@pytest.fixture
def two_servers():
    p1, url1 = _start_server()
    try:
        p2, url2 = _start_server()
    except Exception:
        _stop(p1)
        raise
    yield (p1, url1), (p2, url2)
    _stop(p1)
    _stop(p2)


def _slow_tasks(count):
    return [
        make_task(
            index=i,
            problem="busy",
            algorithm="fabric-slow-test",
            g=2,
            instance=Instance.from_tuples([(0, 4 + i, 2), (1, 6 + i, 3)]),
            meta={"i": i},
        )
        for i in range(count)
    ]


class TestHostLossRecovery:
    def test_sigkill_one_of_two_hosts_mid_sweep(self, two_servers):
        (p1, url1), (p2, url2) = two_servers
        tasks = _slow_tasks(20)
        dispatcher = RemoteDispatcher(
            [url1, url2],
            probe_base=0.05,
            probe_cap=0.25,
            http_timeout=30.0,
        )
        stream = dispatcher.run_stream(tasks)
        results = []
        for result in stream:
            results.append(result)
            if len(results) == 4:
                # 16 tasks still unresolved: the victim's window is
                # holding in-flight work when the SIGKILL lands.
                p2.send_signal(signal.SIGKILL)
                p2.wait(timeout=10)
        # Exactly one result per task, in task order, all solved.
        assert [r.index for r in results] == list(range(20))
        assert all(r.ok for r in results), [
            r.error for r in results if not r.ok
        ]
        stats = dispatcher.last_stats
        label_lost = url2.split("://", 1)[1]
        label_kept = url1.split("://", 1)[1]
        assert stats.retried > 0
        assert stats.hosts[label_lost].retried > 0
        assert stats.hosts[label_lost].up is False
        # Everything the victim dropped was re-dispatched and solved by
        # the survivor.
        solved_by = [r.meta["fabric_host"] for r in results]
        assert solved_by.count(label_kept) + solved_by.count(
            label_lost
        ) == len(results)
        assert stats.hosts[label_kept].completed + stats.hosts[
            label_lost
        ].completed == len(results)

    def test_healthy_two_host_sweep_uses_both(self, two_servers):
        (_, url1), (_, url2) = two_servers
        dispatcher = RemoteDispatcher([url1, url2], http_timeout=30.0)
        results = dispatcher.run(_slow_tasks(12))
        assert [r.index for r in results] == list(range(12))
        assert all(r.ok for r in results)
        hosts_used = {r.meta["fabric_host"] for r in results}
        assert hosts_used == {
            url1.split("://", 1)[1],
            url2.split("://", 1)[1],
        }
        # Capacity report sized each window from the server's --jobs 2.
        for host in dispatcher.last_stats.hosts.values():
            assert host.window == 2
