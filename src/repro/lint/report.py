"""Rendering of lint results: ``path:line: REP### message`` text or JSON."""

from __future__ import annotations

import json
from typing import List

from .base import RULES
from .runner import LintReport

__all__ = ["render_json", "render_text", "render_rule_list"]


def render_text(report: LintReport) -> str:
    """The human text report (what CI prints on failure)."""
    lines: List[str] = [f.format() for f in report.findings]
    if report.findings:
        lines.append(
            f"{len(report.findings)} finding(s) across "
            f"{report.files_scanned} file(s)"
            + (f"; {len(report.waived)} waived" if report.waived else "")
        )
    else:
        lines.append(
            f"lint clean: {report.files_scanned} file(s), "
            f"rules {', '.join(report.rules_run)}"
            + (f"; {len(report.waived)} finding(s) waived"
               if report.waived else "")
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine report (``--json``), one stable sorted document."""
    return json.dumps(report.to_json(), indent=2, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules``: every registered rule with its documentation."""
    blocks: List[str] = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        doc = rule.describe()
        blocks.append(f"{rule_id}  {rule.title}\n\n{doc}\n")
    return "\n".join(blocks)
