"""Tests for the ratio harness and report formatting."""

import math

import pytest

from repro.analysis import (
    RatioSample,
    collect_ratios,
    format_series,
    format_table,
    summarize,
)


class TestRatioSample:
    def test_ratio(self):
        assert RatioSample("x", 3.0, 2.0).ratio == 1.5

    def test_zero_baseline(self):
        assert RatioSample("x", 0.0, 0.0).ratio == 0.0
        assert math.isinf(RatioSample("x", 1.0, 0.0).ratio)


class TestSummarize:
    def test_aggregates(self):
        samples = collect_ratios("alg", [(2, 1), (3, 2), (4, 4)])
        s = summarize(samples)
        assert s.count == 3
        assert s.worst == 2.0
        assert s.best == 1.0
        assert s.mean == pytest.approx((2 + 1.5 + 1) / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_row_format(self):
        s = summarize(collect_ratios("alg", [(2, 1)]))
        row = s.row()
        assert "alg" in row and "n=1" in row


class TestReportFormatting:
    def test_table_alignment(self):
        out = format_table(
            "Title", ["a", "bb"], [[1, 2.34567], ["xyz", 3]]
        )
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert set(lines[1]) == {"="}
        assert "2.346" in out

    def test_series(self):
        out = format_series("S", "g", "ratio", [(2, 1.5), (4, 1.8)])
        assert "g" in out and "ratio" in out and "1.8" in out
