"""Unbounded-capacity placement: ``OPT_inf`` and the flexible→interval step.

Khandekar et al. (Theorem 4) show busy time with ``g = inf`` is solvable in
polynomial time via a dynamic program, and the paper's flexible-job pipeline
(Section 4.3) first runs that solver to pin every job's start time, producing
an interval instance whose span equals ``OPT_inf`` — a lower bound on the
bounded-``g`` optimum (Observation 3).

Here the placement is produced by the exact pseudo-polynomial MILP
(:func:`repro.lp.milp.solve_unbounded_span_exact`), which returns the same
optimal value with a different mechanism (see DESIGN.md's substitution
table).  Interval instances bypass the solver entirely; non-integral flexible
instances must supply their placement explicitly — exactly how the paper's
own Figure 9/10 constructions pin adversarial dynamic-program outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.intervals import span
from ..core.jobs import Instance, Job
from ..lp.milp import solve_unbounded_span_exact

__all__ = ["UnboundedPlacement", "opt_infinity", "pin_instance"]


@dataclass(frozen=True)
class UnboundedPlacement:
    """An optimal (or supplied) start-time choice for every job.

    Attributes
    ----------
    starts:
        ``job id -> start time``.
    busy_time:
        Span of the placed jobs — equals ``OPT_inf`` when produced by the
        exact solver.
    """

    starts: dict[int, float]
    busy_time: float


def opt_infinity(
    instance: Instance, *, backend: str | None = None
) -> UnboundedPlacement:
    """Compute ``OPT_inf`` and witnessing start times.

    * interval instances: starts are forced, ``OPT_inf = Sp(J)``;
    * integral flexible instances: exact MILP;
    * non-integral flexible instances: unsupported — pass explicit starts to
      :func:`pin_instance` instead (raises ``ValueError`` with that guidance).
    """
    if instance.n == 0:
        return UnboundedPlacement(starts={}, busy_time=0.0)
    if instance.all_interval:
        starts = {j.id: j.release for j in instance.jobs}
        return UnboundedPlacement(
            starts=starts, busy_time=span(j.window for j in instance.jobs)
        )
    if instance.is_integral:
        result = solve_unbounded_span_exact(instance, backend=backend)
        return UnboundedPlacement(
            starts={int(k): float(v) for k, v in result.witness["starts"].items()},
            busy_time=result.objective,
        )
    raise ValueError(
        "OPT_inf placement requires interval jobs or integral data; "
        "for non-integral flexible instances supply start times to "
        "pin_instance() explicitly"
    )


def pin_instance(
    instance: Instance, starts: Mapping[int, float]
) -> Instance:
    """Freeze every job at its chosen start, yielding an interval instance.

    This is Section 4.3's conversion: "adjust the release times and deadlines
    to artificially fix the position of each job to where it was scheduled in
    the solution for unbounded g".

    Raises ``KeyError`` for missing jobs and ``ValueError`` for starts outside
    a job's window.
    """
    pinned: list[Job] = []
    for job in instance.jobs:
        if job.id not in starts:
            raise KeyError(f"no start time supplied for job {job.id}")
        pinned.append(job.as_interval_job(starts[job.id]))
    return Instance(tuple(pinned))
