"""E-BACKENDS — solver-backend routing: latency and parity across backends.

The backend-neutral solver layer must not regress the hot path: the
``scipy-highs`` backend is the production default, and ``reference`` (the
dependency-free dense simplex) exists for tiny instances and CI
cross-checks.  This bench measures per-solve latency of both on the
``LP1`` relaxation and the exact MILP across instance sizes, so BENCH
trajectories catch routing regressions (e.g. an IR translation step
suddenly dominating solve time), and asserts objective parity — the
correctness claim behind capability routing.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.instances import random_active_time_instance
from repro.lp import solve_active_time_exact, solve_active_time_lp
from repro.lp.model import build_active_time_model
from repro.solvers import available_backend_names

#: (n jobs, horizon T, capacity g) — sized for the dense reference backend.
LP_SIZES = [(4, 6, 2), (8, 10, 3), (12, 14, 3), (16, 18, 4)]
MILP_SIZES = [(4, 6, 2), (6, 8, 3), (8, 10, 3)]


def _feasible_instance(n, T, g, rng):
    for _ in range(50):
        inst = random_active_time_instance(n, T, rng=rng)
        try:
            solve_active_time_lp(inst, g)
        except RuntimeError:
            continue
        return inst
    raise RuntimeError(f"no feasible instance found for n={n}, T={T}, g={g}")


def _time_solve(fn, repeats=3):
    best = np.inf
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_lp_latency_and_parity_across_backends(rng, emit):
    backends = [b for b in available_backend_names() if b != "mip"]
    rows = []
    for n, T, g in LP_SIZES:
        inst = _feasible_instance(n, T, g, rng)
        model = build_active_time_model(inst, g)
        timings = {}
        objectives = {}
        for backend in backends:
            sec, sol = _time_solve(
                lambda b=backend: solve_active_time_lp(
                    inst, g, model=model, backend=b
                )
            )
            timings[backend] = sec
            objectives[backend] = sol.objective
        spread = max(objectives.values()) - min(objectives.values())
        assert spread <= 1e-6, objectives
        rows.append(
            [
                f"n={n}, T={T}, g={g}",
                model.num_vars,
                *(f"{timings[b] * 1e3:.2f}" for b in backends),
                f"{timings['reference'] / timings['scipy-highs']:.1f}x",
            ]
        )
    emit(
        "E-BACKENDS / LP1 per-solve latency (ms, best of 3)",
        ["family", "vars", *backends, "ref/scipy"],
        rows,
    )


def test_milp_latency_and_parity_across_backends(rng, emit):
    backends = [b for b in available_backend_names() if b != "mip"]
    rows = []
    for n, T, g in MILP_SIZES:
        inst = _feasible_instance(n, T, g, rng)
        timings = {}
        objectives = {}
        for backend in backends:
            sec, result = _time_solve(
                lambda b=backend: solve_active_time_exact(inst, g, backend=b)
            )
            timings[backend] = sec
            objectives[backend] = result.objective
        spread = max(objectives.values()) - min(objectives.values())
        assert spread <= 1e-6, objectives
        rows.append(
            [
                f"n={n}, T={T}, g={g}",
                *(f"{timings[b] * 1e3:.2f}" for b in backends),
            ]
        )
    emit(
        "E-BACKENDS / exact MILP per-solve latency (ms, best of 3)",
        ["family", *backends],
        rows,
    )


def test_warm_start_sweep_chain_speedup(rng, emit):
    """Resident-model re-solve chains: warm vs cold on a g-sweep.

    The canonical sweep workload re-solves one instance's model across a
    chain of g values — identical sparsity, only the capacity
    coefficients change.  A resolve-capable backend keeps the model
    resident and warm-starts each re-solve; a cold solver rebuilds from
    scratch every time.  Results must be bit-for-bit equal in status and
    objective; the point of the chain is speed, never answers.
    """
    from repro.solvers import HighsBackend, structure_digest

    if not HighsBackend().available():
        pytest.skip("highs bindings unavailable")

    g_chain = tuple(range(3, 11))
    repeats = 3
    rows = []
    for n, T in [(8, 10), (12, 14), (16, 18)]:
        inst = _feasible_instance(n, T, g_chain[0], rng)
        programs = [
            build_active_time_model(inst, g).to_linear_program(
                integral=True
            )
            for g in g_chain
        ]
        # the whole chain shares one structure class — the premise of
        # the resident-model cache
        digests = {structure_digest(lp) for lp in programs}
        assert len(digests) == 1

        def run_chain(resolve: bool):
            backend = HighsBackend()
            best = np.inf
            outcomes = None
            for _ in range(repeats):
                backend.clear_resident()
                start = time.perf_counter()
                results = [
                    backend.solve(lp, options={"resolve": resolve})
                    for lp in programs
                ]
                best = min(best, time.perf_counter() - start)
                outcomes = [(r.status, r.objective) for r in results]
            return best, outcomes, backend

        cold_sec, cold_out, _ = run_chain(resolve=False)
        warm_sec, warm_out, backend = run_chain(resolve=True)

        # identical statuses and objectives, warm or cold
        for (cs, co), (ws, wo) in zip(cold_out, warm_out):
            assert cs == ws
            if co is not None:
                assert abs(co - wo) <= 1e-6
        # the chain actually ran warm after its first solve
        assert backend.resolve_stats()["hits"] >= len(g_chain) - 1

        speedup = cold_sec / warm_sec
        rows.append(
            [
                f"n={n}, T={T}",
                len(g_chain),
                f"{cold_sec * 1e3:.2f}",
                f"{warm_sec * 1e3:.2f}",
                f"{speedup:.1f}x",
            ]
        )
    emit(
        "E-BACKENDS / MILP g-sweep chain, cold rebuild vs resident warm",
        ["family", "solves", "cold (ms)", "warm (ms)", "speedup"],
        rows,
    )
    # the headline claim: resident warm chains beat cold rebuilds >= 2x
    # on at least one realistic sweep size
    best = max(float(r[-1][:-1]) for r in rows)
    assert best >= 2.0, rows
