"""LP/MILP substrate: the Section-3 program, its relaxation and exact oracles."""

from .milp import (
    MilpResult,
    solve_active_time_exact,
    solve_busy_time_flexible_exact,
    solve_busy_time_interval_exact,
    solve_unbounded_span_exact,
)
from .model import ActiveTimeModel, build_active_time_model
from .solve import ActiveTimeLPSolution, solve_active_time_lp

__all__ = [
    "ActiveTimeLPSolution",
    "ActiveTimeModel",
    "MilpResult",
    "build_active_time_model",
    "solve_active_time_exact",
    "solve_busy_time_flexible_exact",
    "solve_busy_time_interval_exact",
    "solve_unbounded_span_exact",
    "solve_active_time_lp",
]
