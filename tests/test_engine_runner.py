"""Tests for the batch runner, workers and sweep driver."""

import multiprocessing
import signal
import time

import pytest

from repro.core import Instance
from repro.engine import (
    BatchRunner,
    ResultCache,
    SweepGrid,
    TaskResult,
    build_sweep_tasks,
    default_grid,
    execute_task,
    make_task,
    run_sweep,
    write_results,
    read_results,
    aggregate,
)


def _tasks(instances, problem="active", algorithm="minimal", g=2, **kw):
    return [
        make_task(
            index=i, problem=problem, algorithm=algorithm, g=g, instance=inst, **kw
        )
        for i, inst in enumerate(instances)
    ]


@pytest.fixture
def small_instances():
    return [
        Instance.from_tuples([(0, 4, 2), (1, 5, 3)]),
        Instance.from_tuples([(0, 3, 1), (2, 6, 2), (1, 4, 2)]),
        Instance.from_tuples([(0, 2, 1)]),
    ]


class TestExecuteTask:
    def test_success(self, small_instances):
        result = execute_task(_tasks(small_instances)[0])
        assert result.ok
        assert result.objective is not None
        assert result.elapsed >= 0
        assert result.n == 2

    def test_error_capture_mentions_digest_and_seed(self):
        # Two unit jobs forced into one slot with g=1 is infeasible.
        bad = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        task = make_task(
            index=0,
            problem="active",
            algorithm="minimal",
            g=1,
            instance=bad,
            meta={"seed": 12345},
        )
        result = execute_task(task)
        assert not result.ok
        assert task.digest[:12] in result.error
        assert "seed=12345" in result.error

    def test_timeout_is_captured(self, monkeypatch, small_instances):
        import repro.engine.workers as workers

        def slow_solve(problem, name, instance, g, **params):
            import time

            time.sleep(5.0)

        monkeypatch.setattr(workers.REGISTRY, "solve", slow_solve)
        task = _tasks(small_instances[:1], timeout=0.2)[0]
        result = execute_task(task)
        assert not result.ok
        assert "timed out" in result.error
        assert result.elapsed < 2.0

    def test_record_roundtrip(self, small_instances):
        result = execute_task(_tasks(small_instances)[0])
        # ``to_record`` rounds elapsed; everything else must roundtrip.
        restored = TaskResult.from_record(result.to_record())
        assert restored.to_record() == result.to_record()


class TestBatchRunner:
    def test_serial_matches_parallel(self, small_instances):
        tasks = _tasks(small_instances * 2)
        # re-index the duplicated tasks
        tasks = [
            make_task(index=i, problem=t.problem, algorithm=t.algorithm,
                      g=t.g, instance=t.instance)
            for i, t in enumerate(tasks)
        ]
        serial = BatchRunner(jobs=1).run(tasks)
        with BatchRunner(jobs=2) as runner:
            parallel = runner.run(tasks)
        def strip(r):
            record = {**r.to_record(), "elapsed": 0.0}
            # trace spans are timings; parity holds "modulo timings"
            metrics = dict(record["metrics"])
            metrics.pop("trace", None)
            record["metrics"] = metrics
            return record
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]
        assert [r.index for r in parallel] == list(range(len(tasks)))

    def test_cache_second_run_hits_every_task(self, small_instances, tmp_path):
        tasks = _tasks(small_instances)
        cache = ResultCache(directory=tmp_path)
        runner = BatchRunner(jobs=1, cache=cache)
        runner.run(tasks)
        assert runner.last_cache_hits == 0
        second = BatchRunner(jobs=1, cache=ResultCache(directory=tmp_path))
        results = second.run(tasks)
        assert second.last_cache_hits == len(tasks)
        assert all(r.cached for r in results)

    def test_failures_are_not_cached(self, tmp_path):
        bad = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        tasks = _tasks([bad], g=1)
        cache = ResultCache(directory=tmp_path)
        runner = BatchRunner(jobs=1, cache=cache)
        assert not runner.run(tasks)[0].ok
        rerun = BatchRunner(jobs=1, cache=cache)
        rerun.run(tasks)
        assert rerun.last_cache_hits == 0

    def test_duplicate_digests_solved_once_per_run(self, small_instances):
        # Same instance submitted twice without any cache: the second
        # occurrence must reuse the first result, not re-solve.
        inst = small_instances[0]
        tasks = [
            make_task(index=i, problem="active", algorithm="minimal", g=2,
                      instance=inst, meta={"copy": i})
            for i in range(3)
        ]
        runner = BatchRunner(jobs=1)
        results = runner.run(tasks)
        assert [r.cached for r in results] == [False, True, True]
        assert runner.last_cache_hits == 2
        assert results[1].objective == results[0].objective
        assert results[2].meta == {"copy": 2}  # provenance preserved

    def test_failed_duplicates_are_retried_not_reused(self):
        # Failure reuse would pin a possibly-transient error (e.g. a
        # timeout) onto every duplicate; each must be re-executed.
        bad = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        tasks = [
            make_task(index=i, problem="active", algorithm="minimal", g=1,
                      instance=bad)
            for i in range(2)
        ]
        runner = BatchRunner(jobs=1)
        results = runner.run(tasks)
        assert [r.ok for r in results] == [False, False]
        assert [r.cached for r in results] == [False, False]
        assert runner.last_cache_hits == 0

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            BatchRunner(jobs=0)

    def test_rejects_negative_grace(self):
        with pytest.raises(ValueError):
            BatchRunner(jobs=2, watchdog_grace=-1.0)


class TestExecuteLengthInvariant:
    """The stream must carry exactly one result per pending task.

    Regression: the execution strategies used to end with
    ``[r for r in results if r is not None]`` — a dropped slot silently
    shifted every later result onto the wrong task when ``run`` zipped
    them against positions.  Completion events are now position-tagged,
    so a lost event becomes a positioned failure and a duplicated event
    is a hard error — never a silent shift.
    """

    def test_strategy_dropping_an_event_seals_a_positioned_failure(
        self, small_instances, monkeypatch
    ):
        with BatchRunner(jobs=2) as runner:
            real = runner._stream_parallel

            def dropping(work, stats, priority=0):
                events = list(real(work, stats))
                yield from events[:-1]

            monkeypatch.setattr(runner, "_stream_parallel", dropping)
            tasks = _tasks(small_instances)
            results = runner.run(tasks)
        assert len(results) == len(tasks)
        bad = [r for r in results if not r.ok]
        assert len(bad) == 1
        assert "no result" in bad[0].error
        # the failure sits at its own position: digests still line up
        for task, result in zip(tasks, results):
            assert result.digest == task.digest

    def test_strategy_repeating_an_event_is_an_error(
        self, small_instances, monkeypatch
    ):
        with BatchRunner(jobs=2) as runner:
            real = runner._stream_parallel

            def repeating(work, stats, priority=0):
                events = list(real(work, stats))
                yield from events
                yield events[0]

            monkeypatch.setattr(runner, "_stream_parallel", repeating)
            with pytest.raises(RuntimeError, match="misaligned"):
                runner.run(_tasks(small_instances))

    def test_sealed_fills_gaps_with_positioned_failures(
        self, small_instances
    ):
        tasks = _tasks(small_instances)
        results = [execute_task(t) for t in tasks]
        holed = [results[0], None, results[2]]
        sealed = BatchRunner._sealed(holed, tasks)
        assert len(sealed) == len(tasks)
        assert sealed[0] is results[0] and sealed[2] is results[2]
        assert not sealed[1].ok
        assert sealed[1].digest == tasks[1].digest
        assert "no result" in sealed[1].error

    def test_watchdog_returns_one_result_per_task(self, small_instances):
        # All-success path through the watchdog pool: exact length, no
        # filtering, deterministic order.
        tasks = _tasks(small_instances, timeout=30.0)
        with BatchRunner(jobs=2) as runner:
            results = runner.run(tasks)
        assert [r.index for r in results] == [0, 1, 2]
        assert all(r.ok for r in results)


def _stuck_solver(instance, g):
    """Simulate a solver wedged in native code: SIGALRM cannot fire."""
    signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
    time.sleep(60.0)


def _dying_solver(instance, g):
    """Simulate a worker killed mid-task (OOM killer, segfault, ...)."""
    import os

    os._exit(13)


_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="test registers a solver that only fork-children inherit",
)


@_FORK_ONLY
class TestWatchdog:
    """Parent-side watchdog: kill and replace workers stuck past deadline."""

    @pytest.fixture(autouse=True)
    def stuck_solver(self):
        yield from self._temp_solver(
            "stuck-watchdog-test",
            _stuck_solver,
            "blocks SIGALRM then sleeps (test only)",
        )

    @pytest.fixture
    def dying_solver(self):
        yield from self._temp_solver(
            "dying-watchdog-test",
            _dying_solver,
            "kills its own worker process (test only)",
        )

    @staticmethod
    def _temp_solver(name, fn, description):
        from repro.engine.registry import REGISTRY, SolverSpec

        if ("active", name) not in REGISTRY:
            REGISTRY.register(
                SolverSpec(
                    problem="active",
                    name=name,
                    solve=fn,
                    exact=False,
                    guarantee="-",
                    complexity="-",
                    description=description,
                )
            )
        yield name
        # keep the global registry pristine for registry-completeness tests
        REGISTRY._specs.pop(("active", name), None)

    def test_stuck_worker_is_killed_and_replaced(
        self, stuck_solver, small_instances
    ):
        # Tasks 0 and 2 wedge their workers; task 1 must still succeed
        # and the batch must finish in ~timeout, not ~60s.
        tasks = [
            make_task(
                index=i,
                problem="active",
                algorithm=stuck_solver if i != 1 else "minimal",
                g=2,
                instance=inst,
                timeout=0.4,
            )
            for i, inst in enumerate(small_instances)
        ]
        with BatchRunner(jobs=2, watchdog_grace=0.2) as runner:
            start = time.perf_counter()
            results = runner.run(tasks)
            elapsed = time.perf_counter() - start
        assert [r.ok for r in results] == [False, True, False]
        assert "watchdog" in results[0].error
        assert "timed out" in results[2].error
        assert runner.last_watchdog_kills == 2
        assert elapsed < 15.0

    def test_timeouts_from_watchdog_are_not_cached(
        self, stuck_solver, small_instances, tmp_path
    ):
        cache = ResultCache(directory=tmp_path)
        tasks = [
            make_task(
                index=i,
                problem="active",
                algorithm=stuck_solver,
                g=2,
                instance=inst,
                timeout=0.3,
            )
            for i, inst in enumerate(small_instances[:2])
        ]
        with BatchRunner(jobs=2, cache=cache, watchdog_grace=0.1) as runner:
            runner.run(tasks)
        assert cache.disk_usage() == (0, 0)

    def test_failed_duplicate_retry_keeps_watchdog(
        self, stuck_solver, small_instances
    ):
        # Both tasks share a digest; the dup retry of the failed first
        # occurrence must also run under the watchdog, not inline in
        # the parent (which would hang on a natively-wedged solver).
        inst = small_instances[0]
        tasks = [
            make_task(index=i, problem="active", algorithm=stuck_solver,
                      g=2, instance=inst, timeout=0.3)
            for i in range(2)
        ]
        with BatchRunner(jobs=2, watchdog_grace=0.2) as runner:
            start = time.perf_counter()
            results = runner.run(tasks)
            elapsed = time.perf_counter() - start
        assert [r.ok for r in results] == [False, False]
        assert all("watchdog" in r.error for r in results)
        assert elapsed < 15.0

    def test_worker_death_mid_task_is_replaced_and_positioned(
        self, dying_solver, small_instances
    ):
        # Tasks 0 and 2 kill their worker processes outright; each must
        # get a fresh replacement worker and an ok=False record at its
        # own position, and task 1 must still succeed.
        tasks = [
            make_task(
                index=i,
                problem="active",
                algorithm=dying_solver if i != 1 else "minimal",
                g=2,
                instance=inst,
                timeout=20.0,
            )
            for i, inst in enumerate(small_instances)
        ]
        with BatchRunner(jobs=2) as runner:
            results = runner.run(tasks)
        assert len(results) == len(tasks)
        assert [r.ok for r in results] == [False, True, False]
        assert [r.index for r in results] == [0, 1, 2]
        for pos in (0, 2):
            assert results[pos].digest == tasks[pos].digest
            assert "died" in results[pos].error
        # deaths are not timeouts: the watchdog never had to fire
        assert runner.last_watchdog_kills == 0

    def test_dead_duplicates_are_retried_through_the_watchdog(
        self, dying_solver, small_instances
    ):
        # Duplicate of a task whose worker died: the retry must go back
        # through the watchdog pool (an inline retry would kill the
        # parent-side guarantees for wedged solvers) and must also come
        # back as a positioned failure.
        inst = small_instances[0]
        tasks = [
            make_task(index=i, problem="active", algorithm=dying_solver,
                      g=2, instance=inst, timeout=20.0)
            for i in range(2)
        ]
        with BatchRunner(jobs=2) as runner:
            results = runner.run(tasks)
        assert [r.ok for r in results] == [False, False]
        assert [r.index for r in results] == [0, 1]
        assert all("died" in r.error for r in results)

    def test_python_level_timeout_still_uses_sigalrm(self, small_instances):
        # A sleeping (not wedged) solver is interrupted by SIGALRM inside
        # the grace window, so the watchdog never has to kill anything.
        tasks = _tasks(small_instances[:2], timeout=30.0)
        with BatchRunner(jobs=2) as runner:
            results = runner.run(tasks)
        assert all(r.ok for r in results)
        assert runner.last_watchdog_kills == 0


class TestSweep:
    def test_grid_is_deterministic(self):
        grids = [default_grid("active")]
        a = build_sweep_tasks(grids, base_seed=7)
        b = build_sweep_tasks(grids, base_seed=7)
        assert [t.digest for t in a] == [t.digest for t in b]

    def test_seed_shared_across_algorithms_within_cell(self):
        grid = SweepGrid(
            problem="active",
            generators=("active",),
            algorithms=("minimal", "rounding"),
            g_values=(3,),
            instances_per_cell=1,
        )
        tasks = build_sweep_tasks([grid])
        assert len(tasks) == 2
        assert tasks[0].instance == tasks[1].instance

    def test_limit_caps_tasks(self):
        tasks = build_sweep_tasks([default_grid("active")], limit=4)
        assert len(tasks) == 4

    def test_validate_rejects_mismatched_generator(self):
        grid = SweepGrid(
            problem="active", generators=("interval",), algorithms=("minimal",)
        )
        with pytest.raises(ValueError, match="does not produce"):
            grid.validate()

    def test_instance_seeds_distinct_across_registered_generators(self):
        # Regression: the seed mix used to fold the generator hash
        # through ``% 97``, so two generator names could collide and
        # silently share instances (and digests) across families.
        from repro.engine.sweep import _instance_seed
        from repro.instances import SWEEP_GENERATORS

        for g in (1, 2, 3):
            for rep in range(3):
                seeds = {
                    gen: _instance_seed(2014, gen, g, rep)
                    for gen in SWEEP_GENERATORS
                }
                assert len(set(seeds.values())) == len(seeds), seeds

    def test_seed_uses_full_hash_not_mod_97(self):
        # Construct two names that collide under the old ``% 97`` fold
        # but have different full hashes: they must get distinct seeds.
        from repro.engine.sweep import _instance_seed, hash_str

        by_residue = {}
        collision = None
        for i in range(10_000):
            name = f"gen-{i}"
            residue = hash_str(name) % 97
            other = by_residue.setdefault(residue, name)
            if other != name and hash_str(other) != hash_str(name):
                collision = (other, name)
                break
        assert collision is not None
        a, b = collision
        assert hash_str(a) % 97 == hash_str(b) % 97
        assert _instance_seed(2014, a, 2, 0) != _instance_seed(2014, b, 2, 0)

    def test_run_sweep_aggregates(self, tmp_path):
        outcome = run_sweep(
            [default_grid("active")], jobs=1, limit=6,
            cache=ResultCache(directory=tmp_path),
        )
        assert len(outcome.results) == 6
        assert "active/minimal" in outcome.table
        assert "tasks: 6" in outcome.summary


class TestResultsStore:
    def test_jsonl_roundtrip(self, small_instances, tmp_path):
        results = BatchRunner(jobs=1).run(_tasks(small_instances))
        path = tmp_path / "r.jsonl"
        assert write_results(results, path) == len(results)
        restored = list(read_results(path))
        assert [r.to_record() for r in restored] == [
            r.to_record() for r in results
        ]

    def test_append_mode(self, small_instances, tmp_path):
        results = BatchRunner(jobs=1).run(_tasks(small_instances[:1]))
        path = tmp_path / "r.jsonl"
        write_results(results, path)
        write_results(results, path, append=True)
        assert len(list(read_results(path))) == 2

    def test_aggregate_counts_errors_and_hits(self, small_instances):
        ok = BatchRunner(jobs=1).run(_tasks(small_instances))
        bad = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        err = BatchRunner(jobs=1).run(_tasks([bad], g=1, algorithm="unit"))
        rows = aggregate(ok + err)
        by_cell = {r["cell"]: r for r in rows}
        assert by_cell["active/minimal g=2"]["errors"] == 0
        assert by_cell["active/unit g=1"]["errors"] == 1


class TestStructureAffinity:
    def test_sweep_tasks_carry_structure_groups(self):
        from repro.engine import SweepGrid, build_sweep_tasks

        tasks = build_sweep_tasks(
            [
                SweepGrid(
                    problem="active",
                    generators=("active", "tight"),
                    algorithms=("minimal", "rounding"),
                    g_values=(3, 4),
                    instances_per_cell=2,
                )
            ]
        )
        groups = [t.structure_group for t in tasks]
        assert all(g is not None for g in groups)
        # one group per (generator, algorithm) pair
        assert len(set(groups)) == 4
        # grouping never feeds the digest: the group label lives in meta
        assert all("structure_group" in t.meta for t in tasks)
        # groups are contiguous runs in the expansion order, so a sticky
        # worker sees its whole chain back-to-back
        seen: list[str] = []
        for g in groups:
            if not seen or seen[-1] != g:
                assert g not in seen, f"group {g} not contiguous"
                seen.append(g)

    def test_structure_group_property_guards_type(self, small_instances):
        from repro.engine import make_task

        task = make_task(
            0, "active", "minimal", 2, small_instances[0],
            meta={"structure_group": 42},
        )
        assert task.structure_group is None
        assert make_task(
            0, "active", "minimal", 2, small_instances[0]
        ).structure_group is None

    def _grouped_work(self, small_instances, groups):
        from collections import deque

        from repro.engine import make_task

        return deque(
            (
                i,
                make_task(
                    i, "active", "minimal", 2, small_instances[0],
                    meta=(
                        {"structure_group": g} if g is not None else {}
                    ),
                ),
            )
            for i, g in enumerate(groups)
        )

    def test_take_task_prefers_bound_group(self, small_instances):
        from repro.engine.runner import BatchRunner

        w1, w2 = object(), object()
        held = [w1, w2]
        work = self._grouped_work(small_instances, ["A", "B", "A"])
        affinity = {}
        # w1 takes the head and binds group A
        pos, task = BatchRunner._take_task(work, w1, affinity, held)
        assert pos == 0 and affinity["A"] is w1
        # w2 skips A's continuation (bound to live w1) and takes B
        pos, task = BatchRunner._take_task(work, w2, affinity, held)
        assert pos == 1 and affinity["B"] is w2
        # w1 gets its own group's continuation
        pos, task = BatchRunner._take_task(work, w1, affinity, held)
        assert pos == 2 and not work

    def test_take_task_steals_rather_than_idles(self, small_instances):
        from repro.engine.runner import BatchRunner

        w1, w2 = object(), object()
        held = [w1, w2]
        work = self._grouped_work(small_instances, ["A", "A"])
        affinity = {}
        BatchRunner._take_task(work, w1, affinity, held)
        # every queued task belongs to w1's group, but w2 must not idle:
        # it steals the head and the group rebinds
        pos, task = BatchRunner._take_task(work, w2, affinity, held)
        assert pos == 1 and affinity["A"] is w2

    def test_take_task_rebinds_groups_of_departed_workers(
        self, small_instances
    ):
        from repro.engine.runner import BatchRunner

        gone, alive = object(), object()
        held = [alive]  # ``gone`` was killed/replaced or shed
        work = self._grouped_work(small_instances, ["A"])
        affinity = {"A": gone}
        pos, task = BatchRunner._take_task(work, alive, affinity, held)
        assert pos == 0 and affinity["A"] is alive

    def test_take_task_prefers_ungrouped_over_foreign_group(
        self, small_instances
    ):
        from repro.engine.runner import BatchRunner

        w1, w2 = object(), object()
        held = [w1, w2]
        work = self._grouped_work(small_instances, ["A", None])
        affinity = {"A": w1}
        pos, task = BatchRunner._take_task(work, w2, affinity, held)
        assert pos == 1 and task.structure_group is None

    def test_grouped_tasks_route_to_watchdog_when_parallel(
        self, small_instances
    ):
        from repro.engine import make_task
        from repro.engine.runner import BatchRunner

        grouped = [
            make_task(
                i, "active", "minimal", 3, small_instances[i % 2],
                meta={"structure_group": "G"},
            )
            for i in range(4)
        ]
        plain = [
            make_task(i, "active", "minimal", 3, small_instances[i % 2])
            for i in range(4)
        ]
        with BatchRunner(jobs=2) as runner:
            work = [(i, t) for i, t in enumerate(grouped)]
            assert (
                runner._pick_strategy(grouped, work)
                == runner._stream_watchdog
            )
            assert (
                runner._pick_strategy(plain, work)
                == runner._stream_parallel
            )
        # jobs=1 stays serial regardless of grouping
        with BatchRunner(jobs=1) as runner:
            assert (
                runner._pick_strategy(grouped, work)
                == runner._stream_serial
            )

    def test_grouped_sweep_results_match_serial(self):
        from repro.engine import SweepGrid, run_sweep

        grid = SweepGrid(
            problem="active",
            generators=("active",),
            algorithms=("minimal", "rounding"),
            g_values=(3,),
            instances_per_cell=2,
        )
        serial = run_sweep([grid], jobs=1)
        parallel = run_sweep([grid], jobs=2)
        assert [r.objective for r in serial.results] == [
            r.objective for r in parallel.results
        ]
        assert [r.ok for r in serial.results] == [
            r.ok for r in parallel.results
        ]
