"""The flexible-job pipeline: pin via ``OPT_inf``, then pack intervals.

Section 4.3: convert the flexible instance to interval jobs by fixing every
job where the unbounded-capacity solution scheduled it, then run an interval
algorithm on the pinned instance.  With GREEDYTRACKING the overall guarantee
is 3 (Theorem 5); with the 2-approximation interval algorithms it is 4, and
Figure 10 shows that 4 is tight for that combination — the reason
GREEDYTRACKING is the paper's headline busy-time result.
"""

from __future__ import annotations

from typing import Callable, Literal, Mapping

from ..core.jobs import Instance
from ..core.validation import require_capacity
from .firstfit import first_fit
from .greedy_tracking import greedy_tracking
from .kumar_rudra import kumar_rudra
from .schedule import BusyTimeSchedule
from .two_approx import chain_peeling_two_approx
from .unbounded import opt_infinity, pin_instance

__all__ = ["schedule_flexible", "INTERVAL_ALGORITHMS", "IntervalAlgorithm"]

IntervalAlgorithm = Literal[
    "greedy_tracking", "first_fit", "chain_peeling", "kumar_rudra"
]

#: Registry of interval-job packers usable as the pipeline's second stage.
INTERVAL_ALGORITHMS: dict[str, Callable[[Instance, int], BusyTimeSchedule]] = {
    "greedy_tracking": greedy_tracking,
    "first_fit": first_fit,
    "chain_peeling": chain_peeling_two_approx,
    "kumar_rudra": kumar_rudra,
}


def schedule_flexible(
    instance: Instance,
    g: int,
    *,
    algorithm: IntervalAlgorithm = "greedy_tracking",
    starts: Mapping[int, float] | None = None,
    backend: str | None = None,
) -> BusyTimeSchedule:
    """Schedule a (possibly flexible) instance for bounded ``g``.

    Parameters
    ----------
    algorithm:
        Interval packer for the second stage.  ``"greedy_tracking"`` gives
        the paper's 3-approximation (Theorem 5); the 2-approximate interval
        algorithms give 4 overall (Theorem 10).
    starts:
        Optional explicit placement overriding the ``OPT_inf`` solver —
        required for non-integral flexible instances, and how the paper's
        adversarial figures pin dynamic-program outputs.
    backend:
        MILP backend for the ``OPT_inf`` pinning solve (only reached on
        flexible instances without explicit ``starts``).

    The returned schedule's ``starts`` record the chosen placement; bundle
    jobs are the pinned interval copies.
    """
    require_capacity(g)
    if algorithm not in INTERVAL_ALGORITHMS:
        raise ValueError(
            f"unknown interval algorithm {algorithm!r}; "
            f"choose from {sorted(INTERVAL_ALGORITHMS)}"
        )
    if instance.n == 0:
        return BusyTimeSchedule.from_bundle_jobs(instance, g, [])

    if starts is None:
        placement = opt_infinity(instance, backend=backend)
        chosen = placement.starts
    else:
        chosen = {j.id: starts[j.id] for j in instance.jobs}

    pinned = pin_instance(instance, chosen)
    packed = INTERVAL_ALGORITHMS[algorithm](pinned, g)
    return BusyTimeSchedule(
        instance=instance,
        g=g,
        bundles=packed.bundles,
        starts=dict(chosen),
    )
