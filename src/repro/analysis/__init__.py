"""Measurement helpers: approximation ratios and report formatting."""

from .experiments import EXPERIMENTS, Experiment, run_all, run_experiment
from .ratios import (
    RatioSample,
    RatioSummary,
    collect_ratios,
    summarize,
    summarize_groups,
)
from .report import format_series, format_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "run_all",
    "run_experiment",
    "RatioSample",
    "RatioSummary",
    "collect_ratios",
    "format_series",
    "format_table",
    "summarize",
    "summarize_groups",
]
