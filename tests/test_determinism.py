"""Determinism: every algorithm yields identical output across repeat runs.

Reproducibility is a stated property of the library (seeded generators,
deterministic tie-breaking); these tests pin it down so an accidental
set-iteration or dict-ordering dependency cannot creep in silently.
"""

import pytest

from repro.activetime import (
    exact_active_time,
    minimal_feasible_schedule,
    round_active_time,
)
from repro.busytime import (
    chain_peeling_two_approx,
    first_fit,
    greedy_tracking,
    greedy_unbounded_preemptive,
    kumar_rudra,
    preemptive_bounded,
    schedule_flexible,
)
from repro.instances import random_active_time_instance, random_interval_instance


def bundle_signature(schedule):
    return sorted(tuple(b.job_ids()) for b in schedule.bundles)


class TestBusyTimeDeterminism:
    @pytest.mark.parametrize(
        "algo",
        [first_fit, greedy_tracking, chain_peeling_two_approx, kumar_rudra],
        ids=lambda f: f.__name__,
    )
    def test_repeat_runs_identical(self, algo, rng):
        inst = random_interval_instance(15, 24.0, rng=rng)
        a = algo(inst, 3)
        b = algo(inst, 3)
        assert bundle_signature(a) == bundle_signature(b)
        assert a.total_busy_time == b.total_busy_time

    def test_flexible_pipeline_deterministic(self, rng):
        from repro.instances import random_flexible_instance

        inst = random_flexible_instance(10, 15, rng=rng)
        a = schedule_flexible(inst, 2)
        b = schedule_flexible(inst, 2)
        assert a.starts == b.starts
        assert bundle_signature(a) == bundle_signature(b)

    def test_preemptive_deterministic(self, rng):
        from repro.instances import random_flexible_instance

        inst = random_flexible_instance(10, 15, rng=rng)
        a = greedy_unbounded_preemptive(inst)
        b = greedy_unbounded_preemptive(inst)
        assert a.pieces == b.pieces
        c = preemptive_bounded(inst, 2)
        d = preemptive_bounded(inst, 2)
        assert sorted(map(repr, c.pieces)) == sorted(map(repr, d.pieces))


def feasible_active_instance(rng, n=10, t=12, g=2):
    """Draw until a g-feasible instance appears (bounded retries)."""
    from repro.flow import is_feasible_slot_set

    for _ in range(20):
        inst = random_active_time_instance(n, t, rng=rng)
        if is_feasible_slot_set(inst, g, range(1, t + 1)):
            return inst
    raise AssertionError("no feasible draw in 20 tries")


class TestActiveTimeDeterminism:
    def test_minimal_feasible_fixed_order(self, rng):
        inst = feasible_active_instance(rng)
        a = minimal_feasible_schedule(inst, 2, order="left")
        b = minimal_feasible_schedule(inst, 2, order="left")
        assert a.active_slots == b.active_slots

    def test_rounding_deterministic(self, rng):
        inst = feasible_active_instance(rng)
        a = round_active_time(inst, 2)
        b = round_active_time(inst, 2)
        assert a.schedule.active_slots == b.schedule.active_slots
        assert [it.action for it in a.iterations] == [
            it.action for it in b.iterations
        ]

    def test_exact_value_stable(self, rng):
        inst = feasible_active_instance(rng, n=8, t=10)
        a = exact_active_time(inst, 2)
        b = exact_active_time(inst, 2)
        assert a.cost == b.cost
