"""Tests for the width/demand generalization (Khandekar et al.)."""

import pytest

from repro.busytime import (
    WidthInstance,
    WidthJob,
    first_fit_with_widths,
    khandekar_narrow_wide,
    width_mass_lower_bound,
    width_profile_lower_bound,
)
from repro.core import Job
from repro.instances import random_interval_instance


def random_width_instance(rng, n, g):
    base = random_interval_instance(n, 18.0, rng=rng)
    return WidthInstance(
        tuple(
            WidthJob(j, float(rng.uniform(0.3, g)))
            for j in base.jobs
        )
    )


class TestModel:
    def test_width_job_validation(self):
        with pytest.raises(ValueError, match="width"):
            WidthJob(Job(0, 2, 2, id=0), 0.0)
        with pytest.raises(ValueError, match="interval"):
            WidthJob(Job(0, 5, 2, id=0), 1.0)

    def test_from_tuples(self):
        wi = WidthInstance.from_tuples([(0, 2, 1.5), (1, 3, 0.5)])
        assert wi.n == 2
        assert wi.jobs[0].width == 1.5
        assert wi.jobs[0].job.is_interval

    def test_uniform_lift(self, interval_instance):
        wi = WidthInstance.uniform(interval_instance, 2.0)
        assert all(wj.width == 2.0 for wj in wi.jobs)

    def test_total_width_at(self):
        wi = WidthInstance.from_tuples([(0, 2, 1.5), (1, 3, 0.5)])
        assert wi.total_width_at(1.5) == pytest.approx(2.0)
        assert wi.total_width_at(0.5) == pytest.approx(1.5)
        assert wi.total_width_at(5.0) == 0.0

    def test_bundle_peak_width(self):
        wi = WidthInstance.from_tuples([(0, 2, 1.5), (1, 3, 0.5)])
        from repro.busytime import WidthBundle

        b = WidthBundle(wi.jobs)
        assert b.peak_width() == pytest.approx(2.0)
        assert b.busy_time == pytest.approx(3.0)


class TestLowerBounds:
    def test_mass(self):
        wi = WidthInstance.from_tuples([(0, 2, 3.0), (0, 2, 1.0)])
        assert width_mass_lower_bound(wi, 2) == pytest.approx((6 + 2) / 2)

    def test_profile(self):
        wi = WidthInstance.from_tuples([(0, 2, 3.0), (0, 2, 1.0)])
        # W = 4 over [0,2): ceil(4/2)=2 machines for 2 units of time
        assert width_profile_lower_bound(wi, 2) == pytest.approx(4.0)

    def test_profile_reduces_to_unit_case(self, rng, interval_instance):
        from repro.busytime import demand_profile_lower_bound

        wi = WidthInstance.uniform(interval_instance, 1.0)
        assert width_profile_lower_bound(wi, 2) == pytest.approx(
            demand_profile_lower_bound(interval_instance, 2)
        )


class TestAlgorithms:
    def test_first_fit_verifies(self, rng):
        for _ in range(10):
            g = int(rng.integers(2, 6))
            wi = random_width_instance(rng, 10, g)
            s = first_fit_with_widths(wi, g)
            s.verify()

    def test_first_fit_rejects_too_wide(self):
        wi = WidthInstance.from_tuples([(0, 2, 5.0)])
        with pytest.raises(ValueError, match="width"):
            first_fit_with_widths(wi, 2)

    def test_narrow_wide_verifies(self, rng):
        for _ in range(10):
            g = int(rng.integers(2, 6))
            wi = random_width_instance(rng, 12, g)
            s = khandekar_narrow_wide(wi, g)
            s.verify()

    def test_narrow_wide_within_5x_profile(self, rng):
        for _ in range(15):
            g = int(rng.integers(2, 6))
            wi = random_width_instance(rng, 12, g)
            s = khandekar_narrow_wide(wi, g)
            lb = max(
                width_mass_lower_bound(wi, g),
                width_profile_lower_bound(wi, g),
            )
            assert s.total_busy_time <= 5 * lb + 1e-6

    def test_unit_width_matches_plain_first_fit(self, rng, interval_instance):
        from repro.busytime import first_fit

        wi = WidthInstance.uniform(interval_instance, 1.0)
        s = first_fit_with_widths(wi, 2)
        plain = first_fit(interval_instance, 2)
        assert s.total_busy_time == pytest.approx(plain.total_busy_time)

    def test_wide_jobs_never_overlap_on_machine(self, rng):
        g = 4
        wi = random_width_instance(rng, 12, g)
        s = khandekar_narrow_wide(wi, g)
        for b in s.bundles:
            wides = [wj for wj in b.jobs if wj.width > g / 2]
            for i, a in enumerate(wides):
                for c in wides[i + 1 :]:
                    lo = max(a.window[0], c.window[0])
                    hi = min(a.window[1], c.window[1])
                    assert lo >= hi - 1e-9

    def test_empty(self):
        wi = WidthInstance(tuple())
        assert khandekar_narrow_wide(wi, 3).total_busy_time == 0.0
