"""E20 (engineering) — fabric scale-out: two serve hosts vs one.

Not a paper claim: pins what the work-stealing remote dispatcher buys.
Two real ``repro serve`` processes (one worker each, caches off so every
dispatch is a real solve) are driven through :class:`RemoteDispatcher`
over the same sweep grid, once against a single host and once against
both.  With per-host windows of one, a host solves its tasks serially —
so the fabric's wall clock must drop by roughly the host count, and we
pin ≥1.6x for 2 hosts vs 1.

The per-task solve cost is emulated with a fixed 0.12s pace rather than
a spin loop: CI may pin this suite to a single core, where two processes
burning CPU cannot beat one no matter how good the dispatcher is.  The
quantity under test — per-host serial windows overlapping across hosts,
minus dispatch/transport overhead — is identical either way.

Correctness rides along: per-task statuses and objectives from both
remote runs must be identical to a local :class:`BatchRunner` run of the
same grid.
"""

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import BatchRunner, SweepGrid
from repro.engine.registry import REGISTRY, SolveOutcome, SolverSpec
from repro.engine.sweep import build_sweep_tasks
from repro.fabric import RemoteDispatcher

_PACE = 0.12
_SRC = str(Path(__file__).resolve().parents[1] / "src")
_MIN_SPEEDUP = 1.6

_SERVER_BOOT = f"""
import sys, time
from repro.engine.registry import REGISTRY, SolveOutcome, SolverSpec

def _paced(instance, g, **params):
    time.sleep({_PACE})
    return SolveOutcome(
        objective=float(g) + sum(j.length for j in instance.jobs)
    )

REGISTRY.register(
    SolverSpec(
        problem="busy",
        name="fabric-pace",
        solve=_paced,
        exact=False,
        guarantee="-",
        complexity="-",
        description="fixed-cost solver (fabric benchmark only)",
    )
)
from repro.cli import main
sys.exit(main(["serve", "--port", "0", "--jobs", "1", "--no-cache"]))
"""


def _paced_local(instance, g, **params):
    time.sleep(_PACE)
    return SolveOutcome(
        objective=float(g) + sum(j.length for j in instance.jobs)
    )


@pytest.fixture
def paced_solver():
    name = "fabric-pace"
    if ("busy", name) not in REGISTRY:
        REGISTRY.register(
            SolverSpec(
                problem="busy",
                name=name,
                solve=_paced_local,
                exact=False,
                guarantee="-",
                complexity="-",
                description="fixed-cost solver (fabric benchmark only)",
            )
        )
    yield name
    REGISTRY._specs.pop(("busy", name), None)


def _start_server():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", _SERVER_BOOT],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError("benchmark server died at startup")
        match = re.search(r"(http://[\d.]+:\d+)", line)
        if match:
            return proc, match.group(1)
    proc.kill()
    raise RuntimeError("benchmark server did not announce its port")


def _stop(proc):
    if proc.poll() is None:
        proc.kill()
    proc.stdout.close()
    proc.wait(timeout=10)


@pytest.fixture
def two_servers():
    p1, url1 = _start_server()
    try:
        p2, url2 = _start_server()
    except Exception:
        _stop(p1)
        raise
    yield url1, url2
    _stop(p1)
    _stop(p2)


def _fingerprint(results):
    return [(r.index, r.ok, r.objective) for r in results]


def test_two_hosts_beat_one_by_1_6x(paced_solver, two_servers, emit):
    url1, url2 = two_servers
    grid = SweepGrid(
        problem="busy",
        generators=("interval",),
        algorithms=(paced_solver,),
        g_values=(2, 3),
        instances_per_cell=6,
        n=8,
        horizon=20,
    )
    # Disjoint seeds per measurement: the servers keep a memory-only
    # dedupe cache even with --no-cache (by design — it is what makes
    # re-dispatch after host loss cheap), so re-running the same digests
    # against a warm host would measure cache hits, not dispatch.
    tasks_one = build_sweep_tasks([grid], base_seed=101)
    tasks_two = build_sweep_tasks([grid], base_seed=202)
    assert len(tasks_one) == len(tasks_two) == 12

    # Ground truth: the same grids through the local engine.
    with BatchRunner(jobs=1) as runner:
        local_one = runner.run(tasks_one)
        local_two = runner.run(tasks_two)

    start = time.perf_counter()
    single = RemoteDispatcher([url1], http_timeout=60.0).run(tasks_one)
    t_one = time.perf_counter() - start

    start = time.perf_counter()
    both = RemoteDispatcher([url1, url2], http_timeout=60.0).run(tasks_two)
    t_two = time.perf_counter() - start

    # Identical work, host count aside: statuses and objectives must
    # match the local engine exactly — and every remote solve must have
    # been a real solve, not a warm-cache echo.
    assert all(r.ok for r in local_one) and all(r.ok for r in local_two)
    assert _fingerprint(single) == _fingerprint(local_one)
    assert _fingerprint(both) == _fingerprint(local_two)
    assert not any(r.cached for r in single + both)

    speedup = t_one / t_two
    ideal = len(tasks_one) * _PACE
    emit(
        "fabric scale-out (12 paced tasks, window 1 per host)",
        ["hosts", "wall s", "serial-floor s", "speedup"],
        [
            [1, f"{t_one:.3f}", f"{ideal:.2f}", "1.00"],
            [2, f"{t_two:.3f}", f"{ideal / 2:.2f}", f"{speedup:.2f}"],
        ],
    )
    assert speedup >= _MIN_SPEEDUP, (
        f"2-host fabric only {speedup:.2f}x faster than 1 host "
        f"({t_two:.3f}s vs {t_one:.3f}s); expected >= {_MIN_SPEEDUP}x"
    )
