"""Tests for the flexible-job pipeline (Section 4.3, Theorems 5 and 10)."""

import pytest

from repro.busytime import (
    INTERVAL_ALGORITHMS,
    exact_busy_time_flexible,
    greedy_unbounded_preemptive,
    mass_lower_bound,
    opt_infinity,
    schedule_flexible,
)
from repro.core import Instance
from repro.instances import random_flexible_instance, random_interval_instance


class TestPipeline:
    def test_verifies_all_algorithms(self, rng):
        inst = random_flexible_instance(8, 12, rng=rng)
        for name in INTERVAL_ALGORITHMS:
            s = schedule_flexible(inst, 2, algorithm=name)
            s.verify()

    def test_unknown_algorithm(self, rng):
        inst = random_flexible_instance(4, 8, rng=rng)
        with pytest.raises(ValueError, match="unknown interval algorithm"):
            schedule_flexible(inst, 2, algorithm="wishful")

    def test_starts_recorded(self, rng):
        inst = random_flexible_instance(6, 10, rng=rng)
        s = schedule_flexible(inst, 2)
        assert set(s.starts) == {j.id for j in inst.jobs}
        for j in inst.jobs:
            assert j.can_start_at(s.starts[j.id])

    def test_explicit_starts_respected(self, rng):
        inst = random_flexible_instance(6, 10, rng=rng)
        starts = {j.id: float(j.release) for j in inst.jobs}
        s = schedule_flexible(inst, 2, starts=starts)
        assert s.starts == starts

    def test_empty(self):
        s = schedule_flexible(Instance(tuple()), 2)
        assert s.total_busy_time == 0.0

    def test_interval_instance_passthrough(self, rng):
        from repro.busytime import greedy_tracking

        inst = random_interval_instance(8, 14.0, rng=rng)
        via_pipeline = schedule_flexible(inst, 2)
        direct = greedy_tracking(inst, 2)
        assert via_pipeline.total_busy_time == pytest.approx(
            direct.total_busy_time
        )


class TestGuarantees:
    def test_greedy_tracking_3x_bound(self, rng):
        """Theorem 5: pipeline cost <= OPT_inf + 2 mass/g <= 3 OPT."""
        for _ in range(12):
            inst = random_flexible_instance(8, 12, rng=rng)
            g = int(rng.integers(1, 4))
            s = schedule_flexible(inst, g, algorithm="greedy_tracking")
            placement = opt_infinity(inst)
            bound = placement.busy_time + 2 * mass_lower_bound(inst, g)
            assert s.total_busy_time <= bound + 1e-6
            lower = max(placement.busy_time, mass_lower_bound(inst, g))
            assert s.total_busy_time <= 3 * lower + 1e-6

    def test_two_approx_algorithms_4x_bound(self, rng):
        """Theorem 10: the extended 2-approximations stay within 4 OPT."""
        for _ in range(10):
            inst = random_flexible_instance(7, 11, rng=rng)
            g = int(rng.integers(1, 4))
            placement = opt_infinity(inst)
            lower = max(placement.busy_time, mass_lower_bound(inst, g))
            for name in ("chain_peeling", "kumar_rudra"):
                s = schedule_flexible(inst, g, algorithm=name)
                assert s.total_busy_time <= 4 * lower + 1e-6

    def test_vs_exact_small(self, rng):
        for _ in range(5):
            inst = random_flexible_instance(5, 8, rng=rng)
            g = int(rng.integers(1, 3))
            opt = exact_busy_time_flexible(inst, g).total_busy_time
            s = schedule_flexible(inst, g, algorithm="greedy_tracking")
            assert s.total_busy_time <= 3 * opt + 1e-6

    def test_preemptive_lower_bounds_nonpreemptive(self, rng):
        for _ in range(8):
            inst = random_flexible_instance(6, 10, rng=rng)
            pre = greedy_unbounded_preemptive(inst).total_busy_time
            placement = opt_infinity(inst)
            assert pre <= placement.busy_time + 1e-6
