"""Work-stealing remote dispatcher over many ``repro serve`` hosts.

:class:`RemoteDispatcher` turns N serving hosts into one sweep engine:
tasks go into a single global pending deque, every host runs a bounded
window of dispatch threads (the window sized from the capacity report
in ``GET /healthz``), and an idle host steals the next queued task the
moment a slot frees up — fast hosts naturally do more of the work, no
static sharding to mis-balance.  Results stream back merged **in task
order**, mirroring :meth:`repro.engine.runner.BatchRunner.run_stream`.

Failure semantics
-----------------
* A transport failure or 5xx answer (``ServeClientError`` with
  ``status == 0`` or ``>= 500``) re-queues the task for surviving hosts
  and marks the host *down*; one of its threads becomes the prober and
  re-checks ``/healthz`` on an exponential backoff (capped), so a
  bounced server rejoins the fabric automatically.
* A task that keeps failing in transport gives up after
  ``max_task_attempts`` tries with an ``ok=False`` result — a sweep
  never hangs on a permanently dead fabric.  If *every* host stays down
  longer than ``all_down_grace`` seconds, all still-queued tasks are
  failed the same way.
* 4xx answers are deterministic validation errors: they become
  ``ok=False`` results immediately, never retries.

Dedupe rides the content digests end to end: duplicate tasks within one
run are dispatched once and their results fanned out locally
(``cached=True``), and a task re-dispatched after a host loss is served
from the surviving host's cache if any host solved it before — the
digest is the same everywhere.

Sticky structure affinity carries over from the local runner: tasks
tagged with a ``structure_group`` prefer the host their group last ran
on (that host's resident-model cache holds the warm chain), but an idle
host steals and rebinds rather than letting work queue — placement is
shaped, never starved.

Instrumented with :mod:`repro.obs`: per-host dispatched / completed /
retried counters, in-flight and host-up gauges, and a per-host task
latency histogram (all labeled ``host``), visible on any ``/metrics``
endpoint rendered from this process and digested under ``"fabric"`` in
``GET /stats``.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Deque, Iterator, Sequence

from ..engine.workers import Task, TaskResult, failure_result
from ..io import instance_to_payload
from ..obs import REGISTRY as OBS
from ..serve.client import ServeClient, ServeClientError

__all__ = [
    "FabricStats",
    "FabricStream",
    "HostStats",
    "RemoteDispatcher",
    "normalize_hosts",
    "task_payload",
]

_DISPATCHED = OBS.counter(
    "repro_fabric_dispatched_total",
    "Tasks dispatched to a remote host (including re-dispatches)",
    ("host",),
)
_COMPLETED = OBS.counter(
    "repro_fabric_completed_total",
    "Task results received from a remote host",
    ("host",),
)
_RETRIED = OBS.counter(
    "repro_fabric_retried_total",
    "Tasks re-queued after a transport failure or 5xx on a host",
    ("host",),
)
_IN_FLIGHT = OBS.gauge(
    "repro_fabric_in_flight",
    "Requests currently in flight to a remote host",
    ("host",),
)
_HOST_UP = OBS.gauge(
    "repro_fabric_host_up",
    "1 while the dispatcher considers the host healthy, else 0",
    ("host",),
)
_TASK_SECONDS = OBS.histogram(
    "repro_fabric_task_seconds",
    "Round-trip latency of one remote solve (dispatch to result)",
    ("host",),
)
_PROBES = OBS.counter(
    "repro_fabric_probes_total",
    "Health re-probes of a down host, by outcome",
    ("host", "outcome"),
)


def normalize_hosts(spec: str | Sequence[str]) -> list[str]:
    """``"host1:8977,host2:9000"`` (or a sequence) → base URLs.

    Bare ``host:port`` entries get ``http://``; a bare hostname gets the
    default serve port.  Duplicates are rejected — two windows onto one
    host would silently double its intended load.
    """
    from ..serve.server import DEFAULT_PORT

    if isinstance(spec, str):
        entries = [part.strip() for part in spec.split(",")]
    else:
        entries = [str(part).strip() for part in spec]
    urls: list[str] = []
    for entry in entries:
        if not entry:
            continue
        if "://" not in entry:
            entry = "http://" + entry
        if entry.count(":") == 1:  # scheme only, no port
            entry = f"{entry}:{DEFAULT_PORT}"
        url = entry.rstrip("/")
        if url in urls:
            raise ValueError(f"duplicate fabric host {url!r}")
        urls.append(url)
    if not urls:
        raise ValueError("no fabric hosts given")
    return urls


def task_payload(task: Task) -> dict[str, Any]:
    """The wire-format object for one engine :class:`Task`.

    The ``backend`` pin inside ``task.params`` moves to the wire-level
    ``backend`` field: the server folds an *explicit* request back into
    the solver params verbatim, so the server-side digest equals
    ``task.digest`` and cross-host cache dedupe actually keys on the
    same content address the local engine uses.  (Left inside
    ``params``, the server's own default-backend resolution would
    override it.)
    """
    params = dict(task.params)
    backend = params.pop("backend", None)
    payload: dict[str, Any] = {
        "instance": instance_to_payload(task.instance),
        "problem": task.problem,
        "algorithm": task.algorithm,
        "g": task.g,
    }
    if params:
        payload["params"] = params
    if backend is not None:
        payload["backend"] = backend
    if task.timeout is not None:
        payload["timeout"] = task.timeout
    if task.meta:
        payload["meta"] = dict(task.meta)
    return payload


@dataclass
class HostStats:
    """One host's view of a fabric run (mirrors the labeled metrics)."""

    url: str
    window: int = 1
    dispatched: int = 0
    completed: int = 0
    retried: int = 0
    probes: int = 0
    up: bool = True

    def as_dict(self) -> dict[str, Any]:
        return {
            "url": self.url,
            "window": self.window,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "retried": self.retried,
            "probes": self.probes,
            "up": self.up,
        }


class FabricStats:
    """Counters owned by one dispatcher run (all under the run's lock)."""

    def __init__(self, total: int) -> None:
        self.total = total
        #: Results fanned out locally from an identical task's result.
        self.dedup_hits = 0
        #: Results received from hosts (including failures the server
        #: reported as ``ok=False`` records).
        self.completed = 0
        #: Re-queues after transport failures / 5xx, fabric-wide.
        self.retried = 0
        #: Tasks failed locally (attempts exhausted or fabric down).
        self.gave_up = 0
        self.hosts: dict[str, HostStats] = {}

    def as_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "completed": self.completed,
            "dedup_hits": self.dedup_hits,
            "retried": self.retried,
            "gave_up": self.gave_up,
            "hosts": {
                label: stats.as_dict()
                for label, stats in sorted(self.hosts.items())
            },
        }


class _Host:
    """Runtime state for one remote host within a run."""

    def __init__(self, url: str, client: Any, window: int) -> None:
        self.url = url
        #: Metric label: host:port without the scheme noise.
        self.label = url.split("://", 1)[-1]
        self.client = client
        self.window = window
        self.down = False
        self.probing = False


class FabricStream:
    """Iterator over a fabric run's results, carrying its stats.

    The fabric twin of :class:`repro.engine.runner.ResultStream`:
    ``for result in stream`` yields task-ordered results incrementally,
    ``stream.stats`` is safe to read while the run is live and
    authoritative once it ends, and :meth:`close` abandons the run
    (in-flight requests are left to finish server-side; their results
    are dropped).
    """

    def __init__(self, gen: Iterator[TaskResult], stats: FabricStats) -> None:
        self._gen = gen
        self.stats = stats

    def __iter__(self) -> "FabricStream":
        return self

    def __next__(self) -> TaskResult:
        return next(self._gen)

    def close(self) -> None:
        self._gen.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


class _Run:
    """Shared mutable state of one dispatch run (guarded by ``cond``)."""

    def __init__(self, tasks: Sequence[Task]) -> None:
        self.tasks = list(tasks)
        self.payloads = [task_payload(t) for t in self.tasks]
        self.results: list[TaskResult | None] = [None] * len(self.tasks)
        self.pending: Deque[tuple[int, int]] = deque()  # (pos, attempt)
        self.dups_by_first: dict[int, list[int]] = {}
        self.unresolved = len(self.tasks)
        self.cond = threading.Condition()
        self.closed = threading.Event()
        self.stats = FabricStats(total=len(self.tasks))
        #: structure_group -> host label its warm chain last ran on.
        self.affinity: dict[str, str] = {}
        #: Wall-clock instant every host went down (None while any is up).
        self.all_down_since: float | None = None

    @property
    def finished(self) -> bool:
        return self.unresolved == 0 or self.closed.is_set()


class RemoteDispatcher:
    """Shard task batches across many ``repro serve`` hosts.

    Parameters
    ----------
    hosts:
        Host list — a ``"host:port,host:port"`` string or a sequence of
        base URLs (see :func:`normalize_hosts`).
    window:
        Fixed per-host in-flight window; ``None`` (default) sizes each
        host's window from the ``jobs`` capacity field of its
        ``/healthz`` answer, clamped to ``max_window``.
    max_task_attempts:
        Transport-failure budget per task before it is failed locally.
    probe_base / probe_cap:
        Exponential backoff schedule (seconds) for re-probing a down
        host's ``/healthz``.
    all_down_grace:
        Once *every* host has been down for this many consecutive
        seconds, still-queued tasks are failed instead of waiting for a
        fabric that may never return.
    http_timeout:
        Per-request socket timeout handed to each host's client.
    client_factory:
        ``(base_url, *, http_timeout, get_retries) -> client`` hook so
        tests can inject fakes; defaults to :class:`ServeClient`.
    """

    def __init__(
        self,
        hosts: str | Sequence[str],
        *,
        window: int | None = None,
        max_window: int = 8,
        max_task_attempts: int = 6,
        probe_base: float = 0.25,
        probe_cap: float = 5.0,
        all_down_grace: float = 300.0,
        http_timeout: float = 300.0,
        client_factory: Callable[..., Any] = ServeClient,
    ) -> None:
        self.urls = normalize_hosts(hosts)
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if max_window < 1:
            raise ValueError(f"max_window must be >= 1, got {max_window}")
        if max_task_attempts < 1:
            raise ValueError(
                f"max_task_attempts must be >= 1, got {max_task_attempts}"
            )
        self.window = window
        self.max_window = max_window
        self.max_task_attempts = max_task_attempts
        self.probe_base = probe_base
        self.probe_cap = probe_cap
        self.all_down_grace = all_down_grace
        self.http_timeout = http_timeout
        # Keep-alive probes must not mask a down host behind long
        # client-internal retry loops — the dispatcher owns retry policy.
        self._clients = [
            client_factory(url, http_timeout=http_timeout, get_retries=1)
            for url in self.urls
        ]
        #: Stats of the most recent :meth:`run_stream` call — still
        #: readable after the stream is consumed (the CLI's per-host
        #: report uses this).
        self.last_stats: FabricStats | None = None

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> list[TaskResult]:
        """Execute ``tasks`` across the fabric; results in task order."""
        return list(self.run_stream(tasks))

    def run_stream(self, tasks: Sequence[Task]) -> FabricStream:
        """Yield results for ``tasks`` in task order, incrementally.

        Mirrors :meth:`BatchRunner.run_stream`: each result is yielded
        the moment it and every predecessor is known; duplicate digests
        are dispatched once per run; closing the stream abandons
        undispatched work.
        """
        run = _Run(tasks)
        self.last_stats = run.stats
        hosts = self._plan_hosts(run)

        # Plan: digest dedupe — only first occurrences enter the deque.
        first_by_digest: dict[str, int] = {}
        for pos, task in enumerate(run.tasks):
            first = first_by_digest.get(task.digest)
            if first is not None:
                run.dups_by_first.setdefault(first, []).append(pos)
                continue
            first_by_digest[task.digest] = pos
            run.pending.append((pos, 0))

        threads: list[threading.Thread] = []
        if run.pending:
            for host in hosts:
                for slot in range(host.window):
                    thread = threading.Thread(
                        target=self._worker,
                        args=(run, host),
                        name=f"fabric-{host.label}-{slot}",
                        daemon=True,
                    )
                    thread.start()
                    threads.append(thread)
        else:
            run.unresolved = 0  # nothing to do (empty task list)

        return FabricStream(self._merge(run, hosts, threads), run.stats)

    # ------------------------------------------------------------------
    def _plan_hosts(self, run: _Run) -> list[_Host]:
        """Probe every host's capacity and build runtime host state.

        A host whose first probe fails still joins the fabric — down,
        window 1 — and the re-probe loop brings it in once it answers.
        """
        hosts: list[_Host] = []
        for url, client in zip(self.urls, self._clients):
            window = self.window
            down = False
            if window is None:
                try:
                    health = client.health()
                    capacity = int(health.get("jobs") or 1)
                    window = max(1, min(self.max_window, capacity))
                except (ServeClientError, ValueError, TypeError):
                    window, down = 1, True
            host = _Host(url, client, window)
            host.down = down
            hosts.append(host)
            run.stats.hosts[host.label] = HostStats(
                url=url, window=window, up=not down
            )
            _HOST_UP.labels(host=host.label).set(0.0 if down else 1.0)
        if all(h.down for h in hosts):
            run.all_down_since = time.monotonic()
        return hosts

    # ------------------------------------------------------------------
    # Worker threads (window slots)
    # ------------------------------------------------------------------
    def _worker(self, run: _Run, host: _Host) -> None:
        while True:
            item: tuple[int, int] | None = None
            probe = False
            with run.cond:
                while True:
                    if run.finished:
                        return
                    if host.down:
                        if not host.probing:
                            host.probing = True
                            probe = True
                            break
                        run.cond.wait(0.2)
                        continue
                    item = self._take(run, host)
                    if item is None:
                        run.cond.wait(0.2)
                        continue
                    break
            if probe:
                try:
                    self._probe(run, host)
                finally:
                    with run.cond:
                        host.probing = False
                        run.cond.notify_all()
            elif item is not None:
                self._dispatch(run, host, *item)

    def _take(self, run: _Run, host: _Host) -> tuple[int, int] | None:
        """Pop the best pending task for ``host`` (caller holds the lock).

        Sticky by structure group, mirroring the local watchdog pool:
        prefer (1) a task whose group is bound to this host, then (2)
        one whose group is unbound (or has no group), else (3) steal the
        queue head from its bound host and rebind — work-conserving, a
        free window slot never idles while work is queued.
        """
        if not run.pending:
            return None
        own: int | None = None
        fallback: int | None = None
        for i, (pos, _) in enumerate(run.pending):
            group = run.tasks[pos].structure_group
            if group is None:
                if fallback is None:
                    fallback = i
                continue
            bound = run.affinity.get(group)
            if bound == host.label:
                own = i
                break
            if fallback is None and bound is None:
                fallback = i
        index = own if own is not None else (
            fallback if fallback is not None else 0
        )
        pos, attempt = run.pending[index]
        del run.pending[index]
        group = run.tasks[pos].structure_group
        if group is not None:
            run.affinity[group] = host.label
        return pos, attempt

    def _dispatch(
        self, run: _Run, host: _Host, pos: int, attempt: int
    ) -> None:
        """One remote solve attempt; classify the outcome under the lock."""
        task = run.tasks[pos]
        label = host.label
        _DISPATCHED.labels(host=label).inc()
        _IN_FLIGHT.labels(host=label).inc()
        with run.cond:
            run.stats.hosts[label].dispatched += 1
        start = time.perf_counter()
        try:
            result = host.client.solve_payload(run.payloads[pos])
        except ServeClientError as exc:
            elapsed = time.perf_counter() - start
            if exc.transient:
                self._host_failure(run, host, pos, attempt, exc)
            else:
                # Deterministic rejection (4xx): retrying cannot help.
                self._deliver(
                    run,
                    pos,
                    failure_result(
                        task,
                        f"rejected by {host.url} "
                        f"(HTTP {exc.status}): {exc}",
                        elapsed,
                    ),
                )
        except KeyboardInterrupt:
            # Worker thread: an interrupt must kill the dispatch loop,
            # not masquerade as one task's remote failure.
            raise
        except Exception as exc:  # client bug / unexpected payload shape
            self._deliver(
                run,
                pos,
                failure_result(
                    task,
                    f"fabric client error talking to {host.url}: "
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - start,
                ),
            )
        else:
            elapsed = time.perf_counter() - start
            _COMPLETED.labels(host=label).inc()
            _TASK_SECONDS.labels(host=label).observe(elapsed)
            with run.cond:
                run.stats.hosts[label].completed += 1
                run.stats.completed += 1
            self._deliver(run, pos, self._reanchor(result, task, host))
        finally:
            _IN_FLIGHT.labels(host=label).dec()

    def _host_failure(
        self,
        run: _Run,
        host: _Host,
        pos: int,
        attempt: int,
        exc: ServeClientError,
    ) -> None:
        """Transport failure / 5xx: mark the host down, re-queue the task."""
        label = host.label
        _RETRIED.labels(host=label).inc()
        with run.cond:
            if not host.down:
                host.down = True
                run.stats.hosts[label].up = False
                _HOST_UP.labels(host=label).set(0.0)
                # Fabric-wide blackout clock: starts when the *last*
                # host goes dark, cleared by any successful probe.
                if run.all_down_since is None and all(
                    h.up is False for h in run.stats.hosts.values()
                ):
                    run.all_down_since = time.monotonic()
            run.stats.retried += 1
            run.stats.hosts[label].retried += 1
            attempts = attempt + 1
            if attempts >= self.max_task_attempts:
                run.stats.gave_up += 1
                self._deliver_locked(
                    run,
                    pos,
                    failure_result(
                        run.tasks[pos],
                        f"gave up after {attempts} transport failures "
                        f"(last: {host.url}: {exc})",
                        0.0,
                    ),
                )
            else:
                run.pending.append((pos, attempts))
            run.cond.notify_all()

    def _probe(self, run: _Run, host: _Host) -> None:
        """Re-probe a down host with exponential backoff until it answers.

        Runs outside the lock on one of the host's own window threads;
        returns when the host is back up, the run finished, or the
        stream was closed.
        """
        delay = self.probe_base
        while True:
            wait = delay * (0.5 + 0.5 * random.random())
            if run.closed.wait(timeout=wait):
                return
            with run.cond:
                if run.finished:
                    return
                run.stats.hosts[host.label].probes += 1
            try:
                host.client.health()
            except ServeClientError:
                _PROBES.labels(host=host.label, outcome="down").inc()
                delay = min(delay * 2, self.probe_cap)
                continue
            _PROBES.labels(host=host.label, outcome="up").inc()
            with run.cond:
                host.down = False
                run.stats.hosts[host.label].up = True
                _HOST_UP.labels(host=host.label).set(1.0)
                run.all_down_since = None
                run.cond.notify_all()
            return

    # ------------------------------------------------------------------
    # Result delivery + ordered merge
    # ------------------------------------------------------------------
    @staticmethod
    def _reanchor(result: TaskResult, task: Task, host: _Host) -> TaskResult:
        """A remote result re-anchored to the local task's slot.

        The server answered with its own ``index`` (0 for ``/solve``);
        position and provenance belong to this run.  The serving host
        rides along in ``meta`` for post-hoc placement analysis.
        """
        meta = dict(task.meta or result.meta)
        meta["fabric_host"] = host.label
        return replace(result, index=task.index, meta=meta)

    def _deliver(self, run: _Run, pos: int, result: TaskResult) -> None:
        with run.cond:
            self._deliver_locked(run, pos, result)
            run.cond.notify_all()

    def _deliver_locked(
        self, run: _Run, pos: int, result: TaskResult
    ) -> None:
        """Store one result and fan it out to duplicates (lock held).

        A late result for an already-resolved slot (the task was
        re-dispatched and both attempts eventually answered) is dropped
        — exactly-one-result-per-task is the invariant the ordered
        merge depends on.
        """
        if run.results[pos] is not None:
            return
        run.results[pos] = result
        run.unresolved -= 1
        for dup in run.dups_by_first.pop(pos, ()):
            if result.ok:
                dup_task = run.tasks[dup]
                meta = dict(dup_task.meta or result.meta)
                meta["fabric_host"] = result.meta.get("fabric_host", "")
                run.results[dup] = replace(
                    result, index=dup_task.index, cached=True, meta=meta
                )
                run.unresolved -= 1
                run.stats.dedup_hits += 1
            else:
                # Mirror the local runner: failures are retried for
                # duplicates, never reused.
                run.pending.append((dup, 0))

    def _merge(
        self, run: _Run, hosts: list[_Host], threads: list[threading.Thread]
    ) -> Iterator[TaskResult]:
        """Emit results in task order as each prefix completes."""
        emitted = 0
        total = len(run.tasks)
        try:
            while emitted < total:
                with run.cond:
                    while run.results[emitted] is None:
                        self._check_blackout(run)
                        run.cond.wait(0.25)
                    result = run.results[emitted]
                yield result
                emitted += 1
        finally:
            run.closed.set()
            with run.cond:
                run.cond.notify_all()
            for thread in threads:
                thread.join(timeout=0.5)

    def _check_blackout(self, run: _Run) -> None:
        """Fail queued work once every host has been down past the grace.

        Called with the lock held from the consumer's wait loop.  Tasks
        still in flight on a dying connection re-queue themselves via
        :meth:`_host_failure` and are swept up on a later check.
        """
        if run.all_down_since is None:
            return
        if time.monotonic() - run.all_down_since < self.all_down_grace:
            return
        while run.pending:
            pos, attempts = run.pending.popleft()
            run.stats.gave_up += 1
            self._deliver_locked(
                run,
                pos,
                failure_result(
                    run.tasks[pos],
                    f"every fabric host unreachable for "
                    f">{self.all_down_grace:g}s "
                    f"(task had {attempts} failed attempts)",
                    0.0,
                ),
            )
