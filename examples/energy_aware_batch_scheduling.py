#!/usr/bin/env python3
"""Energy-aware batch scheduling on one machine: the active-time model.

Scenario: a single high-power compute node (think GPU box) runs batch jobs
with release times and deadlines, up to ``g`` concurrently.  Each hour the
node is powered on costs energy regardless of load, so the scheduler should
compress work into as few powered-on hours as possible — the active-time
problem with integral preemption.

The script compares the paper's two algorithms against the exact optimum and
the LP bound across increasing load, then dissects one LP-rounding run: the
right-shifted fractional solution, the per-deadline iterations and the
charging ledger certificate from Sections 3.1-3.4.

Run:  python examples/energy_aware_batch_scheduling.py [seed]
"""

import sys

import numpy as np

from repro import Instance
from repro.activetime import (
    exact_active_time,
    minimal_feasible_schedule,
    round_active_time,
)
from repro.analysis import format_table
from repro.instances import random_active_time_instance


def main(seed: int = 11) -> None:
    rng = np.random.default_rng(seed)
    g = 3

    rows = []
    for n in (6, 12, 18, 24):
        inst = random_active_time_instance(
            n, horizon=16, max_length=4, max_slack=5, rng=rng
        )
        try:
            exact = exact_active_time(inst, g)
        except RuntimeError:
            continue  # overloaded beyond feasibility; skip this draw
        minimal = minimal_feasible_schedule(inst, g)
        rounded = round_active_time(inst, g)
        rows.append(
            [
                n,
                f"{rounded.lp_objective:.2f}",
                exact.cost,
                rounded.cost,
                minimal.cost,
                f"{rounded.cost / exact.cost:.2f}",
                f"{minimal.cost / exact.cost:.2f}",
            ]
        )

    print(
        format_table(
            f"Powered-on hours vs load (horizon 16h, g={g})",
            ["jobs", "LP bound", "OPT", "LP rounding",
             "minimal feasible", "round/OPT", "minimal/OPT"],
            rows,
        )
    )

    # ------------------------------------------------------------------
    # Anatomy of one rounding run
    # ------------------------------------------------------------------
    inst = random_active_time_instance(
        10, horizon=12, max_length=3, max_slack=4, rng=rng
    )
    sol = round_active_time(inst, g, strict=True)
    print(f"\nanatomy of one run on {inst.describe()}:")
    print(f"  LP optimum              : {sol.lp_objective:.3f}")
    print(f"  rounded active slots    : {list(sol.schedule.active_slots)}")
    print(f"  cost / LP (bound 2)     : {sol.ratio_vs_lp:.3f}")
    print(f"  charging certificate    : {sol.ledger.certificate_ratio():.3f}")
    print("  per-deadline iterations :")
    for it in sol.iterations:
        frac = f"{it.frac_value:.3f}@{it.frac_slot}" if it.frac_slot else "-"
        print(
            f"    block {it.block}: mass={it.mass:.3f} "
            f"opened={list(it.opened_full)} frac={frac} action={it.action}"
        )

    energy_saved = 100 * (1 - sol.cost / inst.horizon)
    print(
        f"\nvs leaving the node on for the whole horizon, the rounded "
        f"schedule saves {energy_saved:.0f}% of powered-on time"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)
