"""E10 — FIRSTFIT (Flammini et al.): the 4-approximate baseline.

Paper context: FIRSTFIT is 4-approximate and instances exist where it pays
3 OPT (the lower-bound instance lives in [5], not in this paper, so we
report measured worst cases over random and structured families instead).
GREEDYTRACKING's improvement from 4 to 3 is the paper's motivation; the
measured comparison shows GT never losing to FF by more than the bound gap
and winning on adversarially structured inputs.
"""

import pytest

from repro.busytime import (
    best_lower_bound,
    exact_busy_time_interval,
    first_fit,
    greedy_tracking,
)
from repro.instances import random_interval_instance, random_laminar_instance


def test_firstfit_vs_greedy_tracking_random(rng, emit):
    rows = []
    for (n, g) in [(12, 2), (20, 3), (30, 4)]:
        ff_worst = gt_worst = 0.0
        ff_wins = gt_wins = ties = 0
        for _ in range(15):
            inst = random_interval_instance(n, 1.5 * n, rng=rng)
            lb = best_lower_bound(inst, g)
            ff = first_fit(inst, g).total_busy_time
            gt = greedy_tracking(inst, g).total_busy_time
            ff_worst = max(ff_worst, ff / lb)
            gt_worst = max(gt_worst, gt / lb)
            if ff < gt - 1e-9:
                ff_wins += 1
            elif gt < ff - 1e-9:
                gt_wins += 1
            else:
                ties += 1
        rows.append(
            [f"n={n}, g={g}", ff_worst, gt_worst, ff_wins, gt_wins, ties]
        )
        assert ff_worst <= 4.0 + 1e-9   # Flammini et al. bound
        assert gt_worst <= 3.0 + 1e-9   # Theorem 5 bound
    emit(
        "E10 — FIRSTFIT vs GREEDYTRACKING (ratios vs profile bound)",
        ["family", "FF max ratio", "GT max ratio", "FF wins", "GT wins",
         "ties"],
        rows,
    )


def test_firstfit_worst_case_search(rng, emit):
    """Adversarial search: report the worst FIRSTFIT ratio found vs exact."""
    worst = (0.0, None)
    for _ in range(40):
        n = int(rng.integers(4, 8))
        g = int(rng.integers(2, 4))
        inst = random_interval_instance(n, 10.0, rng=rng)
        opt = exact_busy_time_interval(inst, g).total_busy_time
        ff = first_fit(inst, g).total_busy_time
        if ff / opt > worst[0]:
            worst = (ff / opt, (n, g))
    emit(
        "E10 — worst FIRSTFIT/OPT found by random search "
        "(paper cites a 3x family in [5])",
        ["worst ratio", "instance (n, g)", "paper upper bound"],
        [[worst[0], str(worst[1]), 4.0]],
    )
    assert worst[0] <= 4.0 + 1e-9


def test_ordering_ablation(rng, emit):
    """Ablation: FIRSTFIT's length ordering vs release/input orderings."""
    rows = []
    for order in ("length", "release", "input"):
        total = 0.0
        for seed in range(10):
            inst = random_interval_instance(20, 30.0, rng=rng)
            total += first_fit(inst, 3, order=order).total_busy_time
        rows.append([order, total / 10])
    emit(
        "E10 — FIRSTFIT ordering ablation (mean busy time, 10 instances)",
        ["ordering", "mean busy time"],
        rows,
    )


@pytest.mark.parametrize("n", [30, 80])
def test_firstfit_runtime(benchmark, rng, n):
    inst = random_interval_instance(n, 1.5 * n, rng=rng)
    s = benchmark(first_fit, inst, 3)
    assert s.is_valid()


def test_laminar_family(rng, emit):
    """Structured (laminar) instances: the regime Khandekar et al. solve
    exactly; both heuristics stay close to the profile bound there."""
    rows = []
    for depth in (2, 3):
        inst = random_laminar_instance(depth, 2, rng=rng)
        g = 2
        lb = best_lower_bound(inst, g)
        ff = first_fit(inst, g).total_busy_time
        gt = greedy_tracking(inst, g).total_busy_time
        rows.append([f"depth={depth}, n={inst.n}", lb, ff, gt])
        assert ff <= 4 * lb + 1e-6
        assert gt <= 3 * lb + 1e-6
    emit(
        "E10 — laminar instances",
        ["family", "profile LB", "FIRSTFIT", "GREEDYTRACKING"],
        rows,
    )
