"""E5 — Theorem 5: GREEDYTRACKING is 3-approximate on flexible jobs.

Paper claim: after the unbounded-capacity conversion, GREEDYTRACKING's busy
time is at most OPT_inf + 2 ℓ(J)/g <= 3 OPT.  We measure the empirical
ratio against the exact optimum on small flexible instances and against the
additive bound on larger ones, and compare with the 4-approximate pipeline
variants (chain peeling / Kumar-Rudra) — GREEDYTRACKING should never lose to
its own proven bound while the others stay within 4.
"""

import pytest

from repro.busytime import (
    exact_busy_time_flexible,
    mass_lower_bound,
    opt_infinity,
    schedule_flexible,
)
from repro.instances import random_flexible_instance


def test_vs_exact_small(rng, emit):
    rows = []
    worst = 0.0
    for trial in range(8):
        inst = random_flexible_instance(5, 8, rng=rng)
        g = int(rng.integers(1, 3))
        opt = exact_busy_time_flexible(inst, g).total_busy_time
        s = schedule_flexible(inst, g, algorithm="greedy_tracking")
        s.verify()
        ratio = s.total_busy_time / opt
        worst = max(worst, ratio)
        rows.append([trial, g, opt, s.total_busy_time, ratio])
    emit(
        "E5 / Theorem 5 — GREEDYTRACKING vs exact OPT (flexible, small)",
        ["trial", "g", "OPT", "GT", "ratio (paper bound 3)"],
        rows,
    )
    assert worst <= 3.0 + 1e-9


def test_theorem5_additive_bound_large(rng, emit):
    rows = []
    for (n, T, g) in [(15, 20, 2), (25, 30, 3), (40, 40, 4)]:
        inst = random_flexible_instance(n, T, rng=rng)
        placement = opt_infinity(inst)
        s = schedule_flexible(inst, g, algorithm="greedy_tracking")
        s.verify()
        bound = placement.busy_time + 2 * mass_lower_bound(inst, g)
        rows.append(
            [f"n={n}, g={g}", s.total_busy_time, bound,
             s.total_busy_time / max(placement.busy_time, 1e-9)]
        )
        assert s.total_busy_time <= bound + 1e-6
    emit(
        "E5 — GREEDYTRACKING vs OPT_inf + 2*mass/g (the proof's bound)",
        ["family", "GT busy", "additive bound", "GT / OPT_inf"],
        rows,
    )


def test_pipeline_variants_ordering(rng, emit):
    """Theorem 5 vs Theorem 10: GT carries a 3 guarantee, the 2-approx
    interval algorithms only 4 after conversion; verify both hold."""
    rows = []
    for trial in range(6):
        inst = random_flexible_instance(6, 9, rng=rng)
        g = int(rng.integers(1, 3))
        opt = exact_busy_time_flexible(inst, g).total_busy_time
        gt = schedule_flexible(inst, g, algorithm="greedy_tracking")
        cp = schedule_flexible(inst, g, algorithm="chain_peeling")
        kr = schedule_flexible(inst, g, algorithm="kumar_rudra")
        rows.append(
            [trial, opt, gt.total_busy_time, cp.total_busy_time, kr.total_busy_time]
        )
        assert gt.total_busy_time <= 3 * opt + 1e-6
        assert cp.total_busy_time <= 4 * opt + 1e-6
        assert kr.total_busy_time <= 4 * opt + 1e-6
    emit(
        "E5 — pipeline variants (bounds: GT<=3 OPT, CP/KR<=4 OPT)",
        ["trial", "OPT", "greedy_tracking", "chain_peeling", "kumar_rudra"],
        rows,
    )


@pytest.mark.parametrize("n", [20, 40])
def test_greedy_tracking_pipeline_runtime(benchmark, rng, n):
    inst = random_flexible_instance(n, n + 10, rng=rng)
    s = benchmark(schedule_flexible, inst, 3)
    assert s.is_valid()
