"""Content-addressed result cache for solver runs.

A task is identified by a stable SHA-256 digest of the *canonicalized*
instance (job tuples in order), the problem/algorithm pair, ``g`` and
any extra parameters.  Two layers:

* an in-memory LRU (``OrderedDict``) bounded by ``maxsize``;
* an optional on-disk JSON store (one file per digest) so repeated
  sweeps across process runs are near-free — bounded by an optional
  byte budget with oldest-mtime eviction (``repro cache --prune``
  applies the same policy from the CLI).  Records above
  ``compress_threshold`` bytes are stored gzip-compressed
  (``<digest>.json.gz``); reads handle both formats transparently and
  the byte budget counts on-disk (compressed) size, so large sweep
  records stop dominating the disk budget.

Only JSON-serializable result records go through the cache — schedules
stay in-process.  Records are deep-copied at the ``get``/``put``
boundary, so a caller mutating a record it handed in or got back can
never corrupt the cached entry, and the memory layer is guarded by a
lock so concurrent serving threads share one cache safely.
"""

from __future__ import annotations

import copy
import gzip
import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Mapping

from ..core.jobs import Instance
from ..obs import REGISTRY as OBS

__all__ = [
    "canonical_task",
    "instance_digest",
    "task_digest",
    "ResultCache",
]

_HITS = OBS.counter(
    "repro_cache_hits_total",
    "Result-cache hits, by which layer answered",
    ("layer",),
)
_MISSES = OBS.counter(
    "repro_cache_misses_total",
    "Result-cache lookups that missed both layers",
)
_EVICTIONS = OBS.counter(
    "repro_cache_evictions_total",
    "Result-cache entries evicted, by layer",
    ("layer",),
)
_COMPRESSED = OBS.counter(
    "repro_cache_compressed_total",
    "Result-cache records written gzip-compressed to disk",
)


def _canonical_jobs(instance: Instance) -> list[list[Any]]:
    """Jobs as plain lists, in instance order (order matters to packers).

    ``Job.label`` is excluded: it is declared ``compare=False`` on the
    dataclass and no solver reads it, so label-only variants of the
    same jobs must share cache entries.
    """
    return [
        [j.release, j.deadline, j.length, j.id]
        for j in instance.jobs
    ]


def canonical_task(
    instance: Instance,
    problem: str,
    algorithm: str,
    g: int,
    params: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The canonical JSON-ready description of one solve task."""
    return {
        "jobs": _canonical_jobs(instance),
        "problem": problem,
        "algorithm": algorithm,
        "g": g,
        "params": dict(sorted((params or {}).items())),
    }


def _digest(payload: Any) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def instance_digest(instance: Instance) -> str:
    """Stable content hash of an instance alone."""
    return _digest(_canonical_jobs(instance))


def task_digest(
    instance: Instance,
    problem: str,
    algorithm: str,
    g: int,
    params: Mapping[str, Any] | None = None,
) -> str:
    """Stable content hash of a full solve task."""
    return _digest(canonical_task(instance, problem, algorithm, g, params))


class ResultCache:
    """In-memory LRU over an optional on-disk JSON store.

    Parameters
    ----------
    maxsize:
        Bound on the in-memory layer; least-recently-used entries are
        evicted first.
    directory:
        When given, every ``put`` also writes ``<digest>.json`` here and
        ``get`` falls back to disk on a memory miss.
    disk_budget:
        Optional byte budget for the disk layer.  After every disk
        write, oldest-mtime entries are evicted until the store fits;
        ``None`` leaves the disk layer unbounded (the seed behavior).
    compress_threshold:
        Records whose JSON text exceeds this many bytes are written
        gzip-compressed as ``<digest>.json.gz`` (large sweep records
        compress severalfold); smaller records stay plain JSON for
        zero-dependency inspection.  ``None`` disables compression.
        Reads are format-transparent either way, so changing the
        threshold never invalidates an existing store.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        directory: str | Path | None = None,
        *,
        disk_budget: int | None = None,
        compress_threshold: int | None = 4096,
    ) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        if disk_budget is not None and disk_budget < 0:
            raise ValueError(
                f"disk_budget must be non-negative, got {disk_budget}"
            )
        if compress_threshold is not None and compress_threshold < 0:
            raise ValueError(
                "compress_threshold must be non-negative, got "
                f"{compress_threshold}"
            )
        self.maxsize = maxsize
        self.directory = Path(directory) if directory is not None else None
        self.disk_budget = disk_budget
        self.compress_threshold = compress_threshold
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        #: Disk entries evicted over this cache's lifetime.
        self.evictions = 0
        #: Memory-LRU entries pushed out by ``maxsize``.
        self.evictions_memory = 0
        #: Records written gzip-compressed (over ``compress_threshold``).
        self.compressed_records = 0
        # Running estimate of disk bytes, so `put` only pays a full
        # directory scan when the budget is actually threatened (the
        # estimate over-counts same-key overwrites, which merely makes
        # the next prune happen a little early).
        self._disk_estimate = (
            self.disk_usage()[1] if disk_budget is not None else 0
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _disk_paths(self, key: str) -> tuple[Path, Path]:
        """``(plain, gzip)`` candidate paths for one digest.

        A digest lives in at most one of the two (``put`` removes the
        stale twin on a format change); readers try both.
        """
        return (
            self.directory / f"{key}.json",
            self.directory / f"{key}.json.gz",
        )

    @staticmethod
    def _read_record(path: Path) -> dict[str, Any] | None:
        """Parse one disk entry, plain or gzipped; ``None`` on any error."""
        try:
            raw = path.read_bytes()
            if path.name.endswith(".json.gz"):
                raw = gzip.decompress(raw)
            return json.loads(raw)
        except (OSError, EOFError, gzip.BadGzipFile, json.JSONDecodeError):
            return None

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached record for ``key`` or ``None`` on a miss.

        The returned record is the caller's own deep copy: mutating it
        (including nested ``metrics``/``meta`` dicts) never touches the
        cached entry.
        """
        with self._lock:
            record = self._memory.get(key)
            if record is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                _HITS.labels(layer="memory").inc()
                return copy.deepcopy(record)
        if self.directory is not None:
            record = path = None
            for candidate in self._disk_paths(key):
                if candidate.exists():
                    record = self._read_record(candidate)
                    if record is not None:
                        path = candidate
                        break
            if record is not None:
                # Refresh the entry's mtime: prune() evicts oldest-mtime
                # first, so without the touch the most frequently *read*
                # entries would be the first to go under a byte budget.
                try:
                    os.utime(path)
                except OSError:
                    pass  # e.g. concurrently pruned; the read still wins
                with self._lock:
                    self._store_memory(key, record)
                    self.hits += 1
                _HITS.labels(layer="disk").inc()
                # ``record`` came fresh off disk and _store_memory keeps
                # its own deep copy, so handing it out directly is safe.
                return record
        with self._lock:
            self.misses += 1
        _MISSES.inc()
        return None

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Store a JSON-serializable record under ``key``.

        The cache keeps a deep copy: later mutation of ``record`` (or
        its nested dicts) by the caller does not reach the cache.
        """
        with self._lock:
            self._store_memory(key, record)
        if self.directory is not None:
            plain, packed = self._disk_paths(key)
            payload = json.dumps(record, sort_keys=True).encode("utf-8")
            compress = (
                self.compress_threshold is not None
                and len(payload) > self.compress_threshold
            )
            if compress:
                payload = gzip.compress(payload)
                with self._lock:
                    self.compressed_records += 1
                _COMPRESSED.inc()
            path, stale = (packed, plain) if compress else (plain, packed)
            # Unique tmp name: concurrent runs sharing a cache directory
            # may put the same digest; a fixed tmp name would race.
            tmp = path.parent / (
                f"{path.name}.{os.getpid()}.{id(self):x}.tmp"
            )
            tmp.write_bytes(payload)
            tmp.replace(path)
            # A re-put may cross the threshold in either direction; the
            # other format's file would otherwise linger as a stale
            # duplicate charged against the budget.
            try:
                stale.unlink()
            except OSError:
                pass
            if self.disk_budget is not None:
                with self._lock:
                    self._disk_estimate += len(payload)
                    threatened = self._disk_estimate > self.disk_budget
                if threatened:
                    self.prune()

    def _store_memory(self, key: str, record: Mapping[str, Any]) -> None:
        # Deep copy at the boundary: the nested metrics/meta dicts must
        # not be aliased between the cache and any caller.
        self._memory[key] = copy.deepcopy(dict(record))
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)
            self.evictions_memory += 1
            _EVICTIONS.labels(layer="memory").inc()

    # ------------------------------------------------------------------
    # Disk accounting and eviction
    # ------------------------------------------------------------------
    def disk_entries(self) -> list[tuple[Path, int, float]]:
        """``(path, size, mtime)`` per disk entry, oldest-mtime first.

        Entries racing with a concurrent eviction/write simply drop out
        of the listing.
        """
        if self.directory is None:
            return []
        entries: list[tuple[Path, int, float]] = []
        candidates = list(self.directory.glob("*.json"))
        candidates.extend(self.directory.glob("*.json.gz"))
        for path in candidates:
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((path, stat.st_size, stat.st_mtime))
        entries.sort(key=lambda e: (e[2], e[0].name))
        return entries

    def disk_usage(self) -> tuple[int, int]:
        """``(num_entries, total_bytes)`` of the disk layer."""
        entries = self.disk_entries()
        return len(entries), sum(size for _, size, _ in entries)

    def prune(self, budget: int | None = None) -> dict[str, int]:
        """Evict oldest-mtime disk entries until the store fits ``budget``.

        ``budget`` defaults to the configured ``disk_budget``; passing an
        explicit value (e.g. ``0`` to empty the store) overrides it.
        Returns a summary: entries/bytes removed and kept.
        """
        if budget is None:
            budget = self.disk_budget
        if self.directory is None or budget is None:
            num, size = self.disk_usage()
            return {"removed": 0, "removed_bytes": 0,
                    "kept": num, "kept_bytes": size}
        entries = self.disk_entries()
        total = sum(size for _, size, _ in entries)
        removed = removed_bytes = 0
        for path, size, _ in entries:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            # The memory layer may still hold the record; that is fine —
            # eviction bounds disk, not correctness.
            total -= size
            removed += 1
            removed_bytes += size
        with self._lock:
            self.evictions += removed
            self._disk_estimate = total  # re-anchor the running estimate
        if removed:
            _EVICTIONS.labels(layer="disk").inc(removed)
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "kept": len(entries) - removed,
            "kept_bytes": total,
        }

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus the in-memory size.

        ``evictions`` (disk, the historical key) is kept alongside the
        explicit ``evictions_disk`` alias so existing readers survive.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._memory),
                "evictions": self.evictions,
                "evictions_disk": self.evictions,
                "evictions_memory": self.evictions_memory,
                "compressed_records": self.compressed_records,
            }

    def clear(self) -> None:
        """Drop the in-memory layer (disk files are left alone)."""
        with self._lock:
            self._memory.clear()
