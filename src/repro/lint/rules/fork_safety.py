"""REP005 — fork/pickle safety of work handed to process pools.

Everything submitted to a ``ProcessPoolExecutor`` or spawned as a
``multiprocessing.Process`` crosses a pickle boundary (and must, for
spawn-start interpreters to behave like forked ones — the engine's
tasks carry *names, not callables* for exactly this reason).  Lambdas,
closures, locks, sockets and open files do not pickle; a lambda that
works under fork on Linux breaks the moment the start method changes
or a watchdog worker is respawned.  This rule flags, per module:

* ``<pool>.submit(...)`` / ``<pool>.map(...)`` where ``<pool>`` was
  assigned from ``ProcessPoolExecutor(...)`` in the same module and any
  argument contains a ``lambda``;
* ``Process(target=...)`` / ``ctx.Process(target=...)`` calls whose
  target or args contain a ``lambda``;
* submissions whose first argument names a function *defined inside
  another function* in the same module (a closure — unpicklable);
* submissions passing a name assigned from ``threading.Lock()`` /
  ``RLock()`` / ``Condition()`` / ``Semaphore()`` in the same module
  (locks never pickle).

Thread pools are exempt: nothing is pickled there.  The analysis is
per-module and name-based; exotic aliasing it cannot see should be
caught in review — or waived here with a reason if flagged wrongly.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..base import Finding, ModuleContext, Rule, register

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore"}


def _assigned_name(target: ast.AST) -> str | None:
    """`x = ...` → "x"; `self._executor = ...` → "_executor"."""
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _call_callee(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _receiver_name(func: ast.Attribute) -> str | None:
    """`pool.submit` → "pool"; `self._executor.submit` → "_executor"."""
    return _assigned_name(func.value)


def _contains_lambda(node: ast.AST) -> bool:
    return any(isinstance(n, ast.Lambda) for n in ast.walk(node))


def _collect(module: ModuleContext):
    """Names bound to process pools / locks, and nested function names."""
    pools: Set[str] = set()
    locks: Set[str] = set()
    nested: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            callee = _call_callee(value)
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                name = _assigned_name(target)
                if name is None:
                    continue
                if callee == "ProcessPoolExecutor":
                    pools.add(name)
                elif callee in _LOCK_FACTORIES:
                    locks.add(name)
        elif isinstance(node, _FuncDef):
            for child in ast.walk(node):
                if isinstance(child, _FuncDef) and child is not node:
                    nested.add(child.name)
    return pools, locks, nested


@register
class ForkSafetyRule(Rule):
    __doc__ = __doc__

    id = "REP005"
    title = "unpicklable object (lambda/closure/lock) sent to a process pool"

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        pools, locks, nested = _collect(module)
        findings: List[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(module.finding("REP005", node, message))

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _call_callee(node)
            payload: List[ast.AST] = []
            is_process = False
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map", "apply_async")
                and _receiver_name(node.func) in pools
            ):
                is_process = True
                payload = list(node.args) + [
                    kw.value for kw in node.keywords
                ]
            elif callee == "Process":
                is_process = True
                payload = list(node.args) + [
                    kw.value for kw in node.keywords
                ]
            if not is_process:
                continue
            for arg in payload:
                if _contains_lambda(arg):
                    flag(arg, "lambda crosses a process boundary here; "
                              "lambdas do not pickle — use a module-level "
                              "function")
                name = _assigned_name(arg)
                if name is None:
                    continue
                if name in locks:
                    flag(arg, f"{name!r} is a lock/semaphore; it cannot "
                              "be pickled into a worker process")
                elif name in nested:
                    flag(arg, f"{name!r} is defined inside a function "
                              "(a closure); closures do not pickle — "
                              "move it to module level")
        return iter(findings)
