"""Core data model: jobs, instances and interval algebra."""

from .jobs import TIME_EPS, Instance, Job
from .interval_graphs import (
    chromatic_number,
    greedy_color,
    is_bipartite_overlap,
    max_clique,
    max_independent_set,
    overlap_edges,
)
from .intervals import (
    coverage_counts,
    interesting_intervals,
    intersect,
    intersection_length,
    length,
    merge_intervals,
    span,
    subtract,
    total_length,
)
from .validation import (
    require_capacity,
    require_integral,
    require_interval_jobs,
    require_nonempty,
    require_unit_jobs,
)

__all__ = [
    "TIME_EPS",
    "Instance",
    "Job",
    "chromatic_number",
    "coverage_counts",
    "greedy_color",
    "is_bipartite_overlap",
    "max_clique",
    "max_independent_set",
    "overlap_edges",
    "interesting_intervals",
    "intersect",
    "intersection_length",
    "length",
    "merge_intervals",
    "span",
    "subtract",
    "total_length",
    "require_capacity",
    "require_integral",
    "require_interval_jobs",
    "require_nonempty",
    "require_unit_jobs",
]
