"""E14 — Observations 2-4: lower-bound dominance and individual weakness.

Paper claims: mass and span bounds are each arbitrarily bad alone (the two
Section-4.1 examples), while the demand profile dominates both and is within
a factor 2 of OPT on the instances we can solve exactly.
"""

import pytest

from repro.busytime import (
    best_lower_bound,
    demand_profile_lower_bound,
    exact_busy_time_interval,
    mass_lower_bound,
    span_lower_bound,
)
from repro.core import Instance
from repro.instances import random_interval_instance


def test_individual_bounds_arbitrarily_bad(emit):
    rows = []
    for g in (2, 4, 8):
        # g disjoint unit jobs: mass bound is 1, OPT = g
        disjoint = Instance.from_intervals(
            [(2 * i, 2 * i + 1) for i in range(g)]
        )
        mass = mass_lower_bound(disjoint, g)
        opt1 = exact_busy_time_interval(disjoint, g).total_busy_time
        # g^2 identical unit jobs: span bound is 1, OPT = g
        identical = Instance.from_intervals([(0, 1)] * (g * g))
        sp = span_lower_bound(identical)
        opt2 = exact_busy_time_interval(identical, g).total_busy_time
        rows.append([g, mass, opt1, opt1 / mass, sp, opt2, opt2 / sp])
        assert opt1 / mass == pytest.approx(g)
        assert opt2 / sp == pytest.approx(g)
    emit(
        "E14 / Section 4.1 — mass and span bounds degrade linearly in g",
        ["g", "mass LB", "OPT(disjoint)", "gap", "span LB",
         "OPT(identical)", "gap"],
        rows,
    )


def test_profile_dominates(rng, emit):
    rows = []
    for (n, g) in [(10, 2), (20, 3), (40, 5)]:
        dominated = 0
        for _ in range(10):
            inst = random_interval_instance(n, 1.5 * n, rng=rng)
            profile = demand_profile_lower_bound(inst, g)
            assert profile >= mass_lower_bound(inst, g) - 1e-9
            assert profile >= span_lower_bound(inst) - 1e-9
            dominated += 1
        rows.append([f"n={n}, g={g}", dominated])
    emit(
        "E14 / Observation 4 — profile >= max(mass, span) on every instance",
        ["family", "instances checked"],
        rows,
    )


def test_profile_within_2_of_opt(rng, emit):
    rows = []
    worst = 0.0
    for _ in range(12):
        inst = random_interval_instance(6, 10.0, rng=rng)
        g = int(rng.integers(1, 4))
        profile = demand_profile_lower_bound(inst, g)
        opt = exact_busy_time_interval(inst, g).total_busy_time
        worst = max(worst, opt / profile)
    rows.append(["random (n=6)", worst])
    emit(
        "E14 — OPT / profile (the 2-approximations imply <= 2)",
        ["family", "max OPT/profile"],
        rows,
    )
    assert worst <= 2.0 + 1e-9


@pytest.mark.parametrize("n", [50, 200])
def test_bound_computation_runtime(benchmark, rng, n):
    inst = random_interval_instance(n, 1.5 * n, rng=rng)
    value = benchmark(best_lower_bound, inst, 4)
    assert value > 0
