"""Job and instance model for active-time and busy-time scheduling.

The paper (Chang, Khuller, Mukherjee; SPAA 2014) works with jobs that have a
release time ``r_j``, a deadline ``d_j`` and a processing length ``p_j``.

Two regimes share this model:

* **Active time** (Section 2/3 of the paper): time is slotted, all parameters
  are integral, and slot ``t`` denotes the unit of time ``[t-1, t)``.  Job
  ``j`` may be scheduled in slots ``{r_j + 1, ..., d_j}``.
* **Busy time** (Section 4): time is continuous, parameters may be real
  numbers, and jobs are scheduled non-preemptively at a start time
  ``s_j in [r_j, d_j - p_j]``.

A job with ``d_j - r_j == p_j`` is an *interval job* (Definition 8): its start
time is forced, so it occupies exactly ``[r_j, d_j)``.  All other jobs are
*flexible*.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

__all__ = ["Job", "Instance", "TIME_EPS"]

#: Tolerance used for all comparisons of real-valued times.  Gadgets in the
#: paper use arbitrarily small ``eps`` separations; callers should keep their
#: own epsilons a few orders of magnitude above this resolution.
TIME_EPS = 1e-9


@dataclass(frozen=True, order=True)
class Job:
    """A single job with a release time, deadline and processing length.

    Parameters
    ----------
    release:
        Earliest time at which the job may start (``r_j``).
    deadline:
        Time by which the job must complete (``d_j``).
    length:
        Required processing time (``p_j``); must be positive and fit inside
        the window ``[release, deadline)``.
    id:
        Numeric identifier, unique within an :class:`Instance`.
    label:
        Optional human-readable tag (used by the paper-gadget generators to
        mark job roles such as ``"rigid"`` or ``"flexible"``).
    """

    release: float
    deadline: float
    length: float
    id: int = 0
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"job {self.id}: length must be positive, got {self.length}")
        if self.deadline - self.release < self.length - TIME_EPS:
            raise ValueError(
                f"job {self.id}: window [{self.release}, {self.deadline}) "
                f"cannot fit length {self.length}"
            )

    # ------------------------------------------------------------------
    # Window geometry
    # ------------------------------------------------------------------
    @property
    def window(self) -> tuple[float, float]:
        """The half-open availability window ``[r_j, d_j)``."""
        return (self.release, self.deadline)

    @property
    def window_length(self) -> float:
        """Length of the availability window, ``d_j - r_j``."""
        return self.deadline - self.release

    @property
    def latest_start(self) -> float:
        """Latest feasible start time, ``d_j - p_j``."""
        return self.deadline - self.length

    @property
    def slack(self) -> float:
        """Scheduling freedom ``(d_j - r_j) - p_j`` (zero for interval jobs)."""
        return self.window_length - self.length

    @property
    def is_interval(self) -> bool:
        """True when the window is exactly as long as the job (Definition 8)."""
        return abs(self.slack) <= TIME_EPS

    @property
    def is_unit(self) -> bool:
        """True when the processing length is one time unit."""
        return abs(self.length - 1.0) <= TIME_EPS

    # ------------------------------------------------------------------
    # Slotted (active-time) view.  Slot ``t`` is the interval [t-1, t).
    # ------------------------------------------------------------------
    def feasible_slots(self) -> range:
        """Slots in which a unit of this job may run: ``{r_j+1, ..., d_j}``.

        Only meaningful for integral instances (active-time model).
        """
        r, d = self.integral_window()
        return range(r + 1, d + 1)

    def integral_window(self) -> tuple[int, int]:
        """Return ``(r_j, d_j)`` as integers, raising if they are not integral."""
        r, d = self.release, self.deadline
        if abs(r - round(r)) > TIME_EPS or abs(d - round(d)) > TIME_EPS:
            raise ValueError(f"job {self.id}: window [{r}, {d}) is not integral")
        return int(round(r)), int(round(d))

    def integral_length(self) -> int:
        """Return ``p_j`` as an integer, raising if it is not integral."""
        if abs(self.length - round(self.length)) > TIME_EPS:
            raise ValueError(f"job {self.id}: length {self.length} is not integral")
        return int(round(self.length))

    def is_live_in_slot(self, t: int) -> bool:
        """Definition 1: job ``j`` is live at slot ``t`` iff ``t in [r_j+1, d_j]``."""
        r, d = self.integral_window()
        return r + 1 <= t <= d

    # ------------------------------------------------------------------
    # Continuous (busy-time) view
    # ------------------------------------------------------------------
    def is_live_at(self, t: float) -> bool:
        """True when ``t`` lies in the window ``[r_j, d_j)``."""
        return self.release - TIME_EPS <= t < self.deadline - TIME_EPS

    def can_start_at(self, s: float) -> bool:
        """True when starting at ``s`` respects both release time and deadline."""
        return (
            s >= self.release - TIME_EPS
            and s + self.length <= self.deadline + TIME_EPS
        )

    def as_interval_job(self, start: float) -> "Job":
        """Pin this job to start at ``start``, producing an interval job.

        This realizes the paper's conversion of a flexible instance into an
        interval instance after the unbounded-capacity placement step
        (Section 4.3): the release time and deadline are tightened so that the
        job must occupy exactly ``[start, start + p_j)``.
        """
        if not self.can_start_at(start):
            raise ValueError(
                f"job {self.id}: cannot start at {start} within window "
                f"[{self.release}, {self.deadline})"
            )
        return replace(self, release=start, deadline=start + self.length)

    def shifted(self, delta: float) -> "Job":
        """Return a copy with the whole window translated by ``delta``."""
        return replace(
            self, release=self.release + delta, deadline=self.deadline + delta
        )


@dataclass(frozen=True)
class Instance:
    """An immutable collection of jobs, the input to every algorithm here.

    Job ids are required to be unique; most constructors assign them
    automatically.  The instance exposes both the continuous-time quantities
    used by busy-time algorithms and the slotted quantities used by the
    active-time algorithms.
    """

    jobs: tuple[Job, ...]

    def __post_init__(self) -> None:
        ids = [j.id for j in self.jobs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate job ids: {dupes}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_jobs(cls, jobs: Iterable[Job]) -> "Instance":
        """Build an instance from fully-specified jobs."""
        return cls(tuple(jobs))

    @classmethod
    def from_tuples(
        cls, triples: Iterable[tuple[float, float, float]]
    ) -> "Instance":
        """Build an instance from ``(release, deadline, length)`` triples.

        Ids are assigned in iteration order starting from zero.
        """
        return cls(
            tuple(
                Job(release=r, deadline=d, length=p, id=i)
                for i, (r, d, p) in enumerate(triples)
            )
        )

    @classmethod
    def from_intervals(
        cls, intervals: Iterable[tuple[float, float]]
    ) -> "Instance":
        """Build an instance of interval jobs from ``(start, end)`` pairs."""
        return cls(
            tuple(
                Job(release=a, deadline=b, length=b - a, id=i)
                for i, (a, b) in enumerate(intervals)
            )
        )

    # ------------------------------------------------------------------
    # Basic aggregates
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, idx: int) -> Job:
        return self.jobs[idx]

    @property
    def n(self) -> int:
        """Number of jobs."""
        return len(self.jobs)

    @property
    def total_length(self) -> float:
        """Total processing mass ``P = sum_j p_j`` (written ``ℓ(J)`` in §4)."""
        return sum(j.length for j in self.jobs)

    @property
    def earliest_release(self) -> float:
        """``min_j r_j`` (paper WLOG normalizes this to 0)."""
        if not self.jobs:
            return 0.0
        return min(j.release for j in self.jobs)

    @property
    def latest_deadline(self) -> float:
        """``T = max_j d_j``, the latest relevant time."""
        if not self.jobs:
            return 0.0
        return max(j.deadline for j in self.jobs)

    @property
    def horizon(self) -> int:
        """Number of relevant slots ``T`` for an integral instance."""
        if not self.jobs:
            return 0
        t = self.latest_deadline
        if abs(t - round(t)) > TIME_EPS:
            raise ValueError("horizon requested on a non-integral instance")
        return int(round(t))

    # ------------------------------------------------------------------
    # Structure predicates
    # ------------------------------------------------------------------
    @property
    def all_interval(self) -> bool:
        """True when every job is an interval job (rigid start times)."""
        return all(j.is_interval for j in self.jobs)

    @property
    def all_unit(self) -> bool:
        """True when every job has unit length."""
        return all(j.is_unit for j in self.jobs)

    @property
    def is_integral(self) -> bool:
        """True when all releases, deadlines and lengths are integers."""

        def ok(x: float) -> bool:
            return abs(x - round(x)) <= TIME_EPS

        return all(
            ok(j.release) and ok(j.deadline) and ok(j.length) for j in self.jobs
        )

    def is_proper(self) -> bool:
        """True when no job window strictly contains another (``proper`` instances).

        Flammini et al. show greedy-by-release-time is 2-approximate on proper
        interval instances; the paper's ``Q_i`` extraction in Theorem 5 reduces
        each bundle to a proper subset first.
        """
        for a, b in itertools.combinations(self.jobs, 2):
            if _strictly_contains(a, b) or _strictly_contains(b, a):
                return False
        return True

    def is_clique(self) -> bool:
        """True when some time point is contained in every job window."""
        if not self.jobs:
            return True
        lo = max(j.release for j in self.jobs)
        hi = min(j.deadline for j in self.jobs)
        return lo < hi - TIME_EPS

    def is_laminar(self) -> bool:
        """True when any two windows are disjoint or nested (laminar family)."""
        for a, b in itertools.combinations(self.jobs, 2):
            if _windows_cross(a, b):
                return False
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_jobs_in_slot(self, t: int) -> list[Job]:
        """Jobs live at slot ``t`` in the slotted model (Definition 1)."""
        return [j for j in self.jobs if j.is_live_in_slot(t)]

    def active_jobs_at(self, t: float) -> list[Job]:
        """Interval jobs whose ``[r_j, d_j)`` contains time ``t`` (the set
        ``A(t)`` of Definition 11)."""
        return [j for j in self.jobs if j.is_live_at(t)]

    def raw_demand_at(self, t: float) -> int:
        """``|A(t)|``: number of interval jobs covering time ``t``."""
        return len(self.active_jobs_at(t))

    def demand_at(self, t: float, g: int) -> int:
        """``D(t) = ceil(|A(t)| / g)``: machines forced busy at ``t``."""
        return -(-self.raw_demand_at(t) // g)

    def job_by_id(self, job_id: int) -> Job:
        """Look up a job by id (raises ``KeyError`` when absent)."""
        for j in self.jobs:
            if j.id == job_id:
                return j
        raise KeyError(f"no job with id {job_id}")

    def subset(self, ids: Iterable[int]) -> "Instance":
        """Restrict the instance to the given job ids (order preserved)."""
        wanted = set(ids)
        return Instance(tuple(j for j in self.jobs if j.id in wanted))

    def without(self, ids: Iterable[int]) -> "Instance":
        """Drop the given job ids."""
        unwanted = set(ids)
        return Instance(tuple(j for j in self.jobs if j.id not in unwanted))

    def renumbered(self) -> "Instance":
        """Return a copy with ids reassigned to ``0..n-1`` in current order."""
        return Instance(
            tuple(replace(j, id=i) for i, j in enumerate(self.jobs))
        )

    def merged_with(self, other: "Instance") -> "Instance":
        """Concatenate two instances, renumbering the second to avoid clashes."""
        offset = 1 + max((j.id for j in self.jobs), default=-1)
        shifted = tuple(replace(j, id=j.id + offset) for j in other.jobs)
        return Instance(self.jobs + shifted)

    def sorted_by(self, key, reverse: bool = False) -> "Instance":
        """Return a copy with jobs reordered by ``key``."""
        return Instance(tuple(sorted(self.jobs, key=key, reverse=reverse)))

    def event_points(self) -> list[float]:
        """Sorted, de-duplicated list of all releases and deadlines."""
        pts = sorted({j.release for j in self.jobs} | {j.deadline for j in self.jobs})
        return pts

    def describe(self) -> str:
        """One-line human-readable summary (used by examples and reports)."""
        kinds = []
        if self.all_interval:
            kinds.append("interval")
        if self.all_unit:
            kinds.append("unit")
        if self.is_integral:
            kinds.append("integral")
        kind = ",".join(kinds) if kinds else "flexible"
        return (
            f"Instance(n={self.n}, P={self.total_length:g}, "
            f"span=[{self.earliest_release:g},{self.latest_deadline:g}), {kind})"
        )


def _strictly_contains(outer: Job, inner: Job) -> bool:
    """True when ``inner``'s window is strictly inside ``outer``'s window."""
    return (
        outer.release <= inner.release + TIME_EPS
        and inner.deadline <= outer.deadline + TIME_EPS
        and (
            outer.release < inner.release - TIME_EPS
            or inner.deadline < outer.deadline - TIME_EPS
        )
    )


def _windows_cross(a: Job, b: Job) -> bool:
    """True when the windows overlap but neither contains the other."""
    lo = max(a.release, b.release)
    hi = min(a.deadline, b.deadline)
    if lo >= hi - TIME_EPS:  # disjoint
        return False
    a_in_b = b.release <= a.release + TIME_EPS and a.deadline <= b.deadline + TIME_EPS
    b_in_a = a.release <= b.release + TIME_EPS and b.deadline <= a.deadline + TIME_EPS
    return not (a_in_b or b_in_a)
