"""Tests for the Kumar–Rudra-style level/parity 2-approximation."""

import pytest

from repro.busytime import (
    assign_levels,
    demand_profile_lower_bound,
    exact_busy_time_interval,
    kumar_rudra,
    pad_to_multiple_of_g,
    two_color_level,
)
from repro.core import Instance, Job, coverage_counts
from repro.instances import figure8, random_interval_instance


class TestAssignLevels:
    def test_every_job_assigned(self, rng):
        for _ in range(10):
            inst = random_interval_instance(8, 15.0, rng=rng)
            g = int(rng.integers(1, 4))
            padded, _ = pad_to_multiple_of_g(inst, g)
            levels = assign_levels(padded, g)
            assert set(levels) == {j.id for j in padded.jobs}
            assert min(levels.values()) >= 1

    def test_at_most_two_per_level_pointwise(self, rng):
        for _ in range(15):
            inst = random_interval_instance(10, 18.0, rng=rng)
            g = int(rng.integers(1, 4))
            padded, _ = pad_to_multiple_of_g(inst, g)
            levels = assign_levels(padded, g)
            by_level: dict[int, list] = {}
            for job in padded.jobs:
                by_level.setdefault(levels[job.id], []).append(job)
            for members in by_level.values():
                cov = coverage_counts([j.window for j in members])
                assert max((c for _, c in cov), default=0) <= 2

    def test_levels_at_most_max_raw_demand(self, rng):
        for _ in range(10):
            inst = random_interval_instance(8, 15.0, rng=rng)
            g = int(rng.integers(1, 4))
            padded, _ = pad_to_multiple_of_g(inst, g)
            from repro.busytime import compute_demand_profile

            levels = assign_levels(padded, g)
            assert max(levels.values()) <= compute_demand_profile(
                padded, 1
            ).max_raw


class TestTwoColoring:
    def test_disjoint_jobs_any_coloring(self):
        jobs = [Job(0, 1, 1, id=0), Job(2, 3, 1, id=1)]
        coloring = two_color_level(jobs)
        assert set(coloring) == {0, 1}

    def test_overlapping_pair_separated(self):
        jobs = [Job(0, 2, 2, id=0), Job(1, 3, 2, id=1)]
        coloring = two_color_level(jobs)
        assert coloring[0] != coloring[1]

    def test_star_overlap_bipartite(self):
        center = Job(0, 10, 10, id=0)
        leaves = [Job(2 * i + 1, 2 * i + 2, 1, id=i + 1) for i in range(3)]
        coloring = two_color_level([center] + leaves)
        for leaf in leaves:
            assert coloring[leaf.id] != coloring[0]

    def test_triple_overlap_raises(self):
        jobs = [Job(0, 2, 2, id=0), Job(0, 2, 2, id=1), Job(0, 2, 2, id=2)]
        with pytest.raises(RuntimeError, match="bipartite"):
            two_color_level(jobs)


class TestKumarRudra:
    def test_verifies(self, interval_instance):
        s = kumar_rudra(interval_instance, 2)
        s.verify()

    def test_within_2x_profile(self, rng):
        for _ in range(25):
            inst = random_interval_instance(12, 20.0, rng=rng)
            g = int(rng.integers(1, 5))
            s = kumar_rudra(inst, g)
            s.verify()
            assert s.total_busy_time <= 2 * demand_profile_lower_bound(
                inst, g
            ) + 1e-6

    def test_within_2x_opt_small(self, rng):
        for _ in range(6):
            inst = random_interval_instance(6, 10.0, rng=rng)
            g = int(rng.integers(1, 4))
            opt = exact_busy_time_interval(inst, g).total_busy_time
            s = kumar_rudra(inst, g)
            assert s.total_busy_time <= 2 * opt + 1e-6

    def test_no_dummies_in_output(self, rng):
        from repro.busytime.demand_profile import DUMMY_LABEL

        inst = random_interval_instance(8, 15.0, rng=rng)
        s = kumar_rudra(inst, 3)
        for b in s.bundles:
            for j in b.jobs:
                assert j.label != DUMMY_LABEL

    def test_figure8(self):
        gad = figure8()
        s = kumar_rudra(gad.instance, gad.g)
        s.verify()
        assert s.total_busy_time <= 2 * gad.facts["opt_busy_time"] + 1e-9

    def test_empty(self):
        assert kumar_rudra(Instance(tuple()), 2).total_busy_time == 0.0
