"""E4 — Section 3.5: the LP integrality gap approaches 2.

Paper claim: on the gap family, the integral optimum is 2g while the LP
optimum is g + 1, so the gap 2g/(g+1) -> 2; no LP-rounding algorithm can
beat factor 2.  We regenerate the family across g, solve both programs, and
confirm the rounding algorithm achieves the integral optimum here.
"""

import pytest

from repro.activetime import exact_active_time, round_active_time
from repro.instances import lp_gap
from repro.lp import solve_active_time_lp


def test_gap_sweep(emit):
    rows = []
    for g in (2, 4, 8, 12, 16):
        gad = lp_gap(g)
        lp = solve_active_time_lp(gad.instance, g)
        ip = exact_active_time(gad.instance, g)
        gap = ip.cost / lp.objective
        rows.append([g, lp.objective, ip.cost, gap, 2 * g / (g + 1)])
        assert lp.objective == pytest.approx(g + 1, abs=1e-6)
        assert ip.cost == 2 * g
    emit(
        "E4 / Section 3.5 — LP integrality gap (paper: 2g/(g+1) -> 2)",
        ["g", "LP opt", "IP opt", "measured gap", "paper formula"],
        rows,
    )


def test_gap_monotone_to_two():
    gaps = []
    for g in (2, 4, 8, 16):
        gad = lp_gap(g)
        lp = solve_active_time_lp(gad.instance, g)
        gaps.append(exact_active_time(gad.instance, g).cost / lp.objective)
    assert gaps == sorted(gaps)
    assert gaps[-1] > 1.85


def test_rounding_hits_ip_optimum_on_gap_family():
    for g in (2, 4, 8):
        gad = lp_gap(g)
        sol = round_active_time(gad.instance, g, strict=True)
        assert sol.cost == 2 * g  # = IP optimum: rounding is tight here


@pytest.mark.parametrize("g", [4, 8])
def test_lp_solve_runtime(benchmark, g):
    gad = lp_gap(g)
    lp = benchmark(solve_active_time_lp, gad.instance, g)
    assert lp.objective == pytest.approx(g + 1, abs=1e-6)
