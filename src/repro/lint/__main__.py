"""``python -m repro.lint`` — same surface as ``repro lint``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
