"""Unit tests for the active-time LP/IP builder (repro.lp.model)."""

import numpy as np
import pytest

from repro.core import Instance
from repro.lp import build_active_time_model


class TestModelShape:
    def test_variable_count(self, tiny_instance):
        model = build_active_time_model(tiny_instance, g=2)
        pairs = sum(len(j.feasible_slots()) for j in tiny_instance.jobs)
        assert model.num_vars == model.T + pairs
        assert model.num_y == tiny_instance.horizon

    def test_constraint_count(self, tiny_instance):
        model = build_active_time_model(tiny_instance, g=2)
        pairs = sum(len(j.feasible_slots()) for j in tiny_instance.jobs)
        # pairing constraints + per-slot capacity + per-job coverage
        assert model.a_ub.shape[0] == pairs + model.T + tiny_instance.n

    def test_objective_is_y_only(self, tiny_instance):
        model = build_active_time_model(tiny_instance, g=2)
        assert model.objective[: model.T].sum() == model.T
        assert model.objective[model.T :].sum() == 0

    def test_x_index_covers_windows_only(self, tiny_instance):
        model = build_active_time_model(tiny_instance, g=2)
        for (jid, t) in model.x_index:
            assert tiny_instance.job_by_id(jid).is_live_in_slot(t)

    def test_y_column(self, tiny_instance):
        model = build_active_time_model(tiny_instance, g=2)
        assert model.y_column(1) == 0
        assert model.y_column(model.T) == model.T - 1
        with pytest.raises(IndexError):
            model.y_column(0)
        with pytest.raises(IndexError):
            model.y_column(model.T + 1)


class TestModelSemantics:
    def test_integral_solution_satisfies_system(self, tiny_instance):
        """A hand-built feasible schedule must satisfy A_ub z <= b_ub."""
        model = build_active_time_model(tiny_instance, g=2)
        z = np.zeros(model.num_vars)
        # open all slots, schedule job 0 in {1,2}, job 1 in {2,3,4}, job 2 in {1}
        for t in range(1, model.T + 1):
            z[model.y_column(t)] = 1.0
        for jid, slots in {0: [1, 2], 1: [2, 3, 4], 2: [1]}.items():
            for t in slots:
                z[model.x_index[(jid, t)]] = 1.0
        assert np.all(model.a_ub @ z <= model.b_ub + 1e-9)

    def test_overfull_slot_violates(self, tiny_instance):
        model = build_active_time_model(tiny_instance, g=1)
        z = np.zeros(model.num_vars)
        z[model.y_column(1)] = 1.0
        z[model.x_index[(0, 1)]] = 1.0
        z[model.x_index[(2, 1)]] = 1.0  # two jobs in slot 1 with g=1
        assert not np.all(model.a_ub @ z <= model.b_ub + 1e-9)

    def test_unopened_slot_violates(self, tiny_instance):
        model = build_active_time_model(tiny_instance, g=2)
        z = np.zeros(model.num_vars)
        z[model.x_index[(0, 1)]] = 1.0  # x > y = 0
        assert not np.all(model.a_ub @ z <= model.b_ub + 1e-9)

    def test_extract_roundtrip(self, tiny_instance):
        model = build_active_time_model(tiny_instance, g=2)
        z = np.zeros(model.num_vars)
        z[model.y_column(3)] = 0.7
        z[model.x_index[(1, 3)]] = 0.4
        y, x = model.extract(z)
        assert y[3] == pytest.approx(0.7)
        assert x[(1, 3)] == pytest.approx(0.4)
        assert (0, 1) not in x

    def test_bounds(self, tiny_instance):
        model = build_active_time_model(tiny_instance, g=2)
        bounds = model.variable_bounds()
        assert len(bounds) == model.num_vars
        assert all(b == (0.0, 1.0) for b in bounds)


class TestValidation:
    def test_rejects_non_integral(self):
        inst = Instance.from_intervals([(0.0, 1.5)])
        with pytest.raises(ValueError):
            build_active_time_model(inst, 1)

    def test_rejects_bad_g(self, tiny_instance):
        with pytest.raises(ValueError):
            build_active_time_model(tiny_instance, 0)
