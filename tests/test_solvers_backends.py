"""The backend-neutral solver layer: IR, backends, registry, parity.

The parity classes run every registered backend (``python-mip`` cases
auto-skip when the package is missing) against the same instances and
require objectives within 1e-6 of each other plus schedules that pass
``core/validation`` — the acceptance bar for swapping backends freely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.activetime import exact_active_time, round_active_time
from repro.busytime import exact_busy_time_interval
from repro.core import Instance
from repro.instances import random_active_time_instance
from repro.lp import solve_active_time_lp
from repro.solvers import (
    BACKEND_ENV_VAR,
    LinearProgram,
    SolverResult,
    available_backend_names,
    backend_names,
    get_backend,
    resolve_backend,
    solve_ir,
)


def _all_backend_params():
    """One pytest param per registered backend; unavailable ones skip."""
    params = []
    for name in backend_names():
        backend = get_backend(name)
        marks = (
            []
            if backend.available()
            else [pytest.mark.skip(reason=f"backend {name} unavailable")]
        )
        params.append(pytest.param(name, marks=marks, id=name))
    return params


@pytest.fixture(params=_all_backend_params())
def backend_name(request) -> str:
    return request.param


# ----------------------------------------------------------------------
# IR construction
# ----------------------------------------------------------------------
class TestLinearProgram:
    def test_build_validates_shapes(self):
        with pytest.raises(ValueError, match="columns"):
            LinearProgram.build([1.0, 2.0], a_ub=[[1.0]], b_ub=[1.0])
        with pytest.raises(ValueError, match="together"):
            LinearProgram.build([1.0], a_ub=[[1.0]])
        with pytest.raises(ValueError, match="entry per column"):
            LinearProgram.build([1.0], lb=[0.0, 0.0])

    def test_milp_detection_and_relaxation(self):
        lp = LinearProgram.build([1.0, 1.0], integrality=[1, 0])
        assert lp.is_milp
        assert lp.required_capability == "milp"
        relaxed = lp.relaxed()
        assert not relaxed.is_milp
        assert relaxed.required_capability == "lp"

    def test_from_two_sided_splits_rows(self):
        # row 0: equality; row 1: two-sided -> two <= rows; row 2: one-sided
        lp = LinearProgram.from_two_sided(
            [1.0, 1.0],
            [[1.0, 1.0], [1.0, -1.0], [2.0, 0.0]],
            [3.0, -1.0, -np.inf],
            [3.0, 1.0, 5.0],
        )
        assert lp.a_eq.shape[0] == 1
        assert lp.b_eq.tolist() == [3.0]
        assert lp.a_ub.shape[0] == 3  # ub side of rows 1,2 + lb side of row 1
        assert sorted(lp.b_ub.tolist()) == [1.0, 1.0, 5.0]

    def test_as_feasibility_and_with_bounds(self):
        lp = LinearProgram.build([1.0, -1.0], lb=[0, 0], ub=[2, 2])
        assert lp.as_feasibility().c.tolist() == [0.0, 0.0]
        pinned = lp.with_bounds([1, 0], [1, 2])
        assert pinned.lb.tolist() == [1.0, 0.0]
        with pytest.raises(ValueError):
            lp.with_bounds([0.0], [1.0])


# ----------------------------------------------------------------------
# Backend contract (every backend, same expectations)
# ----------------------------------------------------------------------
class TestBackendContract:
    def test_lp_optimum(self, backend_name):
        # max x + 2y over x+y<=4, x<=3, y<=2  ->  (2, 2), value -6
        lp = LinearProgram.build(
            [-1.0, -2.0], a_ub=[[1.0, 1.0]], b_ub=[4.0],
            lb=[0.0, 0.0], ub=[3.0, 2.0],
        )
        result = solve_ir(lp, backend=backend_name)
        assert result.ok and result.backend == backend_name
        assert result.objective == pytest.approx(-6.0, abs=1e-6)
        assert result.x == pytest.approx([2.0, 2.0], abs=1e-6)

    def test_milp_optimum(self, backend_name):
        # knapsack-ish: max x + y over 2x+3y<=7, x,y integer in [0,2]
        lp = LinearProgram.build(
            [-1.0, -1.0], a_ub=[[2.0, 3.0]], b_ub=[7.0],
            lb=[0.0, 0.0], ub=[2.0, 2.0], integrality=[1, 1],
        )
        result = solve_ir(lp, backend=backend_name)
        assert result.ok
        assert result.objective == pytest.approx(-3.0, abs=1e-6)

    def test_equality_rows(self, backend_name):
        lp = LinearProgram.build(
            [1.0, 1.0], a_eq=[[1.0, 1.0]], b_eq=[1.0],
            lb=[0.0, 0.0], ub=[1.0, 1.0],
        )
        result = solve_ir(lp, backend=backend_name)
        assert result.ok
        assert result.objective == pytest.approx(1.0, abs=1e-6)

    def test_infeasible_detected(self, backend_name):
        lp = LinearProgram.build(
            [1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -3.0],
            lb=[0.0], ub=[5.0],
        )
        result = solve_ir(lp, backend=backend_name)
        assert result.status == "infeasible"
        assert result.x is None
        with pytest.raises(RuntimeError, match="infeasible"):
            result.require_optimal("probe")

    def test_empty_program(self, backend_name):
        result = solve_ir(LinearProgram.build([]), backend=backend_name)
        assert result.ok and result.objective == 0.0

    def test_unbounded_detected(self, backend_name):
        lp = LinearProgram.build([-1.0], lb=[0.0])
        result = solve_ir(lp, backend=backend_name)
        assert result.status == "unbounded"


# ----------------------------------------------------------------------
# Algorithm-level parity across backends
# ----------------------------------------------------------------------
#: Small instances where every algorithm is feasible at the paired g.
PARITY_CASES = [
    (Instance.from_tuples([(0, 4, 2), (1, 5, 3), (0, 6, 1)]), 2),
    (Instance.from_tuples([(0, 4, 2), (1, 5, 3), (0, 6, 1), (2, 6, 2)]), 2),
    (Instance.from_tuples([(0, 2, 2), (0, 3, 1), (1, 4, 2), (2, 5, 3)]), 3),
]


class TestBackendParity:
    def test_lp_relaxation_matches_default(self, backend_name):
        for instance, g in PARITY_CASES:
            expected = solve_active_time_lp(instance, g)
            got = solve_active_time_lp(instance, g, backend=backend_name)
            assert got.objective == pytest.approx(
                expected.objective, abs=1e-6
            )

    def test_exact_active_time_matches_and_validates(self, backend_name):
        for instance, g in PARITY_CASES:
            expected = exact_active_time(instance, g)
            got = exact_active_time(instance, g, backend=backend_name)
            got.verify()  # core/validation via schedule assignment checks
            assert got.cost == expected.cost

    def test_rounding_validates_and_keeps_guarantee(self, backend_name):
        for instance, g in PARITY_CASES:
            sol = round_active_time(
                instance, g, strict=True, backend=backend_name
            )
            sol.schedule.verify()
            assert sol.guarantee_holds

    def test_busy_exact_matches_and_validates(self, backend_name):
        instance = Instance.from_tuples(
            [(0, 3, 3), (1, 4, 3), (2, 6, 4), (5, 8, 3)]
        )
        expected = exact_busy_time_interval(instance, 2)
        got = exact_busy_time_interval(instance, 2, backend=backend_name)
        got.verify()
        assert got.total_busy_time == pytest.approx(
            expected.total_busy_time, abs=1e-6
        )

    def test_random_instances_agree(self, backend_name, rng):
        checked = 0
        for _ in range(6):
            instance = random_active_time_instance(5, 7, rng=rng)
            g = int(rng.integers(2, 4))
            try:
                expected = solve_active_time_lp(instance, g)
            except RuntimeError:
                continue
            got = solve_active_time_lp(instance, g, backend=backend_name)
            assert got.objective == pytest.approx(
                expected.objective, abs=1e-6
            )
            checked += 1
        assert checked >= 2

    def test_infeasible_instance_raises(self, backend_name):
        bad = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        with pytest.raises(RuntimeError):
            solve_active_time_lp(bad, 1, backend=backend_name)


# ----------------------------------------------------------------------
# Registry selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_default_is_scipy(self):
        assert resolve_backend(None).name == "scipy-highs"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert resolve_backend(None).name == "reference"

    def test_env_var_typo_errors_with_menu(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "refrence")
        with pytest.raises(ValueError, match="available backends"):
            resolve_backend(None)

    def test_unknown_name_lists_menu(self):
        with pytest.raises(ValueError) as exc:
            resolve_backend("highs-scipy")
        for name in backend_names():
            assert name in str(exc.value)

    def test_explicit_backend_lacking_capability_errors(self):
        class LpOnly:
            name = "lp-only-test"

            def capabilities(self):
                return frozenset({"lp"})

            def available(self):
                return True

            def solve(self, lp, *, time_limit=None, options=None):
                raise NotImplementedError

        with pytest.raises(ValueError, match="milp"):
            resolve_backend(LpOnly(), require={"milp"})

    def test_available_names_subset(self):
        available = available_backend_names()
        assert set(available) <= set(backend_names())
        assert "scipy-highs" in available
        assert "reference" in available

    def test_mip_gated_cleanly_when_missing(self):
        mip = get_backend("mip")
        if mip.available():
            pytest.skip("python-mip installed; gating not exercised")
        with pytest.raises(ValueError, match="not available"):
            resolve_backend("mip")

    def test_result_status_vocabulary_enforced(self):
        with pytest.raises(ValueError, match="unknown status"):
            SolverResult(status="solved", backend="x")


class TestEngineRouting:
    def test_combinatorial_algorithm_rejects_backend(self, tiny_instance):
        from repro.engine import REGISTRY

        with pytest.raises(ValueError, match="combinatorial"):
            REGISTRY.solve(
                "active", "minimal", tiny_instance, 2, backend="reference"
            )

    def test_registry_routes_backend_param(self, tiny_instance):
        from repro.engine import REGISTRY

        default = REGISTRY.solve("active", "rounding", tiny_instance, 2)
        routed = REGISTRY.solve(
            "active", "rounding", tiny_instance, 2, backend="reference"
        )
        assert routed.objective == default.objective

    def test_specs_declare_backend_capability(self):
        from repro.engine import REGISTRY

        by_name = {
            (s.problem, s.name): s.backend_capability for s in REGISTRY.specs()
        }
        assert by_name[("active", "rounding")] == "lp"
        assert by_name[("active", "exact")] == "milp"
        assert by_name[("active", "minimal")] is None
        assert by_name[("busy", "exact")] == "milp"

    def test_sweep_grid_attaches_backend_only_to_lp_solvers(self):
        from repro.engine import SweepGrid, build_sweep_tasks

        grid = SweepGrid(
            problem="active",
            generators=("active",),
            algorithms=("minimal", "rounding"),
            g_values=(3,),
            instances_per_cell=1,
            backend="reference",
        )
        tasks = build_sweep_tasks([grid])
        params = {t.algorithm: t.params for t in tasks}
        assert params["rounding"] == {"backend": "reference"}
        assert params["minimal"] == {}
        # backend feeds the digest of routed tasks only
        plain = build_sweep_tasks(
            [
                SweepGrid(
                    problem="active",
                    generators=("active",),
                    algorithms=("minimal", "rounding"),
                    g_values=(3,),
                    instances_per_cell=1,
                )
            ]
        )
        plain_digests = {t.algorithm: t.digest for t in plain}
        plain_params = {t.algorithm: t.params for t in plain}
        digests = {t.algorithm: t.digest for t in tasks}
        assert digests["minimal"] == plain_digests["minimal"]
        assert digests["rounding"] != plain_digests["rounding"]
        # with no explicit backend, the *effective* default is pinned so
        # cached results always record their producing backend
        assert plain_params["rounding"] == {"backend": "scipy-highs"}

    def test_env_backend_feeds_task_digest(self, monkeypatch):
        from repro.engine import SweepGrid

        grid = SweepGrid(
            problem="active",
            generators=("active",),
            algorithms=("rounding",),
            g_values=(3,),
            instances_per_cell=1,
        )
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert grid.task_params("rounding") == {"backend": "reference"}
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert grid.task_params("rounding") == {"backend": "scipy-highs"}

    def test_sweep_grid_unknown_backend_fails_validation(self):
        from repro.engine import SweepGrid

        grid = SweepGrid(
            problem="active",
            generators=("active",),
            algorithms=("rounding",),
            backend="refrence",
        )
        with pytest.raises(ValueError, match="available backends"):
            grid.validate()


# ----------------------------------------------------------------------
# Warm-start validation (helper shared across backends)
# ----------------------------------------------------------------------
class TestWarmStartValidation:
    def _lp(self):
        return LinearProgram.build(
            [1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[2.0],
            lb=[0.0, 0.0], ub=[2.0, 2.0],
        )

    def test_wrong_length_reports_expected_and_actual(self):
        from repro.solvers import validate_warm_start

        with pytest.raises(ValueError, match="3 entries.*2 columns"):
            validate_warm_start(self._lp(), [1.0, 1.0, 1.0])

    def test_non_finite_rejected(self):
        from repro.solvers import validate_warm_start

        with pytest.raises(ValueError, match="finite"):
            validate_warm_start(self._lp(), [np.nan, 1.0])

    def test_valid_vector_passes_through_as_floats(self):
        from repro.solvers import validate_warm_start

        out = validate_warm_start(self._lp(), [1, 0])
        assert out.dtype == float and out.tolist() == [1.0, 0.0]

    def test_highs_solve_rejects_bad_warm_start(self):
        from repro.solvers import HighsBackend

        backend = HighsBackend()
        if not backend.available():
            pytest.skip("highs bindings unavailable")
        with pytest.raises(ValueError, match="1 entries.*2 columns"):
            backend.solve(self._lp(), options={"warm_start": [1.0]})


# ----------------------------------------------------------------------
# The highs backend's resident-model resolve cache
# ----------------------------------------------------------------------
def _require_highs():
    from repro.solvers import HighsBackend

    backend = HighsBackend()
    if not backend.available():
        pytest.skip("highs bindings unavailable")
    return backend


def _chain_lp(rhs: float, cost: float = -1.0):
    """Same structure for every call; only coefficient values vary."""
    return LinearProgram.build(
        [cost, -2.0], a_ub=[[1.0, 1.0]], b_ub=[rhs],
        lb=[0.0, 0.0], ub=[3.0, 2.0],
    )


class TestHighsResolve:
    def test_warm_resolve_matches_cold(self):
        warm = _require_highs()
        cold = _require_highs()
        for rhs in (4.0, 3.0, 5.0, 2.5):
            a = warm.solve(_chain_lp(rhs))
            b = cold.solve(_chain_lp(rhs), options={"resolve": False})
            assert a.status == b.status == "optimal"
            assert a.objective == pytest.approx(b.objective, abs=1e-9)
            assert b.extra["resolve"] == "cold"
        # the chain after the first solve ran warm, not cold
        stats = warm.resolve_stats()
        assert stats["hits"] == 3
        assert stats["misses"] == 1
        assert stats["resident"] == 1
        assert stats["warm_starts"] == 3
        assert cold.resolve_stats()["resident"] == 0

    def test_milp_warm_chain_matches_cold(self):
        warm = _require_highs()
        for rhs in (7.0, 6.0, 5.0):
            lp = LinearProgram.build(
                [-1.0, -1.0], a_ub=[[2.0, 3.0]], b_ub=[rhs],
                lb=[0.0, 0.0], ub=[2.0, 2.0], integrality=[1, 1],
            )
            a = warm.solve(lp)
            b = warm.solve(lp, options={"resolve": False})
            assert a.status == b.status == "optimal"
            assert a.objective == pytest.approx(b.objective, abs=1e-9)
            # integral solutions, both paths
            assert np.allclose(a.x, np.round(a.x), atol=1e-6)

    def test_lp_optimum_exposes_duals(self):
        backend = _require_highs()
        result = backend.solve(_chain_lp(4.0))
        assert result.status == "optimal"
        assert "duals_ub" in result.extra
        assert len(result.extra["duals_ub"]) == 1
        assert len(result.extra["reduced_costs"]) == 2

    def test_structure_change_is_a_miss(self):
        backend = _require_highs()
        backend.solve(_chain_lp(4.0))
        # extra row -> different sparsity pattern -> new resident model
        other = LinearProgram.build(
            [-1.0, -2.0], a_ub=[[1.0, 1.0], [1.0, 0.0]],
            b_ub=[4.0, 3.0], lb=[0.0, 0.0], ub=[3.0, 2.0],
        )
        backend.solve(other)
        stats = backend.resolve_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 2
        assert stats["resident"] == 2

    def test_resident_cache_evicts_lru(self):
        from repro.solvers import HighsBackend

        backend = HighsBackend(max_resident=2)
        if not backend.available():
            pytest.skip("highs bindings unavailable")
        programs = [
            _chain_lp(4.0),  # structure A
            LinearProgram.build(  # structure B (eq row)
                [1.0, 1.0], a_eq=[[1.0, 1.0]], b_eq=[1.0],
                lb=[0.0, 0.0], ub=[1.0, 1.0],
            ),
            LinearProgram.build(  # structure C (single var)
                [1.0], a_ub=[[1.0]], b_ub=[1.0], lb=[0.0], ub=[2.0],
            ),
        ]
        for lp in programs:
            assert backend.solve(lp).status == "optimal"
        assert backend.resolve_stats()["resident"] == 2
        # structure A was evicted: re-solving it is a miss, not a hit —
        # but the answer is identical either way
        result = backend.solve(programs[0])
        assert result.extra["resolve"] == "cold"
        assert result.objective == pytest.approx(-6.0, abs=1e-6)
        assert backend.resolve_stats()["misses"] == 4

    def test_clear_resident_forces_cold_rebuild(self):
        backend = _require_highs()
        backend.solve(_chain_lp(4.0))
        backend.clear_resident()
        result = backend.solve(_chain_lp(4.0))
        assert result.extra["resolve"] == "cold"
        assert backend.resolve_stats()["resident"] == 1

    def test_structure_digest_separates_lp_from_milp(self):
        from repro.solvers import structure_digest

        lp = LinearProgram.build(
            [1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[2.0],
            lb=[0.0, 0.0], ub=[2.0, 2.0], integrality=[1, 1],
        )
        assert structure_digest(lp) != structure_digest(lp.relaxed())
        # values are not structure: digests ignore coefficient changes
        assert structure_digest(_chain_lp(4.0)) == structure_digest(
            _chain_lp(9.0, cost=5.0)
        )
