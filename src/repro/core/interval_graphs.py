"""Interval-graph machinery underlying the busy-time algorithms.

The interval jobs of Section 4 induce an *interval graph* (vertices = jobs,
edges = overlapping windows).  Several classical facts drive the paper's
algorithms and analyses, and are exposed here as reusable primitives:

* **max clique = peak demand** (Helly property: pairwise-overlapping
  intervals share a point), which is why the demand profile is well-defined
  segment-wise;
* **greedy coloring by left endpoint is optimal** (uses exactly max-clique
  colors) — the level structure in Kumar–Rudra-style algorithms;
* a **maximum independent set** of an interval graph is a maximum *track*
  by cardinality (Definition 14 with unit weights).

All functions take plain :class:`~repro.core.jobs.Job` sequences (interval
jobs) and tolerate touching windows (half-open semantics: ``[a,b)`` and
``[b,c)`` do not overlap).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .jobs import TIME_EPS, Job

__all__ = [
    "overlap_edges",
    "max_clique",
    "greedy_color",
    "chromatic_number",
    "max_independent_set",
    "is_bipartite_overlap",
]


def _overlaps(a: Job, b: Job) -> bool:
    return (
        a.release < b.deadline - TIME_EPS and b.release < a.deadline - TIME_EPS
    )


def overlap_edges(jobs: Sequence[Job]) -> list[tuple[int, int]]:
    """All overlapping pairs, as ``(id, id)`` tuples with the smaller first."""
    edges = []
    for i, a in enumerate(jobs):
        for b in jobs[i + 1 :]:
            if _overlaps(a, b):
                edges.append((min(a.id, b.id), max(a.id, b.id)))
    return edges


def max_clique(jobs: Sequence[Job]) -> list[Job]:
    """A maximum clique — the jobs live at the point of peak raw demand.

    By the Helly property of intervals this is exact, found with one sweep.
    """
    if not jobs:
        return []
    events: list[tuple[float, int, Job]] = []
    for j in jobs:
        events.append((j.release, 1, j))
        events.append((j.deadline, -1, j))
    events.sort(key=lambda e: (e[0], e[1]))
    live: dict[int, Job] = {}
    best: list[Job] = []
    for _, kind, job in events:
        if kind == 1:
            live[job.id] = job
            if len(live) > len(best):
                best = list(live.values())
        else:
            live.pop(job.id, None)
    return best


def greedy_color(jobs: Sequence[Job]) -> dict[int, int]:
    """Optimal interval-graph coloring: lowest free color by left endpoint.

    Returns ``job id -> color`` (0-based); the number of colors equals the
    max clique size.  Each color class is a *track* (pairwise disjoint).
    """
    order = sorted(jobs, key=lambda j: (j.release, j.deadline, j.id))
    # colors of jobs still live, as (deadline, color) min-heap substitute
    active: list[tuple[float, int]] = []  # (deadline, color) sorted ad hoc
    free: list[int] = []
    next_color = 0
    coloring: dict[int, int] = {}
    for job in order:
        # retire finished jobs, freeing their colors
        still = []
        for d, c in active:
            if d <= job.release + TIME_EPS:
                free.append(c)
            else:
                still.append((d, c))
        active = still
        if free:
            free.sort()
            color = free.pop(0)
        else:
            color = next_color
            next_color += 1
        coloring[job.id] = color
        active.append((job.deadline, color))
    return coloring


def chromatic_number(jobs: Sequence[Job]) -> int:
    """Colors used by the optimal greedy — equals the max clique size."""
    coloring = greedy_color(jobs)
    return 1 + max(coloring.values()) if coloring else 0


def max_independent_set(jobs: Sequence[Job]) -> list[Job]:
    """A maximum-cardinality set of pairwise disjoint jobs.

    The classic earliest-deadline-first sweep (exact for interval graphs);
    the *weighted* variant lives in :func:`repro.busytime.tracks.longest_track`.
    """
    chosen: list[Job] = []
    last_end = -float("inf")
    for job in sorted(jobs, key=lambda j: (j.deadline, j.release, j.id)):
        if job.release >= last_end - TIME_EPS:
            chosen.append(job)
            last_end = job.deadline
    return chosen


def is_bipartite_overlap(jobs: Sequence[Job]) -> bool:
    """True when the overlap graph is 2-colorable.

    For interval graphs this is equivalent to max clique <= 2 (triangle-free
    chordal graphs are forests) — the structural fact behind the per-level
    parity split in the 2-approximations.
    """
    adj: dict[int, list[int]] = {j.id: [] for j in jobs}
    for u, v in overlap_edges(jobs):
        adj[u].append(v)
        adj[v].append(u)
    color: dict[int, int] = {}
    for j in jobs:
        if j.id in color:
            continue
        color[j.id] = 0
        queue = deque([j.id])
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if v not in color:
                    color[v] = 1 - color[u]
                    queue.append(v)
                elif color[v] == color[u]:
                    return False
    return True
