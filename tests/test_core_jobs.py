"""Unit tests for the job/instance model (repro.core.jobs)."""

import pytest

from repro.core import Instance, Job


class TestJobConstruction:
    def test_basic_fields(self):
        j = Job(release=1, deadline=5, length=2, id=7, label="x")
        assert j.release == 1
        assert j.deadline == 5
        assert j.length == 2
        assert j.id == 7
        assert j.label == "x"

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError, match="length"):
            Job(0, 4, 0)
        with pytest.raises(ValueError, match="length"):
            Job(0, 4, -1)

    def test_rejects_window_too_small(self):
        with pytest.raises(ValueError, match="cannot fit"):
            Job(0, 2, 3)

    def test_window_exactly_fits(self):
        j = Job(0, 3, 3)
        assert j.is_interval

    def test_real_valued_job(self):
        j = Job(0.5, 1.7, 0.4)
        assert not j.is_interval
        assert j.slack == pytest.approx(0.8)


class TestJobGeometry:
    def test_window(self):
        assert Job(1, 6, 2).window == (1, 6)

    def test_window_length(self):
        assert Job(1, 6, 2).window_length == 5

    def test_latest_start(self):
        assert Job(1, 6, 2).latest_start == 4

    def test_slack_zero_for_interval(self):
        assert Job(2, 5, 3).slack == 0

    def test_is_unit(self):
        assert Job(0, 3, 1).is_unit
        assert not Job(0, 3, 2).is_unit


class TestSlottedView:
    def test_feasible_slots(self):
        # window [1, 4) -> slots {2, 3, 4}
        assert list(Job(1, 4, 1).feasible_slots()) == [2, 3, 4]

    def test_paper_example_unit_release1_deadline2(self):
        # Paper: release 1, deadline 2 -> schedulable in slot 2, not slot 1.
        j = Job(1, 2, 1)
        assert list(j.feasible_slots()) == [2]
        assert not j.is_live_in_slot(1)
        assert j.is_live_in_slot(2)

    def test_integral_window_rejects_floats(self):
        with pytest.raises(ValueError, match="not integral"):
            Job(0.5, 3.5, 1).integral_window()

    def test_integral_length_rejects_floats(self):
        with pytest.raises(ValueError, match="not integral"):
            Job(0, 3, 1.5).integral_length()

    def test_live_slots_match_window(self):
        j = Job(2, 6, 2)
        assert [t for t in range(1, 9) if j.is_live_in_slot(t)] == [3, 4, 5, 6]


class TestContinuousView:
    def test_is_live_at(self):
        j = Job(1.0, 3.0, 2.0)
        assert j.is_live_at(1.0)
        assert j.is_live_at(2.5)
        assert not j.is_live_at(3.0)
        assert not j.is_live_at(0.5)

    def test_can_start_at(self):
        j = Job(1, 6, 2)
        assert j.can_start_at(1)
        assert j.can_start_at(4)
        assert not j.can_start_at(4.5)
        assert not j.can_start_at(0.5)

    def test_as_interval_job(self):
        j = Job(1, 6, 2, id=3)
        pinned = j.as_interval_job(2.5)
        assert pinned.is_interval
        assert pinned.release == 2.5
        assert pinned.deadline == 4.5
        assert pinned.id == 3

    def test_as_interval_job_rejects_bad_start(self):
        with pytest.raises(ValueError):
            Job(1, 6, 2).as_interval_job(5)

    def test_shifted(self):
        j = Job(1, 6, 2).shifted(10)
        assert j.window == (11, 16)


class TestInstanceConstruction:
    def test_from_tuples_assigns_ids(self):
        inst = Instance.from_tuples([(0, 2, 1), (1, 3, 2)])
        assert [j.id for j in inst.jobs] == [0, 1]

    def test_from_intervals(self):
        inst = Instance.from_intervals([(0.0, 1.5), (2.0, 3.0)])
        assert inst.all_interval
        assert inst.jobs[0].length == 1.5

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Instance((Job(0, 2, 1, id=1), Job(0, 3, 1, id=1)))

    def test_empty_instance(self):
        inst = Instance(tuple())
        assert inst.n == 0
        assert inst.total_length == 0
        assert inst.latest_deadline == 0.0


class TestInstanceAggregates:
    def test_total_length(self, tiny_instance):
        assert tiny_instance.total_length == 6

    def test_horizon(self, tiny_instance):
        assert tiny_instance.horizon == 6

    def test_horizon_rejects_non_integral(self):
        inst = Instance.from_intervals([(0.0, 1.5)])
        with pytest.raises(ValueError):
            inst.horizon

    def test_earliest_release_latest_deadline(self, tiny_instance):
        assert tiny_instance.earliest_release == 0
        assert tiny_instance.latest_deadline == 6

    def test_len_iter_getitem(self, tiny_instance):
        assert len(tiny_instance) == 3
        assert [j.id for j in tiny_instance] == [0, 1, 2]
        assert tiny_instance[1].length == 3


class TestInstancePredicates:
    def test_all_interval(self, interval_instance, tiny_instance):
        assert interval_instance.all_interval
        assert not tiny_instance.all_interval

    def test_all_unit(self):
        assert Instance.from_tuples([(0, 2, 1), (1, 4, 1)]).all_unit
        assert not Instance.from_tuples([(0, 2, 2)]).all_unit

    def test_is_integral(self, tiny_instance):
        assert tiny_instance.is_integral
        assert not Instance.from_intervals([(0.0, 1.5)]).is_integral

    def test_is_clique(self, clique_instance, interval_instance):
        assert clique_instance.is_clique()
        assert not interval_instance.is_clique()

    def test_is_proper(self):
        proper = Instance.from_intervals([(0, 2), (1, 3), (2, 4)])
        assert proper.is_proper()
        improper = Instance.from_intervals([(0, 5), (1, 2)])
        assert not improper.is_proper()

    def test_is_laminar(self):
        laminar = Instance.from_intervals([(0, 10), (1, 4), (5, 9), (2, 3)])
        assert laminar.is_laminar()
        crossing = Instance.from_intervals([(0, 3), (2, 5)])
        assert not crossing.is_laminar()


class TestInstanceQueries:
    def test_live_jobs_in_slot(self, tiny_instance):
        live = tiny_instance.live_jobs_in_slot(1)
        assert {j.id for j in live} == {0, 2}

    def test_active_jobs_at(self, interval_instance):
        assert {j.id for j in interval_instance.active_jobs_at(1.2)} == {0, 1, 3}

    def test_raw_demand_and_demand(self, interval_instance):
        assert interval_instance.raw_demand_at(1.2) == 3
        assert interval_instance.demand_at(1.2, 2) == 2
        assert interval_instance.demand_at(1.2, 3) == 1

    def test_job_by_id(self, tiny_instance):
        assert tiny_instance.job_by_id(1).length == 3
        with pytest.raises(KeyError):
            tiny_instance.job_by_id(99)

    def test_subset_without(self, tiny_instance):
        sub = tiny_instance.subset([0, 2])
        assert {j.id for j in sub} == {0, 2}
        rest = tiny_instance.without([0, 2])
        assert {j.id for j in rest} == {1}

    def test_renumbered(self, tiny_instance):
        sub = tiny_instance.subset([1, 2]).renumbered()
        assert [j.id for j in sub.jobs] == [0, 1]

    def test_merged_with_avoids_id_clash(self, tiny_instance):
        merged = tiny_instance.merged_with(tiny_instance)
        assert merged.n == 6
        assert len({j.id for j in merged.jobs}) == 6

    def test_event_points(self, tiny_instance):
        assert tiny_instance.event_points() == [0, 1, 4, 5, 6]

    def test_describe_mentions_shape(self, tiny_instance):
        text = tiny_instance.describe()
        assert "n=3" in text and "integral" in text
