#!/usr/bin/env python3
"""Visual tour: ASCII Gantt charts for every schedule kind.

Renders, for one small scenario each:

1. a flexible instance and its window structure,
2. the demand profile and lower bounds,
3. busy-time packings by three algorithms side by side,
4. an active-time schedule as a slot-occupancy grid.

Run:  python examples/visualize_schedules.py
"""

from repro import (
    Instance,
    chain_peeling_two_approx,
    compute_demand_profile,
    exact_active_time,
    first_fit,
    greedy_tracking,
)
from repro.viz import (
    render_active_schedule,
    render_busy_schedule,
    render_demand_profile,
    render_instance,
)


def main() -> None:
    rigid = Instance.from_intervals(
        [
            (0.0, 3.0),
            (0.5, 2.0),
            (1.0, 4.0),
            (3.5, 6.0),
            (4.0, 7.0),
            (4.5, 5.5),
            (2.5, 4.5),
        ]
    )
    g = 2

    print("=" * 68)
    print("1. the instance (rigid interval jobs)")
    print("=" * 68)
    print(render_instance(rigid))

    print()
    print("=" * 68)
    print(f"2. demand profile at g={g} (Observation 4's lower bound)")
    print("=" * 68)
    print(render_demand_profile(compute_demand_profile(rigid, g)))

    print()
    print("=" * 68)
    print("3. busy-time packings")
    print("=" * 68)
    for name, fn in [
        ("FIRSTFIT (4-approx)", first_fit),
        ("GREEDYTRACKING (3-approx)", greedy_tracking),
        ("chain peeling (2-approx)", chain_peeling_two_approx),
    ]:
        s = fn(rigid, g)
        print(f"\n--- {name}: busy time {s.total_busy_time:g} ---")
        print(render_busy_schedule(s))

    print()
    print("=" * 68)
    print("4. active time: exact schedule of a flexible instance (g=2)")
    print("=" * 68)
    flexible = Instance.from_tuples(
        [(0, 4, 2), (1, 5, 3), (0, 6, 1), (2, 7, 2), (5, 8, 2)]
    )
    print(render_instance(flexible))
    print()
    print(render_active_schedule(exact_active_time(flexible, 2)))


if __name__ == "__main__":
    main()
