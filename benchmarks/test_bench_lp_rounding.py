"""E3 — Theorem 2: the LP-rounding algorithm is 2-approximate.

Paper claim: rounded cost <= 2 x LP optimum (hence <= 2 OPT), with the
dependent/trio/filler charging certifying the bound.  We measure empirical
ratios on random active-time families and on the barely-open stress family,
and benchmark the full pipeline runtime.
"""

import pytest

from repro.activetime import exact_active_time, round_active_time
from repro.analysis import collect_ratios, summarize
from repro.instances import (
    random_active_time_instance,
    tight_window_instance,
)


def test_rounding_ratio_random_families(rng, emit):
    rows = []
    for (n, T, g) in [(8, 12, 2), (12, 16, 3), (16, 20, 4)]:
        vs_lp, vs_opt = [], []
        for _ in range(12):
            inst = random_active_time_instance(n, T, rng=rng)
            try:
                sol = round_active_time(inst, g, strict=True)
            except RuntimeError:
                continue
            sol.schedule.verify()
            vs_lp.append((sol.cost, sol.lp_objective))
            if n <= 12:
                opt = exact_active_time(inst, g).cost
                vs_opt.append((sol.cost, opt))
        lp_summary = summarize(collect_ratios(f"n={n},g={g}", vs_lp))
        assert lp_summary.worst <= 2.0 + 1e-9
        rows.append(
            [f"n={n}, T={T}, g={g}", lp_summary.mean, lp_summary.worst, 2.0]
        )
    emit(
        "E3 / Theorem 2 — LP rounding: cost / LP optimum",
        ["family", "mean ratio", "max ratio", "paper bound"],
        rows,
    )


def test_rounding_stress_family(rng, emit):
    rows = []
    for g in (2, 3, 4):
        inst = tight_window_instance(6 * g, g, rng=rng)
        sol = round_active_time(inst, g, strict=True)
        sol.schedule.verify()
        rows.append([f"g={g}", sol.cost, sol.lp_objective, sol.ratio_vs_lp])
        assert sol.guarantee_holds
        assert sol.charging_failures == []
    emit(
        "E3 — barely-open stress family (Section 3.5 style windows)",
        ["g", "rounded", "LP opt", "ratio"],
        rows,
    )


@pytest.mark.parametrize("n,T", [(10, 14), (20, 24)])
def test_rounding_runtime(benchmark, rng, n, T):
    inst = random_active_time_instance(n, T, rng=rng)
    try:
        result = benchmark(round_active_time, inst, 3)
    except RuntimeError:
        pytest.skip("random instance infeasible at g=3")
    assert result.schedule.is_valid()
