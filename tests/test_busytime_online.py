"""Tests for the online busy-time extension (Shalom et al. setting)."""

import pytest

from repro.busytime import (
    arrival_order,
    exact_busy_time_interval,
    nested_adversarial_instance,
    online_best_fit,
    online_first_fit,
)
from repro.core import Instance
from repro.instances import random_interval_instance


class TestArrivalOrder:
    def test_sorted_by_release(self, interval_instance):
        order = arrival_order(interval_instance)
        releases = [j.release for j in order]
        assert releases == sorted(releases)

    def test_ties_broken_by_input_order(self):
        inst = Instance.from_intervals([(0, 2), (0, 1), (0, 3)])
        order = arrival_order(inst)
        assert [j.id for j in order] == [0, 1, 2]


class TestPolicies:
    @pytest.mark.parametrize("policy", [online_first_fit, online_best_fit])
    def test_verifies(self, policy, rng):
        for _ in range(8):
            inst = random_interval_instance(10, 16.0, rng=rng)
            g = int(rng.integers(1, 4))
            s = policy(inst, g)
            s.verify()

    @pytest.mark.parametrize("policy", [online_first_fit, online_best_fit])
    def test_never_below_opt(self, policy, rng):
        for _ in range(6):
            inst = random_interval_instance(7, 12.0, rng=rng)
            g = int(rng.integers(1, 4))
            opt = exact_busy_time_interval(inst, g).total_busy_time
            assert policy(inst, g).total_busy_time >= opt - 1e-6

    def test_first_fit_matches_offline_release_order(self, rng):
        """Online FF = offline FIRSTFIT with release ordering by definition."""
        from repro.busytime import first_fit

        inst = random_interval_instance(12, 18.0, rng=rng)
        online = online_first_fit(inst, 2)
        offline = first_fit(inst, 2, order="release")
        assert online.total_busy_time == pytest.approx(
            offline.total_busy_time
        )

    def test_best_fit_prefers_filling(self):
        # one existing long job; a short nested job should join it rather
        # than open a new machine
        inst = Instance.from_intervals([(0, 4), (1, 2)])
        s = online_best_fit(inst, 2)
        assert s.num_machines == 1

    def test_empty(self):
        assert online_first_fit(Instance(tuple()), 2).total_busy_time == 0


class TestNestedFamily:
    def test_structure(self):
        inst = nested_adversarial_instance(3)
        assert inst.n == 9
        assert inst.is_clique()
        assert inst.is_laminar()

    def test_levels_override(self):
        inst = nested_adversarial_instance(2, levels=4)
        assert inst.n == 8

    def test_policies_feasible_on_family(self):
        for g in (2, 3):
            inst = nested_adversarial_instance(g)
            for policy in (online_first_fit, online_best_fit):
                s = policy(inst, g)
                s.verify()
                opt = exact_busy_time_interval(inst, g).total_busy_time
                assert s.total_busy_time >= opt - 1e-9
