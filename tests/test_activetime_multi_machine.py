"""Tests for multi-machine active time (repro.activetime.multi_machine)."""

import pytest

from repro.activetime import exact_active_time
from repro.activetime.multi_machine import (
    is_feasible_multiplicity,
    multi_machine_exact,
    multi_machine_lazy_greedy,
    multi_machine_lp_bound,
)
from repro.core import Instance
from repro.instances import random_active_time_instance


class TestFeasibility:
    def test_zero_everywhere_infeasible(self, tiny_instance):
        assert not is_feasible_multiplicity(
            tiny_instance, 2, [0] * tiny_instance.horizon
        )

    def test_all_on_feasible(self, tiny_instance):
        assert is_feasible_multiplicity(
            tiny_instance, 2, [2] * tiny_instance.horizon
        )

    def test_wrong_length_rejected(self, tiny_instance):
        with pytest.raises(ValueError, match="multiplicities"):
            is_feasible_multiplicity(tiny_instance, 2, [1])

    def test_capacity_scales_with_k(self):
        # 4 unit jobs in one slot, g = 2: needs k = 2 machines there
        inst = Instance.from_tuples([(0, 1, 1)] * 4)
        assert not is_feasible_multiplicity(inst, 2, [1])
        assert is_feasible_multiplicity(inst, 2, [2])


class TestExact:
    def test_m1_reduces_to_single_machine(self, rng):
        for _ in range(8):
            inst = random_active_time_instance(6, 8, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                single = exact_active_time(inst, g)
            except RuntimeError:
                with pytest.raises(RuntimeError):
                    multi_machine_exact(inst, g, 1)
                continue
            multi = multi_machine_exact(inst, g, 1)
            assert multi.cost == single.cost

    def test_more_machines_never_hurt(self, rng):
        inst = random_active_time_instance(8, 8, rng=rng)
        costs = []
        for m in (1, 2, 3):
            try:
                costs.append(multi_machine_exact(inst, 2, m).cost)
            except RuntimeError:
                costs.append(None)
        known = [c for c in costs if c is not None]
        assert known == sorted(known, reverse=True)

    def test_machines_unlock_infeasible_instances(self):
        # 4 unit jobs in one slot, g = 2: infeasible on 1 machine, cost 2 on 2
        inst = Instance.from_tuples([(0, 1, 1)] * 4)
        with pytest.raises(RuntimeError):
            multi_machine_exact(inst, 2, 1)
        s = multi_machine_exact(inst, 2, 2)
        assert s.cost == 2
        assert s.multiplicity == (2,)

    def test_verify_runs(self, tiny_instance):
        s = multi_machine_exact(tiny_instance, 2, 2)
        s.verify()

    def test_empty(self):
        s = multi_machine_exact(Instance(tuple()), 1, 1)
        assert s.cost == 0


class TestLpBound:
    def test_lower_bounds_exact(self, rng):
        for _ in range(6):
            inst = random_active_time_instance(6, 8, rng=rng)
            try:
                exact = multi_machine_exact(inst, 2, 2)
            except RuntimeError:
                continue
            assert multi_machine_lp_bound(inst, 2, 2) <= exact.cost + 1e-6

    def test_empty(self):
        assert multi_machine_lp_bound(Instance(tuple()), 1, 1) == 0.0


class TestLazyGreedy:
    def test_feasible_and_above_exact(self, rng):
        for _ in range(6):
            inst = random_active_time_instance(6, 8, rng=rng)
            m = int(rng.integers(1, 4))
            try:
                greedy = multi_machine_lazy_greedy(inst, 2, m)
            except RuntimeError:
                continue
            greedy.verify()
            exact = multi_machine_exact(inst, 2, m)
            assert greedy.cost >= exact.cost

    def test_no_slot_lowerable(self, rng):
        """Greedy output is multiplicity-minimal slot by slot."""
        inst = random_active_time_instance(6, 8, rng=rng)
        try:
            s = multi_machine_lazy_greedy(inst, 2, 2)
        except RuntimeError:
            pytest.skip("infeasible draw")
        ks = list(s.multiplicity)
        for t in range(len(ks)):
            if ks[t] == 0:
                continue
            trial = list(ks)
            trial[t] -= 1
            assert not is_feasible_multiplicity(inst, 2, trial)

    def test_infeasible_raises(self):
        inst = Instance.from_tuples([(0, 1, 1)] * 4)
        with pytest.raises(RuntimeError):
            multi_machine_lazy_greedy(inst, 2, 1)
