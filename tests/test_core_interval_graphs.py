"""Tests for the interval-graph substrate (repro.core.interval_graphs)."""

import itertools

import pytest

from repro.core import (
    Instance,
    Job,
    chromatic_number,
    greedy_color,
    is_bipartite_overlap,
    max_clique,
    max_independent_set,
    overlap_edges,
)
from repro.instances import random_interval_instance


class TestOverlapEdges:
    def test_basic(self):
        jobs = [Job(0, 2, 2, id=0), Job(1, 3, 2, id=1), Job(5, 6, 1, id=2)]
        assert overlap_edges(jobs) == [(0, 1)]

    def test_touching_not_overlapping(self):
        jobs = [Job(0, 1, 1, id=0), Job(1, 2, 1, id=1)]
        assert overlap_edges(jobs) == []

    def test_complete_on_clique(self, clique_instance):
        edges = overlap_edges(list(clique_instance.jobs))
        n = clique_instance.n
        assert len(edges) == n * (n - 1) // 2


class TestMaxClique:
    def test_equals_peak_demand(self, rng):
        for _ in range(15):
            inst = random_interval_instance(10, 16.0, rng=rng)
            clique = max_clique(list(inst.jobs))
            # verify pairwise overlap
            for a, b in itertools.combinations(clique, 2):
                assert a.release < b.deadline and b.release < a.deadline
            # verify it matches the profile's peak
            from repro.busytime import compute_demand_profile

            assert len(clique) == compute_demand_profile(inst, 1).max_raw

    def test_empty(self):
        assert max_clique([]) == []

    def test_disjoint_jobs(self):
        jobs = [Job(2 * i, 2 * i + 1, 1, id=i) for i in range(4)]
        assert len(max_clique(jobs)) == 1


class TestGreedyColoring:
    def test_uses_clique_many_colors(self, rng):
        for _ in range(15):
            inst = random_interval_instance(12, 18.0, rng=rng)
            jobs = list(inst.jobs)
            assert chromatic_number(jobs) == len(max_clique(jobs))

    def test_proper_coloring(self, rng):
        inst = random_interval_instance(12, 18.0, rng=rng)
        jobs = list(inst.jobs)
        coloring = greedy_color(jobs)
        for u, v in overlap_edges(jobs):
            assert coloring[u] != coloring[v]

    def test_color_classes_are_tracks(self, rng):
        from repro.busytime import is_track

        inst = random_interval_instance(12, 18.0, rng=rng)
        jobs = list(inst.jobs)
        coloring = greedy_color(jobs)
        for c in set(coloring.values()):
            assert is_track([j for j in jobs if coloring[j.id] == c])

    def test_empty(self):
        assert greedy_color([]) == {}
        assert chromatic_number([]) == 0


class TestMaxIndependentSet:
    def test_pairwise_disjoint(self, rng):
        inst = random_interval_instance(12, 18.0, rng=rng)
        mis = max_independent_set(list(inst.jobs))
        from repro.busytime import is_track

        assert is_track(mis)

    def test_optimal_vs_bruteforce(self, rng):
        from repro.busytime import is_track

        for _ in range(8):
            inst = random_interval_instance(7, 10.0, rng=rng)
            jobs = list(inst.jobs)
            best = 0
            for r in range(1, len(jobs) + 1):
                for combo in itertools.combinations(jobs, r):
                    if is_track(combo):
                        best = max(best, r)
            assert len(max_independent_set(jobs)) == best

    def test_empty(self):
        assert max_independent_set([]) == []


class TestBipartiteOverlap:
    def test_two_overlapping(self):
        jobs = [Job(0, 2, 2, id=0), Job(1, 3, 2, id=1)]
        assert is_bipartite_overlap(jobs)

    def test_triangle(self):
        jobs = [Job(0, 2, 2, id=0), Job(0, 2, 2, id=1), Job(0, 2, 2, id=2)]
        assert not is_bipartite_overlap(jobs)

    def test_matches_clique_condition(self, rng):
        """Bipartite overlap iff max clique <= 2 (chordal + triangle-free)."""
        for _ in range(15):
            inst = random_interval_instance(8, 14.0, rng=rng)
            jobs = list(inst.jobs)
            assert is_bipartite_overlap(jobs) == (len(max_clique(jobs)) <= 2)
