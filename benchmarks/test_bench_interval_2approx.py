"""E7 — Theorem 3 / Figure 8: 2-approximations for interval jobs.

Paper claims: the Kumar–Rudra and Alicherry–Bhatia techniques give
2-approximations charging the demand profile, and Figure 8 exhibits a run
paying 2 + eps against OPT = 1 + eps (ratio -> 2 as eps -> 0).  We verify
the profile certificate on random instances, evaluate the gadget, and show
the paper's adversarial bundling is feasible at the claimed cost.
"""

import pytest

from repro.busytime import (
    BusyTimeSchedule,
    chain_peeling_two_approx,
    demand_profile_lower_bound,
    exact_busy_time_interval,
    kumar_rudra,
)
from repro.instances import figure8, random_interval_instance


def test_fig8_gadget(emit):
    rows = []
    for eps in (0.4, 0.2, 0.1):
        epsp = eps / 2
        gad = figure8(eps=eps, eps_prime=epsp)
        opt = exact_busy_time_interval(gad.instance, gad.g).total_busy_time
        assert opt == pytest.approx(1 + eps, abs=1e-9)

        # the paper's adversarial bundling
        groups = [
            [gad.instance.job_by_id(j) for j in b]
            for b in gad.witness["adversarial_bundles"]
        ]
        adv = BusyTimeSchedule.from_bundle_jobs(gad.instance, gad.g, groups)
        adv.verify()

        cp = chain_peeling_two_approx(gad.instance, gad.g)
        kr = kumar_rudra(gad.instance, gad.g)
        rows.append(
            [eps, opt, adv.total_busy_time, adv.total_busy_time / opt,
             cp.total_busy_time, kr.total_busy_time]
        )
        assert adv.total_busy_time / opt <= 2.0 + 1e-9
        assert cp.total_busy_time <= 2 * opt + 1e-9
        assert kr.total_busy_time <= 2 * opt + 1e-9
    emit(
        "E7 / Figure 8 — interval 2-approx tightness (paper: ratio -> 2)",
        ["eps", "OPT (1+eps)", "adversarial bundling", "adv ratio",
         "chain peeling", "kumar_rudra"],
        rows,
    )
    # the adversarial ratio grows toward 2 as eps shrinks
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios)


def test_profile_certificate_random(rng, emit):
    rows = []
    for (n, g) in [(10, 2), (20, 3), (30, 4)]:
        worst_cp = worst_kr = 0.0
        for _ in range(10):
            inst = random_interval_instance(n, 2.0 * n, rng=rng)
            profile = demand_profile_lower_bound(inst, g)
            cp = chain_peeling_two_approx(inst, g)
            kr = kumar_rudra(inst, g)
            cp.verify()
            kr.verify()
            worst_cp = max(worst_cp, cp.total_busy_time / profile)
            worst_kr = max(worst_kr, kr.total_busy_time / profile)
        rows.append([f"n={n}, g={g}", worst_cp, worst_kr, 2.0])
        assert worst_cp <= 2.0 + 1e-9
        assert worst_kr <= 2.0 + 1e-9
    emit(
        "E7 — cost / demand-profile lower bound on random interval jobs",
        ["family", "chain peeling (max)", "kumar_rudra (max)", "paper bound"],
        rows,
    )


@pytest.mark.parametrize("n", [20, 50])
def test_chain_peeling_runtime(benchmark, rng, n):
    inst = random_interval_instance(n, 2.0 * n, rng=rng)
    s = benchmark(chain_peeling_two_approx, inst, 3)
    assert s.is_valid()


@pytest.mark.parametrize("n", [20, 50])
def test_kumar_rudra_runtime(benchmark, rng, n):
    inst = random_interval_instance(n, 2.0 * n, rng=rng)
    s = benchmark(kumar_rudra, inst, 3)
    assert s.is_valid()
