#!/usr/bin/env python3
"""Quickstart: the two scheduling models in five minutes.

Walks through the paper's two problems on small hand-made instances:

1. **Active time** (one machine, capacity g, slotted time): minimize the
   number of slots the machine is on.  We run the exact MILP, the Theorem-1
   minimal-feasible 3-approximation and the Theorem-2 LP-rounding
   2-approximation and compare.
2. **Busy time** (unlimited machines, capacity g each, continuous time):
   minimize cumulative machine-on time.  We run FIRSTFIT (the 4-approx
   baseline), GREEDYTRACKING (the paper's 3-approx) and the 2-approximate
   chain peeling, against the demand-profile lower bound.

Run:  python examples/quickstart.py
"""

from repro import (
    Instance,
    best_lower_bound,
    chain_peeling_two_approx,
    exact_active_time,
    exact_busy_time_interval,
    first_fit,
    greedy_tracking,
    minimal_feasible_schedule,
    round_active_time,
)
from repro.analysis import format_table


def active_time_demo() -> None:
    # Six jobs on one machine that can run at most g = 2 at a time.
    # (release, deadline, length) with slots [t-1, t); job 0 may run in
    # slots 1..4, needs 2 of them, etc.
    instance = Instance.from_tuples(
        [
            (0, 4, 2),
            (1, 5, 3),
            (0, 6, 1),
            (2, 6, 2),
            (4, 8, 3),
            (5, 8, 1),
        ]
    )
    g = 2

    exact = exact_active_time(instance, g)
    minimal = minimal_feasible_schedule(instance, g)
    rounded = round_active_time(instance, g)

    print(
        format_table(
            f"Active time, {instance.describe()}, g={g}",
            ["method", "active slots", "guarantee", "ratio vs OPT"],
            [
                ["exact (MILP)", exact.cost, "1", 1.0],
                [
                    "minimal feasible (Thm 1)",
                    minimal.cost,
                    "3",
                    minimal.cost / exact.cost,
                ],
                [
                    "LP rounding (Thm 2)",
                    rounded.cost,
                    "2",
                    rounded.cost / exact.cost,
                ],
            ],
        )
    )
    print(f"LP lower bound: {rounded.lp_objective:.3f}")
    print(f"rounded schedule slots: {list(rounded.schedule.active_slots)}")
    print()


def busy_time_demo() -> None:
    # Nine rigid jobs (interval jobs) to pack onto capacity-2 machines.
    instance = Instance.from_intervals(
        [
            (0.0, 3.0),
            (0.5, 2.5),
            (1.0, 4.0),
            (2.0, 5.0),
            (4.5, 6.0),
            (5.0, 7.5),
            (5.5, 7.0),
            (6.0, 8.0),
            (0.0, 1.5),
        ]
    )
    g = 2

    opt = exact_busy_time_interval(instance, g)
    rows = [["exact (MILP)", opt.total_busy_time, opt.num_machines, "1"]]
    for name, fn, bound in [
        ("FIRSTFIT [5]", first_fit, "4"),
        ("GREEDYTRACKING (Thm 5)", greedy_tracking, "3"),
        ("chain peeling (Thm 3)", chain_peeling_two_approx, "2"),
    ]:
        s = fn(instance, g)
        s.verify()
        rows.append([name, s.total_busy_time, s.num_machines, bound])

    print(
        format_table(
            f"Busy time, {instance.describe()}, g={g}",
            ["method", "busy time", "machines", "guarantee"],
            rows,
        )
    )
    print(f"demand-profile lower bound: {best_lower_bound(instance, g):.3f}")
    print()


if __name__ == "__main__":
    active_time_demo()
    busy_time_demo()
