#!/usr/bin/env python3
"""DEPRECATED shim — use ``repro lint`` (rule REP001) instead.

The one-off async-blocking checker this file used to hold grew into the
project's static-analysis framework (:mod:`repro.lint`).  Rule REP001
is a strict superset of the old check: the same blocking-call and
banned-import detection inside coroutines, now applied tree-wide, with
the same ``# blocking-ok`` waiver spelling honoured (it now means
``lint: waive[REP001]``).

This entry point remains so older scripts and CI configs keep working:
it runs REP001 over the paths given (default: ``src/repro/serve``, the
old tool's scope) and exits non-zero on findings, exactly as before.
Prefer::

    repro lint src tools benchmarks          # the full rule set
    repro lint --rules REP001 src            # just this rule
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.lint.cli import main as _lint_main  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    print(
        "tools/check_async_blocking.py is deprecated; it now delegates to "
        "`repro lint --rules REP001`",
        file=sys.stderr,
    )
    paths = args or [str(_REPO_ROOT / "src" / "repro" / "serve")]
    return _lint_main(
        ["--rules", "REP001", "--root", str(_REPO_ROOT), *paths]
    )


if __name__ == "__main__":
    raise SystemExit(main())
