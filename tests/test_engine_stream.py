"""Tests for `BatchRunner.run_stream` and the persistent worker pools.

Covers the streaming contract (task-order yields, incremental arrival,
parity with ``run``), pool persistence across calls, and the
broken-process-pool recovery path.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro.core import Instance
from repro.engine import BatchRunner, ResultCache, make_task
from repro.engine.registry import REGISTRY, SolveOutcome, SolverSpec

_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="test registers a solver that only fork-children inherit",
)


def _tasks(instances, problem="active", algorithm="minimal", g=2, **kw):
    return [
        make_task(
            index=i, problem=problem, algorithm=algorithm, g=g,
            instance=inst, **kw
        )
        for i, inst in enumerate(instances)
    ]


@pytest.fixture
def small_instances():
    return [
        Instance.from_tuples([(0, 4, 2), (1, 5, 3)]),
        Instance.from_tuples([(0, 3, 1), (2, 6, 2), (1, 4, 2)]),
        Instance.from_tuples([(0, 2, 1)]),
        Instance.from_tuples([(0, 6, 2), (2, 7, 3)]),
    ]


def _register_temp_solver(name, fn, description="test-only"):
    if ("active", name) not in REGISTRY:
        REGISTRY.register(
            SolverSpec(
                problem="active",
                name=name,
                solve=fn,
                exact=False,
                guarantee="-",
                complexity="-",
                description=description,
            )
        )
    yield name
    REGISTRY._specs.pop(("active", name), None)


def _sleepy_solver(instance, g, **params):
    time.sleep(0.8)
    return SolveOutcome(objective=float(g))


def _dying_solver(instance, g, **params):
    os._exit(13)


@pytest.fixture
def sleepy_solver():
    yield from _register_temp_solver("sleepy-stream-test", _sleepy_solver)


@pytest.fixture
def dying_solver():
    yield from _register_temp_solver("dying-stream-test", _dying_solver)


def _strip(result):
    record = {**result.to_record(), "elapsed": 0.0}
    # trace spans are timings; stream/run parity holds "modulo timings"
    metrics = dict(record["metrics"])
    metrics.pop("trace", None)
    record["metrics"] = metrics
    return record


class TestStreamParity:
    """run_stream must return byte-identical records to run (mod timings)."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_stream_matches_run_with_dups_and_failures(
        self, small_instances, jobs
    ):
        infeasible = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        tasks = _tasks(
            small_instances + [small_instances[0]]  # dup digest of task 0
        ) + [
            # two infeasible copies at g=1: both fail, and the failed
            # duplicate must be retried rather than reused
            make_task(index=i, problem="active", algorithm="minimal", g=1,
                      instance=infeasible)
            for i in (5, 6)
        ]
        with BatchRunner(jobs=jobs) as runner:
            ran = runner.run(tasks)
        with BatchRunner(jobs=jobs) as runner:
            streamed = list(runner.run_stream(tasks))
        assert [_strip(r) for r in streamed] == [_strip(r) for r in ran]
        assert [r.index for r in streamed] == list(range(len(tasks)))
        assert streamed[4].cached  # duplicate reused
        assert not streamed[5].ok and not streamed[6].ok
        assert not streamed[6].cached  # failed dup retried, not reused

    def test_stream_counters_match_run(self, small_instances, tmp_path):
        tasks = _tasks(small_instances)
        cache = ResultCache(directory=tmp_path)
        with BatchRunner(jobs=1, cache=cache) as warm:
            warm.run(tasks)
        with BatchRunner(jobs=1, cache=ResultCache(directory=tmp_path)) as r:
            streamed = list(r.run_stream(tasks))
            assert r.last_cache_hits == len(tasks)
        assert all(res.cached for res in streamed)

    def test_cache_hits_stream_before_execution(self, small_instances):
        # A head-of-list cache hit must be yielded by the very first
        # next(), before any pending solve completes.
        tasks = _tasks(small_instances)
        cache = ResultCache()
        with BatchRunner(jobs=1, cache=cache) as warm:
            warm.run(tasks[:1])
        with BatchRunner(jobs=1, cache=cache) as runner:
            stream = runner.run_stream(tasks)
            first = next(stream)
            assert first.cached and first.index == 0
            rest = list(stream)
        assert [r.index for r in rest] == [1, 2, 3]

    def test_empty_task_list(self):
        with BatchRunner(jobs=1) as runner:
            assert list(runner.run_stream([])) == []


@_FORK_ONLY
class TestIncrementalArrival:
    def test_first_result_arrives_before_slow_task_finishes(
        self, sleepy_solver, small_instances
    ):
        # Slow task last: its 0.8s sleep must not delay the fast
        # results' yields.
        tasks = _tasks(small_instances[:2]) + [
            make_task(index=2, problem="active", algorithm=sleepy_solver,
                      g=2, instance=small_instances[2])
        ]
        with BatchRunner(jobs=3) as runner:
            start = time.perf_counter()
            arrivals = [
                (r.index, time.perf_counter() - start)
                for r in runner.run_stream(tasks)
            ]
        assert [i for i, _ in arrivals] == [0, 1, 2]
        assert arrivals[0][1] < 0.6, arrivals
        assert arrivals[-1][1] >= 0.7, arrivals

    def test_slow_head_buffers_but_still_completes_in_order(
        self, sleepy_solver, small_instances
    ):
        # Slow task first: order preservation holds everything until it
        # lands, then the buffered results flush immediately.
        tasks = [
            make_task(index=0, problem="active", algorithm=sleepy_solver,
                      g=2, instance=small_instances[0])
        ] + [
            make_task(index=i, problem="active", algorithm="minimal", g=2,
                      instance=inst)
            for i, inst in enumerate(small_instances[1:3], start=1)
        ]
        with BatchRunner(jobs=3) as runner:
            start = time.perf_counter()
            arrivals = [
                (r.index, time.perf_counter() - start)
                for r in runner.run_stream(tasks)
            ]
        assert [i for i, _ in arrivals] == [0, 1, 2]
        assert arrivals[0][1] >= 0.7
        # the buffered fast results flush right behind the slow head
        assert arrivals[-1][1] - arrivals[0][1] < 0.5

    def test_abandoned_stream_leaves_runner_usable(
        self, sleepy_solver, small_instances
    ):
        tasks = _tasks(small_instances[:2]) + [
            make_task(index=2, problem="active", algorithm=sleepy_solver,
                      g=2, instance=small_instances[2])
        ]
        with BatchRunner(jobs=2) as runner:
            stream = runner.run_stream(tasks)
            assert next(stream).index == 0
            stream.close()  # client went away mid-batch
            results = runner.run(_tasks(small_instances[3:]))
        assert all(r.ok for r in results)


class TestStrategyAndCancellation:
    def test_deadlined_duplicate_retry_keeps_the_watchdog(self):
        # timeout is not part of the content digest, so a batch can pair
        # an undeadlined first occurrence with a deadlined duplicate.
        # The duplicate's failure retry joins the queue mid-stream; the
        # strategy choice must see its deadline up front and run the
        # whole stream under the watchdog, not the plain pool — else the
        # retry's hard timeout silently degrades to a soft one.
        bad = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        first = make_task(index=0, problem="active", algorithm="minimal",
                          g=1, instance=bad)
        dup = make_task(index=1, problem="active", algorithm="minimal",
                        g=1, instance=bad, timeout=30.0)
        assert first.digest == dup.digest and first.timeout is None
        with BatchRunner(jobs=2) as runner:
            results = runner.run([first, dup])
            assert runner._wd_total >= 1  # the watchdog pool was used
            assert runner._executor is None  # the plain pool was not
        assert [r.ok for r in results] == [False, False]

    def test_cancelled_futures_become_positioned_failures(
        self, small_instances, monkeypatch
    ):
        # CancelledError is a BaseException: when another stream's pool
        # rebuild (or close()) cancels this stream's queued futures on
        # the shared executor, each must surface as a positioned failure
        # record, not escape and kill the stream mid-batch.
        from concurrent.futures import Future

        def cancelled_submit(task):
            future = Future()
            future.cancel()
            # what a real executor does when it drains a cancelled work
            # item: notify waiters, so wait() reports the future done
            future.set_running_or_notify_cancel()
            return future

        with BatchRunner(jobs=2) as runner:
            monkeypatch.setattr(runner, "_submit", cancelled_submit)
            results = runner.run(_tasks(small_instances[:3]))
        assert [r.ok for r in results] == [False, False, False]
        assert all("pool broke" in r.error for r in results)
        assert [r.index for r in results] == [0, 1, 2]


@_FORK_ONLY
class TestWatchdogLeasing:
    def test_starved_stream_is_fed_a_worker_mid_batch(
        self, sleepy_solver, small_instances
    ):
        # Stream A (a long deadlined batch) initially leases every
        # watchdog worker; stream B (one deadlined task) must be fed a
        # worker after roughly one task completion, not after A's whole
        # queue drains — i.e. B finishes while A is still running.
        runner = BatchRunner(jobs=2)
        a_tasks = [
            make_task(index=i, problem="active", algorithm=sleepy_solver,
                      g=2, instance=small_instances[i % 4], timeout=30.0,
                      meta={"copy": i})
            for i in range(6)
        ]
        b_task = make_task(index=0, problem="active", algorithm=sleepy_solver,
                           g=3, instance=small_instances[0], timeout=30.0)
        finished = {}

        def consume(label, tasks):
            results = runner.run(tasks)
            finished[label] = time.monotonic()
            assert all(r.ok for r in results)

        try:
            thread_a = threading.Thread(target=consume, args=("a", a_tasks))
            thread_a.start()
            time.sleep(0.2)  # A now holds both workers
            thread_b = threading.Thread(target=consume, args=("b", [b_task]))
            thread_b.start()
            thread_b.join(timeout=30)
            thread_a.join(timeout=30)
        finally:
            runner.close()
        assert finished["b"] < finished["a"], finished

    def test_close_during_inflight_stream_leaves_no_workers(
        self, sleepy_solver, small_instances
    ):
        # close() while a stream still holds leased workers: the
        # stream's eventual release must shut them down, not re-pool
        # them on the closed runner.
        runner = BatchRunner(jobs=2)
        tasks = [
            make_task(index=i, problem="active", algorithm=sleepy_solver,
                      g=2, instance=small_instances[i % 4], timeout=30.0,
                      meta={"copy": i})
            for i in range(3)
        ]
        done = threading.Event()

        def consume():
            runner.run(tasks)
            done.set()

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.2)  # stream is mid-solve, workers leased
        runner.close()
        assert done.wait(timeout=30)
        thread.join(timeout=5)
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and runner._wd_total:
            time.sleep(0.05)
        assert runner._wd_total == 0 and runner._wd_idle == []


class TestPersistentPools:
    def test_executor_survives_across_calls(self, small_instances):
        with BatchRunner(jobs=2) as runner:
            runner.run(_tasks(small_instances))
            first_pool = runner._executor
            assert first_pool is not None
            first_pids = set(first_pool._processes)
            runner.run(_tasks(small_instances, g=3))
            assert runner._executor is first_pool
            assert set(runner._executor._processes) == first_pids
        assert runner._executor is None  # released by the context manager

    def test_watchdog_workers_survive_across_calls(self, small_instances):
        with BatchRunner(jobs=2) as runner:
            runner.run(_tasks(small_instances, timeout=30.0))
            pids = sorted(w.proc.pid for w in runner._wd_idle)
            assert pids and runner._wd_total == len(pids) <= 2
            runner.run(_tasks(small_instances, g=3, timeout=30.0))
            assert sorted(w.proc.pid for w in runner._wd_idle) == pids
        assert runner._wd_total == 0 and runner._wd_idle == []

    def test_close_then_reuse_rebuilds_lazily(self, small_instances):
        runner = BatchRunner(jobs=2)
        try:
            assert all(r.ok for r in runner.run(_tasks(small_instances)))
            runner.close()
            assert runner._executor is None
            assert all(r.ok for r in runner.run(_tasks(small_instances)))
        finally:
            runner.close()


@_FORK_ONLY
class TestBrokenPool:
    def test_broken_pool_fails_in_place_and_batch_survives(
        self, dying_solver, small_instances
    ):
        # Task 0 OOM-kills its worker, which breaks the whole
        # ProcessPoolExecutor.  Regression: future.result() used to
        # propagate BrokenProcessPool and abort the batch; now every
        # broken future becomes a positioned failure and the remaining
        # tasks run on a rebuilt pool.
        instances = small_instances * 2
        tasks = [
            make_task(
                index=i,
                problem="active",
                algorithm=dying_solver if i == 0 else "minimal",
                g=2,
                instance=inst,
            )
            for i, inst in enumerate(instances)
        ]
        with BatchRunner(jobs=2) as runner:
            results = runner.run(tasks)
            assert len(results) == len(tasks)
            assert [r.index for r in results] == list(range(len(tasks)))
            assert not results[0].ok
            assert "pool broke" in results[0].error
            assert results[0].digest == tasks[0].digest
            # the pool break can take at most the one in-flight
            # neighbour down with it (which one is a scheduling race);
            # everything still queued runs on the fresh pool.
            bad = [r for r in results if not r.ok]
            assert 1 <= len(bad) <= 2, [r.error for r in bad]
            assert all("pool broke" in r.error for r in bad)
            # the runner stays usable: next call gets a healthy pool
            again = runner.run(
                _tasks(small_instances, g=3)
            )
            assert all(r.ok for r in again)


class TestPerStreamStats:
    """Satellite: counters are per-stream, not racy runner attributes."""

    def test_stream_exposes_stats_object(self, small_instances):
        tasks = _tasks(small_instances)
        with BatchRunner(jobs=1) as runner:
            stream = runner.run_stream(tasks)
            results = list(stream)
        assert all(r.ok for r in results)
        stats = stream.stats.as_dict()
        assert stats["total"] == len(tasks)
        assert stats["cache_hits"] == 0
        assert stats["watchdog_kills"] == 0

    def test_concurrent_streams_keep_counts_separate(self, small_instances):
        # Two streams share one runner and one cache: stream A re-runs
        # previously cached tasks (every result a hit), stream B solves
        # fresh ones (zero hits).  With the old runner-level
        # ``last_cache_hits`` attribute the two consumers raced and one
        # stream read the other's count; per-stream stats must not.
        cache = ResultCache()
        hot = _tasks(small_instances)
        cold = _tasks(small_instances, g=3)
        with BatchRunner(jobs=1, cache=cache) as runner:
            runner.run(hot)  # prime the cache for stream A only

            streams = {}
            errors = []
            barrier = threading.Barrier(2)

            def consume(label, tasks):
                try:
                    barrier.wait(timeout=10)
                    stream = runner.run_stream(tasks)
                    list(stream)
                    streams[label] = stream
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=consume, args=("hot", hot)),
                threading.Thread(target=consume, args=("cold", cold)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert streams["hot"].stats.cache_hits == len(hot)
            assert streams["cold"].stats.cache_hits == 0
            # the legacy mirror still answers, with whichever stream
            # finished last -- a sanity check, not a contract
            assert runner.last_cache_hits in (0, len(hot))

    def test_duplicate_reuse_counts_as_stream_hit(self, small_instances):
        tasks = _tasks(small_instances + [small_instances[0]])
        with BatchRunner(jobs=1) as runner:
            stream = runner.run_stream(tasks)
            results = list(stream)
        assert results[4].cached
        assert stream.stats.cache_hits == 1


class TestTraceSpans:
    """Traces ride home inside ``TaskResult.metrics["trace"]``."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_results_carry_spans_and_labels(self, small_instances, jobs):
        from repro.obs import trace_labels, trace_spans

        tasks = _tasks(small_instances)
        with BatchRunner(jobs=jobs) as runner:
            results = list(runner.run_stream(tasks))
        for result in results:
            spans = trace_spans(result.metrics)
            for name in ("queued", "solving", "total"):
                assert name in spans, (result.index, spans)
                assert spans[name] >= 0.0
            assert spans["total"] >= spans["solving"]
            labels = trace_labels(result.metrics)
            assert labels["algorithm"] == "minimal"
            assert labels["status"] == "ok"
            assert labels["watchdog_kill"] is False

    def test_cache_hit_trace_is_fresh_not_stale(self, small_instances):
        from repro.obs import trace_labels, trace_spans

        tasks = _tasks(small_instances)
        cache = ResultCache()
        with BatchRunner(jobs=1, cache=cache) as runner:
            runner.run(tasks)
            hits = list(runner.run_stream(tasks))
        for result in hits:
            assert result.cached
            spans = trace_spans(result.metrics)
            # a planning-time hit never queued or solved; its trace is
            # the lookup alone, not the original solve's spans
            assert set(spans) == {"cache_lookup"}
            assert trace_labels(result.metrics)["cached"] is True
