"""The default backend: scipy's HiGHS wrappers (``linprog``/``milp``).

This reproduces the seed behavior exactly — pure LPs go through
``scipy.optimize.linprog(method="highs")``, anything with integrality
through ``scipy.optimize.milp`` — but behind the uniform
:class:`~repro.solvers.base.SolverBackend` surface, with scipy's status
codes mapped onto the shared vocabulary the way scipy's own
``_linprog_highs`` maps HiGHS model statuses.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from .base import SolverResult
from .ir import LinearProgram

__all__ = ["ScipyHighsBackend"]

#: scipy status codes (shared by linprog and milp) -> uniform statuses.
_STATUS = {
    0: "optimal",
    1: "timeout",  # iteration / time limit
    2: "infeasible",
    3: "unbounded",
    4: "error",
}


class ScipyHighsBackend:
    """HiGHS via scipy — sparse-aware, handles both LP and MILP."""

    name = "scipy-highs"

    def capabilities(self) -> frozenset[str]:
        return frozenset({"lp", "milp", "sparse"})

    def available(self) -> bool:
        return True  # scipy is a hard dependency of the package

    # ------------------------------------------------------------------
    def solve(
        self,
        lp: LinearProgram,
        *,
        time_limit: float | None = None,
        options: Mapping[str, Any] | None = None,
    ) -> SolverResult:
        start = time.perf_counter()
        if lp.num_vars == 0:
            return SolverResult(
                status="optimal",
                backend=self.name,
                objective=0.0,
                x=np.zeros(0),
                elapsed=time.perf_counter() - start,
            )
        if lp.is_milp:
            res = self._solve_milp(lp, time_limit, dict(options or {}))
        else:
            res = self._solve_lp(lp, time_limit, dict(options or {}))
        status = _STATUS.get(int(res.status), "error")
        if status == "optimal" and res.x is None:  # defensive: never trust both
            status = "error"
        return SolverResult(
            status=status,
            backend=self.name,
            objective=float(res.fun) if status == "optimal" else None,
            x=np.asarray(res.x) if status == "optimal" else None,
            message=str(getattr(res, "message", "") or ""),
            elapsed=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _solve_lp(self, lp: LinearProgram, time_limit, options):
        lb, ub = lp.bounds_arrays()
        if time_limit is not None:
            options.setdefault("time_limit", float(time_limit))
        return linprog(
            c=lp.c,
            A_ub=lp.a_ub,
            b_ub=lp.b_ub,
            A_eq=lp.a_eq,
            b_eq=lp.b_eq,
            bounds=list(zip(lb, ub)),
            method="highs",
            options=options or None,
        )

    def _solve_milp(self, lp: LinearProgram, time_limit, options):
        constraints = []
        if lp.a_ub is not None:
            constraints.append(
                LinearConstraint(lp.a_ub, -np.inf, lp.b_ub)
            )
        if lp.a_eq is not None:
            constraints.append(
                LinearConstraint(lp.a_eq, lp.b_eq, lp.b_eq)
            )
        lb, ub = lp.bounds_arrays()
        if time_limit is not None:
            options.setdefault("time_limit", float(time_limit))
        return milp(
            c=lp.c,
            constraints=constraints,
            integrality=lp.integrality_array(),
            bounds=Bounds(lb, ub),
            options=options or None,
        )
