"""Programmatic experiment registry (the DESIGN.md per-experiment index).

Each entry regenerates one paper artefact and returns its table; the CLI's
``experiments`` command and :mod:`examples/reproduce_paper_figures` both
drive this registry.  The heavyweight runtime measurements stay in
``benchmarks/`` (pytest-benchmark); these functions only compute the
claimed-vs-measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .report import format_table

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "run_all"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artefact."""

    key: str
    title: str
    runner: Callable[[], str]

    def run(self) -> str:
        """Execute and return the formatted table."""
        return self.runner()


def _e2_minimal_feasible() -> str:
    from ..activetime import exact_active_time
    from ..flow import is_feasible_slot_set
    from ..instances import figure3

    rows = []
    for g in (3, 4, 6, 8):
        gad = figure3(g)
        opt = exact_active_time(gad.instance, g).cost
        slots = gad.witness["adversarial_slots"]
        assert is_feasible_slot_set(gad.instance, g, slots)
        rows.append([g, opt, len(slots), round(len(slots) / opt, 4)])
    return format_table(
        "E2 / Fig 3 — minimal feasible vs OPT (ratio -> 3)",
        ["g", "OPT", "adversarial minimal", "ratio"],
        rows,
    )


def _e4_integrality_gap() -> str:
    from ..activetime import exact_active_time
    from ..instances import lp_gap
    from ..lp import solve_active_time_lp

    rows = []
    for g in (2, 4, 8, 16):
        gad = lp_gap(g)
        lp = solve_active_time_lp(gad.instance, g).objective
        ip = exact_active_time(gad.instance, g).cost
        rows.append([g, round(lp, 4), ip, round(ip / lp, 4)])
    return format_table(
        "E4 / §3.5 — LP integrality gap (-> 2)",
        ["g", "LP", "IP", "gap"],
        rows,
    )


def _e7_interval_two_approx() -> str:
    from ..busytime import (
        BusyTimeSchedule,
        chain_peeling_two_approx,
        exact_busy_time_interval,
    )
    from ..instances import figure8

    rows = []
    for eps in (0.4, 0.2, 0.1):
        gad = figure8(eps=eps, eps_prime=eps / 2)
        opt = exact_busy_time_interval(gad.instance, gad.g).total_busy_time
        groups = [
            [gad.instance.job_by_id(j) for j in b]
            for b in gad.witness["adversarial_bundles"]
        ]
        adv = BusyTimeSchedule.from_bundle_jobs(gad.instance, gad.g, groups)
        cp = chain_peeling_two_approx(gad.instance, gad.g)
        rows.append(
            [eps, round(opt, 4), round(adv.total_busy_time, 4),
             round(adv.total_busy_time / opt, 4),
             round(cp.total_busy_time, 4)]
        )
    return format_table(
        "E7 / Fig 8 — interval 2-approx tightness (-> 2)",
        ["eps", "OPT", "adversarial", "ratio", "chain peeling"],
        rows,
    )


def _e8_profile_doubling() -> str:
    from ..busytime import compute_demand_profile, pin_instance
    from ..instances import figure9

    rows = []
    for g in (2, 4, 8):
        gad = figure9(g, eps=0.001)
        adv = pin_instance(gad.instance, gad.witness["adversarial_starts"])
        opt = pin_instance(gad.instance, gad.witness["optimal_starts"])
        dp = compute_demand_profile(adv, g).cost
        op = compute_demand_profile(opt, g).cost
        rows.append([g, round(op, 4), round(dp, 4), round(dp / op, 4)])
    return format_table(
        "E8 / Fig 9 — DP profile doubling (-> 2)",
        ["g", "optimal profile", "DP profile", "ratio"],
        rows,
    )


def _e9_flexible_factor4() -> str:
    from ..instances import figure10

    rows = []
    for g in (2, 4, 8, 16):
        gad = figure10(g, eps=0.01, eps_prime=0.005)
        rows.append(
            [g, round(gad.facts["opt_busy_time"], 4),
             gad.facts["adversarial_cost"],
             round(gad.facts["adversarial_cost"]
                   / gad.facts["opt_busy_time"], 4)]
        )
    return format_table(
        "E9 / Fig 10 — flexible 4-approx tightness (-> 4)",
        ["g", "OPT", "adversarial run", "ratio"],
        rows,
    )


def _e11_preemptive_exactness() -> str:
    import numpy as np

    from ..busytime import greedy_unbounded_preemptive, opt_infinity
    from ..instances import random_flexible_instance

    rng = np.random.default_rng(2014)
    rows = []
    for n in (6, 12, 20):
        strict = 0
        for _ in range(6):
            inst = random_flexible_instance(n, n + 6, rng=rng)
            pre = greedy_unbounded_preemptive(inst).total_busy_time
            non = opt_infinity(inst).busy_time
            assert pre <= non + 1e-6
            if pre < non - 1e-6:
                strict += 1
        rows.append([n, 6, strict])
    return format_table(
        "E11 / Thm 6 — preemption at g=inf (exact; value vs non-preemptive)",
        ["n", "instances", "preemption strictly helps"],
        rows,
    )


EXPERIMENTS: dict[str, Experiment] = {
    e.key: e
    for e in [
        Experiment("E2", "minimal feasible tightness (Fig 3)", _e2_minimal_feasible),
        Experiment("E4", "LP integrality gap (§3.5)", _e4_integrality_gap),
        Experiment("E7", "interval 2-approx tightness (Fig 8)", _e7_interval_two_approx),
        Experiment("E8", "DP profile doubling (Fig 9)", _e8_profile_doubling),
        Experiment("E9", "flexible factor-4 family (Fig 10)", _e9_flexible_factor4),
        Experiment("E11", "preemptive exactness (Thm 6)", _e11_preemptive_exactness),
    ]
}


def run_experiment(key: str) -> str:
    """Run one registered experiment by key (raises ``KeyError``)."""
    return EXPERIMENTS[key].run()


def run_all() -> str:
    """Run every registered experiment, concatenating the tables."""
    return "\n\n".join(EXPERIMENTS[k].run() for k in sorted(EXPERIMENTS))
