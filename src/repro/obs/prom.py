"""Prometheus text-exposition renderer (format version 0.0.4).

Renders a :class:`~repro.obs.metrics.MetricsRegistry` into the plain
text format scraped by Prometheus and read by humans over ``curl``:
``# HELP`` / ``# TYPE`` headers per family, one ``name{labels} value``
line per series, cumulative ``_bucket``/``_sum``/``_count`` triples for
histograms.  Standard library only.
"""

from __future__ import annotations

import math

from .metrics import MetricsRegistry

__all__ = ["render_prometheus", "CONTENT_TYPE"]

#: The Content-Type a ``/metrics`` endpoint should answer with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full exposition text for ``registry``, trailing newline included."""
    lines: list[str] = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.children():
            block = _label_block(labels)
            if family.kind == "histogram":
                counts, total_sum, count = child.snapshot()
                cumulative = 0
                for edge, n in zip(family.buckets, counts):
                    cumulative += n
                    le = _label_block(
                        labels, f'le="{_format_value(edge)}"'
                    )
                    lines.append(
                        f"{family.name}_bucket{le} {cumulative}"
                    )
                cumulative += counts[-1]
                inf = _label_block(labels, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{inf} {cumulative}")
                lines.append(
                    f"{family.name}_sum{block} {_format_value(total_sum)}"
                )
                lines.append(f"{family.name}_count{block} {count}")
            else:
                lines.append(
                    f"{family.name}{block} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""
