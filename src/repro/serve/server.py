"""Asyncio HTTP/JSONL serving front end over the batch engine.

The ROADMAP's async-serving item, made concrete: a stdlib
``asyncio.start_server`` HTTP/1.1 loop exposing the solver registry,
backed by one shared :class:`~repro.engine.runner.BatchRunner` and
:class:`~repro.engine.cache.ResultCache` so repeated and duplicate
requests are deduped server-side.  One event loop multiplexes thousands
of keep-alive connections; the blocking engine never runs on it — GET
payloads are cheap in-memory reads, ``/solve`` parses and solves on a
request executor thread, and each ``/batch`` pulls its result stream on
a dedicated producer thread through a bounded bridge.

Endpoints (wire contract unchanged from the threading tier)
-----------------------------------------------------------
``GET /algos``
    Registry listing: every solver spec plus every LP/MILP backend with
    its capabilities and availability (the same rows ``repro algos``
    prints).
``GET /healthz``
    Liveness plus cache statistics and a capacity report — including
    ``connections``, the number of currently open HTTP connections, so
    the fabric can see serving-tier saturation, not just pool depth.
``GET /metrics``
    The process metrics registry in Prometheus text-exposition format
    (task latency and queue-wait histograms, cache counters, warm-start
    gauges, connection gauge — see the README's metrics catalog).
``GET /stats``
    The same registry digested to JSON for humans and dashboards that
    do not speak Prometheus: queue depth, in-flight streams, per-backend
    latency quantiles, cache, serving and HiGHS re-solve statistics.
``POST /solve``
    One task as a JSON object (``instance``/``problem``/``algorithm``/
    ``g``/``params``/``backend``/``timeout``/``meta``); answers the
    :class:`~repro.engine.workers.TaskResult` record as JSON.  Solved
    at :data:`~repro.engine.runner.PRIORITY_URGENT`, so a one-task
    request takes a worker lease ahead of any large ``/batch``.
``POST /batch``
    A JSONL stream of task objects (one per line); answers chunked
    JSONL, one result record per line **in task order**.  Results are
    streamed incrementally through
    :meth:`~repro.engine.runner.BatchRunner.run_stream`; each line is
    written the moment its result (and every earlier one) is done, so
    one slow task never holds back finished predecessors.

Backpressure
------------
Each ``/batch`` connection owns a bounded result buffer
(``batch_buffer`` results): the producer thread pulling the engine
stream blocks once the buffer is full, and the event-loop side awaits
``writer.drain()`` after every line — so a stalled reader suspends *its
own* stream at the cap instead of pinning unbounded result memory, and
a reader that accepts no bytes for ``write_stall_timeout`` seconds is
treated as disconnected (the stream closes, which kills the leased
workers and frees their capacity).

Validation goes through the same error-menu helpers the CLI uses
(:func:`repro.engine.registry.backend_task_params`, ``REGISTRY.get``),
so a typo'd algorithm or backend name answers 400 with the full menu
instead of a bare error.

Everything here is standard library only — no framework to install on
the serving host.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from typing import Any, Deque, Iterator, Sequence
from urllib.parse import urlsplit

from ..engine import BatchRunner, ResultCache, backend_task_params, make_task
from ..engine.registry import PROBLEMS, REGISTRY
from ..engine.runner import PRIORITY_URGENT
from ..engine.workers import Task, TaskResult
from ..io import instance_from_payload
from ..obs import REGISTRY as OBS
from ..obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE, render_prometheus
from ..solvers import backend_names, backend_status, resolve_backend
from ..solvers.registry import get_backend

__all__ = [
    "DEFAULT_PORT",
    "RequestError",
    "ServeApp",
    "ReproAsyncServer",
    "ReproHTTPServer",
    "create_server",
    "parse_task_request",
]

#: Default TCP port for ``repro serve`` (unregistered, above ephemeral floor).
DEFAULT_PORT = 8977

#: Fields a task request may carry; anything else is a typo worth a 400.
_TASK_FIELDS = frozenset(
    {"instance", "problem", "algorithm", "g", "params", "backend",
     "timeout", "meta"}
)

#: Per-problem algorithm used when a request names none (CLI parity).
_DEFAULT_ALGORITHM = {"active": "rounding", "busy": "greedy_tracking"}

#: Refuse request bodies beyond this size (64 MiB) instead of buffering.
_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Default for ``write_stall_timeout``: give up on a ``/batch`` client
#: that accepts no bytes for this long.  The result stream is
#: pull-driven, so a stalled reader would suspend watchdog deadline
#: enforcement for its in-flight tasks indefinitely; treating a long
#: write stall as a disconnect closes the stream, which kills the
#: leased workers and frees their capacity.
DEFAULT_WRITE_STALL_SECONDS = 300.0

#: Default for ``batch_buffer``: results a ``/batch`` producer may pull
#: ahead of what its client has consumed before it blocks.
DEFAULT_BATCH_BUFFER = 64

#: Drop a keep-alive connection idle (no request line) past this long.
_KEEPALIVE_SECONDS = 600.0

#: Read deadline for the remainder of a request head once its first
#: byte arrived, and for a declared body — a peer trickling bytes must
#: not hold a handler open forever.
_HEADER_SECONDS = 30.0
_BODY_SECONDS = 120.0

#: StreamReader buffer limit: bounds a single request/header line.
_STREAM_LIMIT = 256 * 1024

_SERVER_NAME = "repro-serve"

_CONNECTIONS = OBS.gauge(
    "repro_serve_connections",
    "HTTP connections currently open on the serving tier",
)
_BP_STALLS = OBS.counter(
    "repro_serve_backpressure_stalls_total",
    "Times a /batch producer blocked on its connection's full "
    "result buffer (a slow or stalled reader)",
)


class RequestError(ValueError):
    """A client error with the HTTP status it should answer with.

    ``close`` marks errors raised before the request body was drained
    (411/413): on keep-alive the unread bytes would be parsed as the
    next request line, so the connection must be dropped after the
    error response.
    """

    def __init__(
        self, message: str, status: int = 400, *, close: bool = False
    ) -> None:
        super().__init__(message)
        self.status = status
        self.close = close


def _label(index: int | None) -> str:
    return "" if index is None else f"task {index}: "


def parse_task_request(
    payload: Any,
    index: int | None = None,
    *,
    default_backend: str | None = None,
    default_timeout: float | None = None,
) -> Task:
    """Translate one wire-format task object into an engine ``Task``.

    Raises :class:`RequestError` (status 400) with the same menu-style
    messages the CLI prints: unknown algorithms list the registered
    names, unknown backends list the backend menu.

    ``index`` labels multi-task (batch) errors with the task's position;
    it also becomes the task's result-ordering index.
    """
    at = _label(index)
    if not isinstance(payload, dict):
        raise RequestError(
            f"{at}request must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _TASK_FIELDS)
    if unknown:
        raise RequestError(
            f"{at}unknown field(s) {unknown}; "
            f"allowed fields: {sorted(_TASK_FIELDS)}"
        )

    problem = payload.get("problem", "active")
    if problem not in PROBLEMS:
        raise RequestError(
            f"{at}unknown problem {problem!r}; choose from {list(PROBLEMS)}"
        )
    algorithm = payload.get("algorithm") or _DEFAULT_ALGORITHM[problem]
    try:
        REGISTRY.get(problem, algorithm)
    except KeyError as exc:
        raise RequestError(f"{at}{exc.args[0]}") from None

    g = payload.get("g")
    if isinstance(g, bool) or not isinstance(g, int) or g < 1:
        raise RequestError(
            f"{at}'g' must be a positive integer, got {g!r}"
        )

    params = payload.get("params")
    params = {} if params is None else params
    if not isinstance(params, dict):
        raise RequestError(f"{at}'params' must be an object, got {params!r}")
    meta = payload.get("meta")
    meta = {} if meta is None else meta
    if not isinstance(meta, dict):
        raise RequestError(f"{at}'meta' must be an object, got {meta!r}")

    # Backend routing matches the CLI: an explicit request is strict
    # (naming a backend for a combinatorial algorithm is an error), a
    # server-wide default is advisory (combinatorial tasks ignore it).
    explicit = payload.get("backend")
    if explicit is not None and not isinstance(explicit, str):
        raise RequestError(
            f"{at}'backend' must be a string, got {explicit!r}"
        )
    try:
        backend_params = backend_task_params(
            problem,
            algorithm,
            explicit if explicit is not None else default_backend,
            strict=explicit is not None,
        )
    except ValueError as exc:
        raise RequestError(f"{at}{exc}") from None

    if "instance" not in payload:
        raise RequestError(
            f"{at}missing 'instance' "
            "(an object with a 'jobs' array of "
            "{release, deadline, length[, id]})"
        )
    try:
        instance = instance_from_payload(payload["instance"])
    except (ValueError, TypeError) as exc:
        # TypeError guards against payload shapes the io-level validation
        # missed: a malformed instance must answer 400, never tear down
        # the connection handler.
        raise RequestError(f"{at}{exc}") from None

    # An explicit ``"timeout": null`` must NOT bypass the server-wide
    # default: that would let a client disable the protective deadline
    # and wedge a worker on an unbounded exact solve.  Null means "use
    # the server default", exactly like omitting the field.
    timeout = payload.get("timeout")
    if timeout is None:
        timeout = default_timeout
    if timeout is not None and (
        isinstance(timeout, bool)
        or not isinstance(timeout, (int, float))
        or timeout <= 0
    ):
        raise RequestError(
            f"{at}'timeout' must be a positive number of seconds, "
            f"got {timeout!r}"
        )

    return make_task(
        index=index or 0,
        problem=problem,
        algorithm=algorithm,
        g=g,
        instance=instance,
        params={**params, **backend_params},
        meta=meta,
        timeout=float(timeout) if timeout is not None else None,
    )


def _histogram_summaries(
    name: str, key_labels: Sequence[str]
) -> dict[str, dict[str, float]]:
    """Quantile digests per labeled series of one histogram family.

    Series are keyed ``label1/label2`` (``"all"`` for an unlabeled
    histogram); a family not registered yet answers ``{}``.
    """
    family = OBS.get(name)
    if family is None:
        return {}
    return {
        "/".join(labels[k] for k in key_labels) or "all": child.summary()
        for labels, child in family.children()
    }


def _fabric_digest() -> dict[str, dict[str, Any]]:
    """Per-host fabric counters, keyed by host, for ``GET /stats``.

    Populated only in processes that have run a
    :class:`~repro.fabric.RemoteDispatcher` (the families register on
    first use); everywhere else this answers ``{}`` and the ``fabric``
    key reads as "no distributed activity here".
    """
    hosts: dict[str, dict[str, Any]] = {}
    for metric, key in (
        ("repro_fabric_dispatched_total", "dispatched"),
        ("repro_fabric_completed_total", "completed"),
        ("repro_fabric_retried_total", "retried"),
        ("repro_fabric_in_flight", "in_flight"),
        ("repro_fabric_host_up", "up"),
    ):
        family = OBS.get(metric)
        if family is None:
            continue
        for labels, child in family.children():
            hosts.setdefault(labels["host"], {})[key] = child.value
    latency = OBS.get("repro_fabric_task_seconds")
    if latency is not None:
        for labels, child in latency.children():
            hosts.setdefault(labels["host"], {})["task_seconds"] = (
                child.summary()
            )
    return hosts


def _json_safe(value: Any) -> Any:
    """Replace NaN/inf floats with ``None`` so the JSON is standard."""
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_json_safe(v) for v in value]
    if isinstance(value, float) and (
        value != value or value in (float("inf"), float("-inf"))
    ):
        return None
    return value


class ServeApp:
    """Server-side state shared by every request: runner + cache + defaults.

    One *streaming* :class:`BatchRunner` over one :class:`ResultCache`.
    There is no whole-batch lock: every request path submits through
    :meth:`BatchRunner.run_stream`, which shares the runner's persistent
    worker pools safely, so a long ``/batch`` never head-of-line blocks
    concurrent ``/solve`` requests — and ``/solve`` submits at urgent
    lease priority on top.  A cache is always present, even memory-only:
    it is what dedupes repeated requests server-side (and it is
    internally locked, so concurrent handlers share it).

    Serving knobs owned here (the connection layer reads them):

    ``write_stall_timeout``
        Seconds a response write may wait on ``drain()`` before the
        client is treated as disconnected (``None`` disables the
        budget).
    ``batch_buffer``
        Per-``/batch`` bounded result-buffer size: how far the engine
        stream may run ahead of a slow reader before it blocks.
    ``warm_pool`` / ``idle_ttl``
        Forwarded to the runner: pre-spawn the watchdog worker pool at
        startup, and reap workers idle past the TTL.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ResultCache | None = None,
        default_backend: str | None = None,
        default_timeout: float | None = None,
        write_stall_timeout: float | None = DEFAULT_WRITE_STALL_SECONDS,
        batch_buffer: int = DEFAULT_BATCH_BUFFER,
        warm_pool: bool = False,
        idle_ttl: float | None = None,
    ) -> None:
        if default_backend is not None:
            resolve_backend(default_backend)  # typo -> menu, at startup
        if write_stall_timeout is not None and write_stall_timeout <= 0:
            raise ValueError(
                "write_stall_timeout must be > 0 seconds (or None), "
                f"got {write_stall_timeout}"
            )
        if batch_buffer < 1:
            raise ValueError(
                f"batch_buffer must be >= 1, got {batch_buffer}"
            )
        self.cache = cache if cache is not None else ResultCache()
        self.runner = BatchRunner(jobs=jobs, cache=self.cache,
                                  idle_ttl=idle_ttl)
        self.default_backend = default_backend
        self.default_timeout = default_timeout
        self.write_stall_timeout = (
            float(write_stall_timeout)
            if write_stall_timeout is not None
            else None
        )
        self.batch_buffer = int(batch_buffer)
        self._counter_lock = threading.Lock()
        self.batches_served = 0
        self.tasks_served = 0
        self._connections = 0
        if warm_pool:
            self.runner.warm_up()

    def close(self) -> None:
        """Release the runner's persistent worker pools."""
        self.runner.close()

    # ------------------------------------------------------------------
    # Connection accounting (event-loop thread; lock shared with the
    # producer-thread counters)
    # ------------------------------------------------------------------
    @property
    def connections(self) -> int:
        """HTTP connections currently open."""
        with self._counter_lock:
            return self._connections

    def connection_opened(self) -> None:
        with self._counter_lock:
            self._connections += 1
            _CONNECTIONS.set(self._connections)

    def connection_closed(self) -> None:
        with self._counter_lock:
            self._connections -= 1
            _CONNECTIONS.set(self._connections)

    # ------------------------------------------------------------------
    def algos_payload(self) -> dict[str, Any]:
        """The ``GET /algos`` body: solver registry + backend registry."""
        return {
            "problems": {p: list(REGISTRY.names(p)) for p in PROBLEMS},
            "solvers": [
                {
                    "problem": spec.problem,
                    "name": spec.name,
                    "exact": spec.exact,
                    "guarantee": spec.guarantee,
                    "complexity": spec.complexity,
                    "description": spec.description,
                    "capabilities": sorted(spec.capabilities),
                    "backend_capability": spec.backend_capability,
                }
                for spec in REGISTRY.specs()
            ],
            "backends": [backend_status(name) for name in backend_names()],
            "defaults": {
                "algorithm": dict(_DEFAULT_ALGORITHM),
                "backend": self.default_backend,
                "timeout": self.default_timeout,
                "jobs": self.runner.jobs,
            },
        }

    def health_payload(self) -> dict[str, Any]:
        """The ``GET /healthz`` body: liveness plus a capacity report.

        ``jobs`` (worker processes), ``queue_depth`` (tasks enqueued and
        not yet dispatched), ``streams_in_flight`` (open result streams)
        and ``connections`` (open HTTP connections) are what the fabric
        dispatcher sizes a host's in-flight window from — a loaded host
        advertises its backlog and serving-tier saturation instead of
        silently queueing everything thrown at it.
        """
        with self._counter_lock:
            batches_served = self.batches_served
            tasks_served = self.tasks_served
        return {
            "ok": True,
            "jobs": self.runner.jobs,
            "queue_depth": OBS.value("repro_queue_depth"),
            "streams_in_flight": OBS.value("repro_streams_in_flight"),
            "connections": self.connections,
            "batches_served": batches_served,
            "tasks_served": tasks_served,
            "cache": self.cache.stats,
        }

    def stats_payload(self) -> dict[str, Any]:
        """The ``GET /stats`` body: the metrics registry digested to JSON.

        Everything here is also on ``/metrics`` in Prometheus form; this
        is the human/dashboard view — current queue depth, in-flight
        streams and connections, per-status task counts, latency
        quantiles per backend, cache, pool and HiGHS re-solve
        statistics.
        """
        tasks: dict[str, float] = {}
        family = OBS.get("repro_tasks_total")
        if family is not None:
            tasks = {
                labels["status"]: child.value
                for labels, child in family.children()
            }
        with self._counter_lock:
            batches_served = self.batches_served
            tasks_served = self.tasks_served
        payload = {
            "ok": True,
            "jobs": self.runner.jobs,
            "batches_served": batches_served,
            "tasks_served": tasks_served,
            "queue_depth": OBS.value("repro_queue_depth"),
            "streams_in_flight": OBS.value("repro_streams_in_flight"),
            "connections": self.connections,
            "backpressure_stalls": OBS.value(
                "repro_serve_backpressure_stalls_total"
            ),
            "pool": {
                "leases": OBS.value("repro_pool_leases_total"),
                "warmups": OBS.value("repro_pool_warmups_total"),
                "reaped": OBS.value("repro_pool_reaped_total"),
            },
            "tasks": tasks,
            "queue_wait_seconds": _histogram_summaries(
                "repro_queue_wait_seconds", ()
            ),
            "task_seconds": _histogram_summaries(
                "repro_task_seconds", ("backend", "algorithm")
            ),
            "backend_solve_seconds": _histogram_summaries(
                "repro_backend_solve_seconds", ("backend", "kind")
            ),
            "cache": self.cache.stats,
            "highs_resolve": get_backend("highs").resolve_stats(),
            "fabric": _fabric_digest(),
        }
        return _json_safe(payload)

    # ------------------------------------------------------------------
    def solve_one(self, task: Task) -> TaskResult:
        """Run one task through the shared runner/cache, urgently.

        ``/solve`` is a latency request: it leases at
        :data:`~repro.engine.runner.PRIORITY_URGENT`, so a concurrent
        bulk ``/batch`` sheds it a worker at its next task completion
        instead of making it wait for the whole batch queue to drain.
        """
        result = self.runner.run([task], priority=PRIORITY_URGENT)[0]
        with self._counter_lock:
            self.tasks_served += 1
        return result

    def run_batch(self, tasks: Sequence[Task]) -> Iterator[TaskResult]:
        """Yield results for ``tasks`` in task order, incrementally.

        Streams through :meth:`BatchRunner.run_stream`: each result is
        yielded the moment it (and all its predecessors) is done, in-run
        duplicates are solved once, and every result lands in the shared
        cache — which also dedupes across repeated batches.  The batch
        counter is committed in ``finally`` so an abandoned stream (a
        disconnected client closing this generator) still counts and the
        served-task tally stays consistent with what actually ran.
        """
        stream = self.runner.run_stream(tasks)
        try:
            for result in stream:
                with self._counter_lock:
                    self.tasks_served += 1
                yield result
        finally:
            # Deterministic teardown on abandonment: closing the stream
            # cancels undispatched tasks and settles its gauges.
            stream.close()
            with self._counter_lock:
                self.batches_served += 1

    # ------------------------------------------------------------------
    # Blocking request work, run on the server's request executor —
    # never on the event loop.
    # ------------------------------------------------------------------
    def solve_record(self, body: bytes) -> dict[str, Any]:
        """Parse one ``/solve`` body and solve it; answers the record."""
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RequestError(
                f"request body is not valid JSON: {exc}"
            ) from None
        task = parse_task_request(
            payload,
            default_backend=self.default_backend,
            default_timeout=self.default_timeout,
        )
        return self.solve_one(task).to_record()

    def parse_batch(self, body: bytes) -> list[Task]:
        """Validate a whole ``/batch`` JSONL body into engine tasks.

        The entire stream is validated before anything solves: a typo on
        line 40 must not waste 39 solves.
        """
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise RequestError(f"batch body is not UTF-8: {exc}") from None
        tasks: list[Task] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RequestError(
                    f"line {lineno}: malformed JSON ({exc.msg}); "
                    "batch bodies are JSONL, one task object per line"
                ) from None
            try:
                tasks.append(
                    parse_task_request(
                        payload,
                        index=len(tasks),
                        default_backend=self.default_backend,
                        default_timeout=self.default_timeout,
                    )
                )
            except RequestError as exc:
                raise RequestError(f"line {lineno}: {exc}") from None
        return tasks


class _BatchBridge:
    """Bounded producer(thread) → consumer(event loop) result bridge.

    One per active ``/batch`` response.  The producer thread pulls the
    engine's ordered result stream and blocks once ``maxsize`` results
    sit unconsumed — the per-connection backpressure cap that keeps a
    stalled reader from pinning unbounded result memory.  The event-loop
    consumer takes results as they land (woken through
    ``call_soon_threadsafe``) and writes them behind ``drain()``.
    """

    def __init__(
        self, loop: asyncio.AbstractEventLoop, maxsize: int
    ) -> None:
        self._loop = loop
        self._maxsize = max(1, maxsize)
        self._cond = threading.Condition()
        self._items: Deque[TaskResult] = deque()
        self._done = False
        self._error: BaseException | None = None
        self._cancelled = False
        self._ready = asyncio.Event()

    # -- producer thread -----------------------------------------------
    def put(self, item: TaskResult) -> bool:
        """Buffer one result; block at the cap.  False once cancelled."""
        with self._cond:
            if len(self._items) >= self._maxsize and not self._cancelled:
                _BP_STALLS.inc()
                while (
                    len(self._items) >= self._maxsize
                    and not self._cancelled
                ):
                    self._cond.wait()
            if self._cancelled:
                return False
            self._items.append(item)
        self._wake()
        return True

    def finish(self) -> None:
        with self._cond:
            self._done = True
        self._wake()

    def fail(self, exc: BaseException) -> None:
        with self._cond:
            self._error = exc
            self._done = True
        self._wake()

    def _wake(self) -> None:
        try:
            self._loop.call_soon_threadsafe(self._ready.set)
        except RuntimeError:
            pass  # loop already closed; the consumer is gone anyway

    # -- consumer (event loop) -----------------------------------------
    async def get(self) -> TaskResult | None:
        """Next result, or ``None`` once the stream ended cleanly."""
        while True:
            with self._cond:
                if self._items:
                    item = self._items.popleft()
                    self._cond.notify_all()
                    return item
                if self._done:
                    if self._error is not None:
                        raise RuntimeError(
                            "batch producer failed"
                        ) from self._error
                    return None
                self._ready.clear()
            await self._ready.wait()

    def cancel(self) -> None:
        """Unblock and stop the producer (client gone / stream done)."""
        with self._cond:
            self._cancelled = True
            self._items.clear()
            self._cond.notify_all()


def _produce_batch(
    app: ServeApp, tasks: list[Task], bridge: _BatchBridge
) -> None:
    """Producer-thread body: drive the engine stream into the bridge."""
    results = app.run_batch(tasks)
    try:
        for result in results:
            if not bridge.put(result):
                return
        bridge.finish()
    except BaseException as exc:
        bridge.fail(exc)
        if not isinstance(exc, Exception):
            # KeyboardInterrupt / SystemExit: surface on the thread too,
            # don't convert interpreter shutdown into a quiet batch error.
            raise
    finally:
        results.close()


#: Exceptions that mean "the peer went away", never a server bug.
_CONNECTION_GONE = (
    ConnectionError,
    TimeoutError,
    asyncio.IncompleteReadError,
    OSError,
)


class ReproAsyncServer:
    """Asyncio HTTP/1.1 server carrying the shared :class:`ServeApp`.

    The listening socket is bound (and listening) at construction, so
    ``server_address`` / ``url`` are final immediately — ``port=0``
    callers can read their ephemeral port before serving starts, and
    early clients queue in the accept backlog until the loop runs.

    The ``socketserver`` driving contract is preserved so the CLI,
    tests and smoke scripts keep working unchanged:
    :meth:`serve_forever` blocks the calling thread (running a private
    event loop), :meth:`shutdown` stops it from any thread, and
    :meth:`server_close` releases the socket, the request executor and
    the app's worker pools.
    """

    def __init__(
        self,
        address: tuple[str, int],
        app: ServeApp,
        *,
        verbose: bool = False,
        max_connections: int | None = None,
        keepalive_timeout: float = _KEEPALIVE_SECONDS,
    ) -> None:
        if max_connections is not None and max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        self.app = app
        self.verbose = verbose
        self.max_connections = max_connections
        self.keepalive_timeout = keepalive_timeout
        self._sock = socket.create_server(address, backlog=512)
        self.server_address = self._sock.getsockname()[:2]
        # Request executor for blocking work (body parse + /solve).
        # Sized past the worker pool so queued requests park here, off
        # the event loop, while the engine applies the real concurrency
        # limit.
        self._executor = ThreadPoolExecutor(
            max_workers=max(8, app.runner.jobs + 4),
            thread_name_prefix="repro-serve",
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._stopped.set()  # not running yet
        self._closed = False

    @property
    def url(self) -> str:
        host, port = self.server_address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # Lifecycle (socketserver-compatible driving surface)
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the accept/serve event loop in the calling thread."""
        if self._closed:
            raise RuntimeError("serve_forever() on a closed server")
        self._stopped.clear()
        try:
            asyncio.run(self._serve())
        finally:
            self._loop = None
            self._shutdown_event = None
            self._started.clear()
            self._stopped.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        server = await asyncio.start_server(
            self._accept_connection,
            sock=self._sock,
            limit=_STREAM_LIMIT,
        )
        self._started.set()
        try:
            await self._shutdown_event.wait()
        finally:
            # Stop accepting; live connection-handler tasks are
            # cancelled (finally blocks run) by asyncio.run's teardown.
            server.close()

    def request_shutdown(self) -> bool:
        """Ask the serve loop to stop, without blocking.

        Safe from any thread *and* from a signal handler running on the
        loop's own thread (``call_soon_threadsafe`` only writes to the
        loop's wake-up pipe).  Answers whether a running loop accepted
        the request; ``False`` means the loop is not up (never started,
        or already gone).
        """
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None:
            return False
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            return False
        return True

    def shutdown(self) -> None:
        """Stop :meth:`serve_forever` from another thread; blocks."""
        if self._stopped.is_set():
            return
        self._started.wait(timeout=5.0)
        self.request_shutdown()
        self._stopped.wait(timeout=30.0)

    def server_close(self) -> None:
        """Release sockets, the request executor and the worker pools."""
        self.shutdown()
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._executor.shutdown(wait=False, cancel_futures=True)
        self.app.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _accept_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Sync accept callback: spawn and track the handler task.

        Handing ``start_server`` the coroutine directly would make the
        streams protocol wrap it in a task whose completion callback
        calls ``task.exception()`` — which *raises* on a cancelled task
        (3.11 ``asyncio.streams``) and spams the loop's exception
        handler at teardown, now that handlers re-raise
        ``CancelledError`` as the asyncio contract requires.  Owning the
        task here keeps cancellation propagation and quiet teardown;
        the strong reference also keeps the task alive (the loop holds
        only weak ones).
        """
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(reader, writer)
        )
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        app = self.app
        if (
            self.max_connections is not None
            and app.connections >= self.max_connections
        ):
            await self._reject_overloaded(writer)
            return
        app.connection_opened()
        try:
            await self._connection_loop(reader, writer)
        except _CONNECTION_GONE:
            pass  # peer vanished; nothing useful left to say to it
        except asyncio.CancelledError:
            # Server teardown cancelled this connection's task.  Run the
            # cleanup below, then let the cancellation propagate: a task
            # that swallows CancelledError reports "finished normally"
            # and wedges whoever is awaiting its cancellation.
            raise
        except Exception as exc:
            self._log(f"connection handler error: "
                      f"{type(exc).__name__}: {exc}")
        finally:
            app.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):  # lint: waive[REP002] best-effort close of a dead socket; a CancelledError raised above keeps propagating
                pass

    async def _reject_overloaded(
        self, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._write_json(
                writer,
                503,
                {
                    "error": (
                        "connection limit reached "
                        f"({self.max_connections}); retry later"
                    ),
                    "status": 503,
                },
                keep_alive=False,
            )
        except _CONNECTION_GONE:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):  # lint: waive[REP002] best-effort close while rejecting an overloaded peer; nothing left to tell it
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            head = await self._read_head(reader)
            if head is None:
                return
            method, target, version, headers = head
            keep_alive = version != "HTTP/1.0"
            conn_header = headers.get("connection", "").lower()
            if "close" in conn_header:
                keep_alive = False
            elif version == "HTTP/1.0" and "keep-alive" in conn_header:
                keep_alive = True
            keep_alive = await self._dispatch(
                method, target, headers, reader, writer, keep_alive
            )
            if not keep_alive:
                return

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, dict[str, str]] | None:
        """One request line + headers; ``None`` means drop the connection.

        The request-line read doubles as the keep-alive idle deadline;
        later header lines run on the tighter header deadline.  All
        malformed heads answer by closing (there is no reliably
        parseable request to answer *to*).
        """
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.keepalive_timeout
            )
        except (asyncio.TimeoutError, ValueError):
            return None
        if not line:
            return None  # clean EOF between requests
        try:
            method, target, version = (
                line.decode("ascii").strip().split(None, 2)
            )
        except (UnicodeDecodeError, ValueError):
            return None
        headers: dict[str, str] = {}
        while True:
            try:
                hline = await asyncio.wait_for(
                    reader.readline(), timeout=_HEADER_SECONDS
                )
            except (asyncio.TimeoutError, ValueError):
                return None
            if hline in (b"\r\n", b"\n"):
                break
            if not hline or len(headers) > 256:
                return None
            name, sep, value = hline.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return method, target, version, headers

    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> bool:
        """Route one request; answers whether the connection stays open."""
        path = urlsplit(target).path
        try:
            if method == "GET":
                status, live = await self._handle_get(
                    path, headers, writer, keep_alive
                )
            elif method == "POST":
                status, live = await self._handle_post(
                    path, headers, reader, writer, keep_alive
                )
            else:
                await self._write_json(
                    writer,
                    501,
                    {
                        "error": f"unsupported method {method}",
                        "status": 501,
                    },
                    keep_alive=False,
                )
                status, live = 501, False
        except RequestError as exc:
            live = keep_alive and not exc.close
            await self._write_json(
                writer,
                exc.status,
                {"error": str(exc), "status": exc.status},
                keep_alive=live,
            )
            status = exc.status
        self._log_request(method, path, status)
        return live

    async def _handle_get(
        self,
        path: str,
        headers: dict[str, str],
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> tuple[int, bool]:
        # A GET carrying a body is not served here; draining it would
        # stall the loop, so the connection closes after the response
        # rather than desync on the unread bytes.
        if headers.get("content-length", "0").strip() not in ("", "0"):
            keep_alive = False
        app = self.app
        if path == "/algos":
            payload, status = app.algos_payload(), 200
        elif path in ("/healthz", "/health"):
            payload, status = app.health_payload(), 200
        elif path == "/metrics":
            body = render_prometheus(OBS).encode("utf-8")
            await self._write_raw(
                writer, 200, PROM_CONTENT_TYPE, body, keep_alive
            )
            return 200, keep_alive
        elif path == "/stats":
            payload, status = app.stats_payload(), 200
        else:
            payload = {
                "error": self._unknown_path(path),
                "status": 404,
            }
            status = 404
        await self._write_json(writer, status, payload, keep_alive)
        return status, keep_alive

    async def _handle_post(
        self,
        path: str,
        headers: dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> tuple[int, bool]:
        if path == "/solve":
            body = await self._read_body(headers, reader)
            record = await asyncio.get_running_loop().run_in_executor(
                self._executor, self.app.solve_record, body
            )
            await self._write_json(writer, 200, record, keep_alive)
            return 200, keep_alive
        if path == "/batch":
            live = await self._handle_batch(
                headers, reader, writer, keep_alive
            )
            return 200, live
        # Unknown POST path: the body was not read, so the connection
        # must close after the error (keep-alive would parse the unread
        # body as the next request line).
        await self._write_json(
            writer,
            404,
            {"error": self._unknown_path(path), "status": 404},
            keep_alive=False,
        )
        return 404, False

    @staticmethod
    def _unknown_path(path: str) -> str:
        return (
            f"unknown path {path!r}; endpoints: GET /algos, GET /healthz, "
            "GET /metrics, GET /stats, POST /solve, POST /batch"
        )

    # ------------------------------------------------------------------
    async def _handle_batch(
        self,
        headers: dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> bool:
        app = self.app
        body = await self._read_body(headers, reader)
        loop = asyncio.get_running_loop()
        # Validation (possibly a 64 MiB JSONL parse) runs off-loop; a
        # RequestError propagates through the future to _dispatch.
        tasks = await loop.run_in_executor(
            self._executor, app.parse_batch, body
        )
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Server: {_SERVER_NAME}\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            + ("" if keep_alive else "Connection: close\r\n")
            + "\r\n"
        )
        writer.write(head.encode("ascii"))
        bridge = _BatchBridge(loop, app.batch_buffer)
        producer = threading.Thread(
            target=_produce_batch,
            args=(app, tasks, bridge),
            daemon=True,
            name="repro-batch-producer",
        )
        producer.start()
        stall = app.write_stall_timeout
        try:
            while True:
                result = await bridge.get()
                if result is None:
                    break
                data = (
                    json.dumps(result.to_record(), sort_keys=True) + "\n"
                ).encode("utf-8")
                writer.write(
                    f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"
                )
                # The whole point of streaming: deliver now — and let a
                # full transport buffer (slow reader) suspend us here,
                # bounded by the write-stall budget.
                await self._drain(writer, stall)
            writer.write(b"0\r\n\r\n")
            await self._drain(writer, stall)
            return keep_alive
        except _CONNECTION_GONE:
            # The client went away mid-stream (or stalled past the write
            # budget).  Not a server error: cancelling the bridge stops
            # the producer, whose stream close cancels undispatched
            # tasks, kills leased workers and commits the batch
            # counters.  Drop the connection quietly.
            return False
        finally:
            bridge.cancel()

    # ------------------------------------------------------------------
    # Body / response plumbing
    # ------------------------------------------------------------------
    async def _read_body(
        self, headers: dict[str, str], reader: asyncio.StreamReader
    ) -> bytes:
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            raise RequestError(
                "missing or malformed Content-Length header",
                status=411,
                close=True,
            ) from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise RequestError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit",
                status=413,
                close=True,
            )
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), timeout=_BODY_SECONDS
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            raise RequestError(
                "request body ended early", status=400, close=True
            ) from None

    @staticmethod
    async def _drain(
        writer: asyncio.StreamWriter, timeout: float | None
    ) -> None:
        if timeout is None:
            await writer.drain()
        else:
            await asyncio.wait_for(writer.drain(), timeout=timeout)

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        await self._write_raw(
            writer, status, "application/json", body, keep_alive
        )

    async def _write_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        keep_alive: bool,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Server: {_SERVER_NAME}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if not keep_alive:
            head += "Connection: close\r\n"
        head += "\r\n"
        writer.write(head.encode("ascii") + body)
        await self._drain(writer, self.app.write_stall_timeout)

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[{_SERVER_NAME}] {message}", flush=True)

    def _log_request(self, method: str, path: str, status: int) -> None:
        if self.verbose:
            print(f'[{_SERVER_NAME}] "{method} {path}" {status}',
                  flush=True)


#: Compatibility alias: the serving entry point was named after its
#: ``ThreadingHTTPServer`` base before the asyncio rebuild.
ReproHTTPServer = ReproAsyncServer


def create_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    default_backend: str | None = None,
    default_timeout: float | None = None,
    verbose: bool = False,
    write_stall_timeout: float | None = DEFAULT_WRITE_STALL_SECONDS,
    batch_buffer: int = DEFAULT_BATCH_BUFFER,
    max_connections: int | None = None,
    warm_pool: bool = False,
    idle_ttl: float | None = None,
    keepalive_timeout: float = _KEEPALIVE_SECONDS,
) -> ReproAsyncServer:
    """Build a ready-to-run server (``port=0`` picks an ephemeral port)."""
    app = ServeApp(
        jobs=jobs,
        cache=cache,
        default_backend=default_backend,
        default_timeout=default_timeout,
        write_stall_timeout=write_stall_timeout,
        batch_buffer=batch_buffer,
        warm_pool=warm_pool,
        idle_ttl=idle_ttl,
    )
    return ReproAsyncServer(
        (host, port),
        app,
        verbose=verbose,
        max_connections=max_connections,
        keepalive_timeout=keepalive_timeout,
    )
