"""Content-addressed result cache for solver runs.

A task is identified by a stable SHA-256 digest of the *canonicalized*
instance (job tuples in order), the problem/algorithm pair, ``g`` and
any extra parameters.  Two layers:

* an in-memory LRU (``OrderedDict``) bounded by ``maxsize``;
* an optional on-disk JSON store (one file per digest) so repeated
  sweeps across process runs are near-free.

Only JSON-serializable result records go through the cache — schedules
stay in-process.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Any, Mapping

from ..core.jobs import Instance

__all__ = [
    "canonical_task",
    "instance_digest",
    "task_digest",
    "ResultCache",
]


def _canonical_jobs(instance: Instance) -> list[list[Any]]:
    """Jobs as plain lists, in instance order (order matters to packers).

    ``Job.label`` is excluded: it is declared ``compare=False`` on the
    dataclass and no solver reads it, so label-only variants of the
    same jobs must share cache entries.
    """
    return [
        [j.release, j.deadline, j.length, j.id]
        for j in instance.jobs
    ]


def canonical_task(
    instance: Instance,
    problem: str,
    algorithm: str,
    g: int,
    params: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The canonical JSON-ready description of one solve task."""
    return {
        "jobs": _canonical_jobs(instance),
        "problem": problem,
        "algorithm": algorithm,
        "g": g,
        "params": dict(sorted((params or {}).items())),
    }


def _digest(payload: Any) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def instance_digest(instance: Instance) -> str:
    """Stable content hash of an instance alone."""
    return _digest(_canonical_jobs(instance))


def task_digest(
    instance: Instance,
    problem: str,
    algorithm: str,
    g: int,
    params: Mapping[str, Any] | None = None,
) -> str:
    """Stable content hash of a full solve task."""
    return _digest(canonical_task(instance, problem, algorithm, g, params))


class ResultCache:
    """In-memory LRU over an optional on-disk JSON store.

    Parameters
    ----------
    maxsize:
        Bound on the in-memory layer; least-recently-used entries are
        evicted first.  The disk layer (when enabled) is unbounded.
    directory:
        When given, every ``put`` also writes ``<digest>.json`` here and
        ``get`` falls back to disk on a memory miss.
    """

    def __init__(
        self, maxsize: int = 4096, directory: str | Path | None = None
    ) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached record for ``key`` or ``None`` on a miss."""
        record = self._memory.get(key)
        if record is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return dict(record)
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                record = None
            if record is not None:
                self._store_memory(key, record)
                self.hits += 1
                return dict(record)
        self.misses += 1
        return None

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Store a JSON-serializable record under ``key``."""
        payload = dict(record)
        self._store_memory(key, payload)
        path = self._disk_path(key)
        if path is not None:
            # Unique tmp name: concurrent runs sharing a cache directory
            # may put the same digest; a fixed tmp name would race.
            tmp = path.with_suffix(f".{os.getpid()}.{id(self):x}.tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True))
            tmp.replace(path)

    def _store_memory(self, key: str, record: Mapping[str, Any]) -> None:
        self._memory[key] = dict(record)
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss counters plus the in-memory size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._memory),
        }

    def clear(self) -> None:
        """Drop the in-memory layer (disk files are left alone)."""
        self._memory.clear()
