"""Tests for the Theorem-1 minimal-feasible 3-approximation."""

import pytest

from repro.activetime import (
    close_slots_greedily,
    exact_active_time,
    minimal_feasible_schedule,
)
from repro.core import Instance
from repro.flow import ActiveTimeFeasibility, is_feasible_slot_set
from repro.instances import figure3, random_active_time_instance


class TestBasics:
    def test_result_is_feasible(self, tiny_instance):
        s = minimal_feasible_schedule(tiny_instance, 2)
        s.verify()

    def test_empty_instance(self):
        s = minimal_feasible_schedule(Instance(tuple()), 1)
        assert s.cost == 0

    def test_infeasible_instance_raises(self):
        inst = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        with pytest.raises(ValueError):
            minimal_feasible_schedule(inst, 1)

    def test_explicit_start_slots(self, tiny_instance):
        s = minimal_feasible_schedule(
            tiny_instance, 2, start_slots=range(1, 7)
        )
        s.verify()

    def test_infeasible_start_slots_raise(self, tiny_instance):
        with pytest.raises(ValueError):
            minimal_feasible_schedule(tiny_instance, 2, start_slots=[1])


class TestMinimality:
    @pytest.mark.parametrize("order", ["left", "right", "inside_out", "random"])
    def test_no_slot_closable(self, order, rng):
        """Definition 4: closing any single active slot breaks feasibility."""
        for _ in range(6):
            inst = random_active_time_instance(6, 8, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                s = minimal_feasible_schedule(inst, g, order=order, rng=rng)
            except ValueError:
                continue
            oracle = ActiveTimeFeasibility(inst, g)
            active = set(s.active_slots)
            for t in s.active_slots:
                assert not oracle.is_feasible(active - {t})

    def test_explicit_order_prefix(self, tiny_instance):
        # force trying slots 6, 5, 4 first
        slots = close_slots_greedily(
            tiny_instance, 2, range(1, 7), order=[6, 5, 4]
        )
        assert is_feasible_slot_set(tiny_instance, 2, slots)


class TestApproximationGuarantee:
    @pytest.mark.parametrize("order", ["left", "right", "inside_out"])
    def test_within_3_opt_random(self, order, rng):
        for _ in range(10):
            inst = random_active_time_instance(6, 9, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                exact = exact_active_time(inst, g)
            except RuntimeError:
                continue
            s = minimal_feasible_schedule(inst, g, order=order)
            assert s.cost <= 3 * exact.cost

    def test_figure3_adversarial_slot_set(self):
        """The paper's Figure-3 witness: feasible at cost 3g-2 vs OPT g."""
        for g in (3, 4, 6):
            gad = figure3(g)
            slots = gad.witness["adversarial_slots"]
            assert len(slots) == 3 * g - 2
            assert is_feasible_slot_set(gad.instance, g, slots)
            exact = exact_active_time(gad.instance, g)
            assert exact.cost == g

    def test_figure3_ratio_approaches_3(self):
        ratios = []
        for g in (3, 5, 8):
            gad = figure3(g)
            ratios.append((3 * g - 2) / g)
        assert ratios == sorted(ratios)
        assert ratios[-1] > 2.7

    def test_figure3_greedy_can_reach_adversarial_cost(self):
        """inside-out closing lands on the 3g-2 minimal solution."""
        g = 4
        gad = figure3(g)
        s = minimal_feasible_schedule(gad.instance, g, order="inside_out")
        assert s.cost == 3 * g - 2


class TestOrderSensitivity:
    def test_orders_can_differ(self, rng):
        """Different closing orders may land on different minimal solutions."""
        seen_difference = False
        for _ in range(20):
            inst = random_active_time_instance(7, 9, rng=rng)
            try:
                a = minimal_feasible_schedule(inst, 2, order="left")
                b = minimal_feasible_schedule(inst, 2, order="right")
            except ValueError:
                continue
            if a.active_slots != b.active_slots:
                seen_difference = True
                break
        assert seen_difference

    def test_unknown_order_rejected(self, tiny_instance):
        with pytest.raises(ValueError, match="order"):
            minimal_feasible_schedule(tiny_instance, 2, order="sideways")
