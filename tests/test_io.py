"""Tests for instance serialization (repro.io)."""

import pytest

from repro.core import Instance, Job
from repro.io import (
    instance_from_csv,
    instance_from_json,
    instance_to_csv,
    instance_to_json,
    load_instance,
    save_instance,
)


class TestJson:
    def test_roundtrip(self, tiny_instance):
        text = instance_to_json(tiny_instance)
        assert instance_from_json(text) == tiny_instance

    def test_labels_preserved(self):
        inst = Instance((Job(0, 3, 2, id=5, label="rigid"),))
        back = instance_from_json(instance_to_json(inst))
        assert back.jobs[0].label == "rigid"
        assert back.jobs[0].id == 5

    def test_metadata_embedded(self, tiny_instance):
        text = instance_to_json(tiny_instance, g=3, source="unit-test")
        assert '"g": 3' in text

    def test_bad_format_marker(self):
        with pytest.raises(ValueError, match="format"):
            instance_from_json('{"format": "other", "jobs": []}')

    def test_real_values_roundtrip(self):
        inst = Instance.from_intervals([(0.125, 1.375), (2.5, 3.75)])
        assert instance_from_json(instance_to_json(inst)) == inst


class TestCsv:
    def test_roundtrip(self, tiny_instance):
        text = instance_to_csv(tiny_instance)
        assert instance_from_csv(text) == tiny_instance

    def test_header_optional(self):
        got = instance_from_csv("0,4,2\n1,5,3\n")
        assert got.n == 2
        assert got.jobs[1].length == 3

    def test_ids_auto_assigned(self):
        got = instance_from_csv("release,deadline,length\n0,4,2\n1,5,3\n")
        assert [j.id for j in got.jobs] == [0, 1]

    def test_explicit_ids(self):
        got = instance_from_csv("0,4,2,7\n1,5,3,9\n")
        assert [j.id for j in got.jobs] == [7, 9]

    def test_malformed_row(self):
        with pytest.raises(ValueError, match="malformed"):
            instance_from_csv("0,4,2\nnot,a,row\n")

    def test_too_few_columns(self):
        with pytest.raises(ValueError, match="columns"):
            instance_from_csv("0,4\n")

    def test_blank_lines_skipped(self):
        got = instance_from_csv("0,4,2\n\n1,5,3\n\n")
        assert got.n == 2


class TestFiles:
    def test_save_load_json(self, tiny_instance, tmp_path):
        path = tmp_path / "inst.json"
        save_instance(tiny_instance, path, g=2)
        assert load_instance(path) == tiny_instance

    def test_save_load_csv(self, tiny_instance, tmp_path):
        path = tmp_path / "inst.csv"
        save_instance(tiny_instance, path)
        assert load_instance(path) == tiny_instance

    def test_unsupported_extension(self, tiny_instance, tmp_path):
        with pytest.raises(ValueError, match="extension"):
            save_instance(tiny_instance, tmp_path / "inst.yaml")
        with pytest.raises(ValueError, match="extension"):
            load_instance(tmp_path / "inst.yaml")


class TestJsonl:
    def test_roundtrip(self, tiny_instance, interval_instance):
        from repro.io import instances_from_jsonl, instances_to_jsonl

        text = instances_to_jsonl([tiny_instance, interval_instance])
        assert instances_from_jsonl(text) == [tiny_instance, interval_instance]

    def test_empty(self):
        from repro.io import instances_from_jsonl, instances_to_jsonl

        assert instances_to_jsonl([]) == ""
        assert instances_from_jsonl("") == []

    def test_load_instances_dispatches_by_extension(
        self, tiny_instance, interval_instance, tmp_path
    ):
        from repro.io import instances_to_jsonl, load_instances

        many = tmp_path / "work.jsonl"
        many.write_text(instances_to_jsonl([tiny_instance, interval_instance]))
        assert load_instances(many) == [tiny_instance, interval_instance]

        one = tmp_path / "one.json"
        save_instance(tiny_instance, one)
        assert load_instances(one) == [tiny_instance]
