"""Tests for the right-shifting preprocessing (Section 3.1, Lemma 3)."""

import pytest

from repro.activetime import classify_slot, right_shift, snap
from repro.instances import lp_gap, random_active_time_instance
from repro.lp import solve_active_time_lp


class TestSnapAndClassify:
    def test_snap_near_integer(self):
        assert snap(0.9999999) == 1.0
        assert snap(2.0000001) == 2.0
        assert snap(1.4) == 1.4

    def test_classify(self):
        assert classify_slot(0.0) == "closed"
        assert classify_slot(1e-9) == "closed"
        assert classify_slot(0.3) == "barely"
        assert classify_slot(0.5) == "half"
        assert classify_slot(0.9) == "half"
        assert classify_slot(1.0) == "full"
        assert classify_slot(0.9999999) == "full"


class TestStructure:
    def _shift(self, inst, g):
        return right_shift(solve_active_time_lp(inst, g))

    def test_mass_preserved_per_block(self, rng):
        for _ in range(10):
            inst = random_active_time_instance(6, 9, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                lp = solve_active_time_lp(inst, g)
            except RuntimeError:
                continue
            shifted = right_shift(lp)
            for (a, b), mass in zip(shifted.blocks, shifted.masses):
                assert float(shifted.y[a : b + 1].sum()) == pytest.approx(
                    mass, abs=1e-6
                )

    def test_objective_preserved(self, rng):
        for _ in range(10):
            inst = random_active_time_instance(6, 9, rng=rng)
            try:
                lp = solve_active_time_lp(inst, 2)
            except RuntimeError:
                continue
            shifted = right_shift(lp)
            assert shifted.objective == pytest.approx(lp.objective, abs=1e-5)

    def test_observation_1_right_packed(self, rng):
        """Within a block, a positive slot is followed only by full slots."""
        for _ in range(10):
            inst = random_active_time_instance(6, 9, rng=rng)
            try:
                shifted = self._shift(inst, 2)
            except RuntimeError:
                continue
            for a, b in shifted.blocks:
                seen_positive = False
                for t in range(a, b + 1):
                    kind = classify_slot(shifted.y[t])
                    if seen_positive:
                        assert kind == "full"
                    if kind != "closed":
                        seen_positive = True

    def test_at_most_one_fractional_slot_per_block(self, rng):
        for _ in range(10):
            inst = random_active_time_instance(6, 9, rng=rng)
            try:
                shifted = self._shift(inst, 2)
            except RuntimeError:
                continue
            for a, b in shifted.blocks:
                fractional = [
                    t
                    for t in range(a, b + 1)
                    if classify_slot(shifted.y[t]) in ("barely", "half")
                ]
                assert len(fractional) <= 1

    def test_fractional_slot_of_block(self):
        gad = lp_gap(3)
        shifted = self._shift(gad.instance, 3)
        # every pair-block carries mass 1 + 1/3: fractional slot of value 1/3
        for i in range(len(shifted.blocks)):
            frac = shifted.fractional_slot_of_block(i)
            assert frac is not None
            slot, value = frac
            assert value == pytest.approx(1 / 3, abs=1e-6)


class TestLemma3Feasibility:
    def test_shifted_solution_remains_fractionally_feasible(self, rng):
        count = 0
        for _ in range(12):
            inst = random_active_time_instance(6, 9, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                shifted = right_shift(solve_active_time_lp(inst, g))
            except RuntimeError:
                continue
            assert shifted.is_feasible_fractional()
            count += 1
        assert count >= 5

    def test_gap_gadget_feasible_after_shift(self):
        for g in (2, 4):
            gad = lp_gap(g)
            shifted = right_shift(solve_active_time_lp(gad.instance, g))
            assert shifted.is_feasible_fractional()
