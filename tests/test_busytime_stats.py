"""Tests for schedule statistics (repro.busytime.stats)."""

import pytest

from repro.busytime import greedy_tracking
from repro.busytime.stats import compute_stats
from repro.core import Instance
from repro.instances import random_interval_instance


class TestComputeStats:
    def test_empty(self):
        from repro.busytime import BusyTimeSchedule

        s = BusyTimeSchedule.from_bundle_jobs(Instance(tuple()), 2, [])
        stats = compute_stats(s)
        assert stats.machines == 0
        assert stats.utilization == 0.0

    def test_perfect_utilization(self):
        # g identical jobs on one machine: utilization exactly 1
        inst = Instance.from_intervals([(0, 2)] * 3)
        s = greedy_tracking(inst, 3)
        stats = compute_stats(s)
        assert stats.machines == 1
        assert stats.utilization == pytest.approx(1.0)
        assert stats.fragmentation == pytest.approx(1.0)

    def test_utilization_bounds(self, rng):
        for _ in range(10):
            inst = random_interval_instance(10, 16.0, rng=rng)
            g = int(rng.integers(1, 4))
            stats = compute_stats(greedy_tracking(inst, g))
            assert 0.0 < stats.utilization <= 1.0 + 1e-9

    def test_totals_match_schedule(self, interval_instance):
        s = greedy_tracking(interval_instance, 2)
        stats = compute_stats(s)
        assert stats.total_busy_time == pytest.approx(s.total_busy_time)
        assert stats.machines == s.num_machines

    def test_fragmentation_counts_blocks(self):
        # one machine with two disjoint jobs -> 2 busy blocks
        inst = Instance.from_intervals([(0, 1), (3, 4)])
        s = greedy_tracking(inst, 2)
        stats = compute_stats(s)
        assert stats.busy_blocks == 2
        assert stats.fragmentation == pytest.approx(2.0)

    def test_mean_max_consistency(self, rng):
        inst = random_interval_instance(12, 18.0, rng=rng)
        stats = compute_stats(greedy_tracking(inst, 2))
        assert stats.mean_machine_busy <= stats.max_machine_busy + 1e-9

    def test_rows_render(self, interval_instance):
        from repro.analysis import format_table

        stats = compute_stats(greedy_tracking(interval_instance, 2))
        table = format_table("stats", ["metric", "value"], stats.rows())
        assert "utilization" in table
