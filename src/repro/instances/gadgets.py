"""The paper's explicit constructions, parametric in ``g`` and ``eps``.

Every worked figure and tightness example in the paper is regenerated here:

======================  =====================================================
:func:`figure1`         the 7-job, ``g=3`` packing example (Figure 1)
:func:`figure3`         minimal-feasible-vs-OPT gadget, ratio → 3 (Figure 3)
:func:`lp_gap`          the Section-3.5 LP integrality-gap family, gap → 2
:func:`figure6`         GREEDYTRACKING pipeline gadget, ratio → 3 (Fig. 6/7)
:func:`figure8`         interval 2-approx tightness, ratio → 2 (Figure 8)
:func:`figure9`         DP demand-profile gadget, profile ratio → 2 (Fig. 9)
:func:`figure10`        flexible 4-approx tightness family (Figures 10–12)
======================  =====================================================

Each returns a :class:`Gadget` carrying the instance, the capacity, closed
forms of the quantities the paper derives, and (where the figure involves an
adversarial dynamic-program placement or an adversarial minimal solution)
the explicit witness.  The test-suite checks every closed form against the
library's own solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.jobs import Instance, Job

__all__ = [
    "Gadget",
    "figure1",
    "figure3",
    "lp_gap",
    "figure6",
    "figure8",
    "figure9",
    "figure10",
]


@dataclass(frozen=True)
class Gadget:
    """A paper construction plus its analytical facts.

    Attributes
    ----------
    name:
        Which figure/section this reproduces.
    instance, g:
        The constructed input.
    facts:
        Closed-form quantities claimed by the paper (e.g. ``opt``,
        ``adversarial_cost``) — every entry is asserted by a test.
    witness:
        Optional adversarial artifacts: start-time placements
        (``starts``), adversarial slot sets (``slots``) etc.
    """

    name: str
    instance: Instance
    g: int
    facts: dict[str, float] = field(default_factory=dict)
    witness: dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Figure 1: the introductory packing example
# ----------------------------------------------------------------------
def figure1() -> Gadget:
    """Seven interval jobs, ``g = 3``, optimally packed on two machines.

    Coordinates are a faithful reconstruction of the figure's structure (the
    paper draws the jobs without numeric axes): the peak raw demand is 5, so
    with ``g = 3`` at least two machines must be busy over the middle of the
    horizon; the optimal busy time is 8, achieved by the two bundles drawn in
    Figure 1(B).
    """
    jobs = [
        Job(0, 4, 4, id=1),
        Job(0, 2, 2, id=2),
        Job(2, 4, 2, id=3),
        Job(0, 3, 3, id=4),
        Job(1, 4, 3, id=5),
        Job(0, 2, 2, id=6),
        Job(2, 4, 2, id=7),
    ]
    return Gadget(
        name="figure1",
        instance=Instance(tuple(jobs)),
        g=3,
        facts={"opt_busy_time": 8.0, "min_machines": 2},
        witness={"bundles": [[1, 2, 3], [4, 5, 6, 7]]},
    )


# ----------------------------------------------------------------------
# Figure 3: minimal feasible solutions can cost (almost) 3 OPT
# ----------------------------------------------------------------------
def figure3(g: int) -> Gadget:
    """The Theorem-1 tightness gadget (requires ``g >= 3``).

    * two jobs of length ``g`` with windows ``[0, 2g)`` and ``[g, 3g)``;
    * ``g - 2`` rigid jobs of length ``g - 2`` with window ``[g+1, 2g-1)``;
    * ``g - 2`` unit jobs with window ``[g+1, 2g)`` and ``g - 2`` with
      window ``[g, 2g-1)``.

    OPT opens the ``g`` slots of ``[g, 2g)``; the adversarial minimal-style
    solution opens ``[1, g+1) ∪ [g+1, 2g-1) ∪ [2g-1, 3g-1)`` for a cost of
    ``3g - 2``.
    """
    if g < 3:
        raise ValueError("figure3 gadget needs g >= 3")
    jobs: list[Job] = [
        Job(0, 2 * g, g, id=0, label="long"),
        Job(g, 3 * g, g, id=1, label="long"),
    ]
    next_id = 2
    for _ in range(g - 2):
        jobs.append(Job(g + 1, 2 * g - 1, g - 2, id=next_id, label="rigid"))
        next_id += 1
    for _ in range(g - 2):
        jobs.append(Job(g + 1, 2 * g, 1, id=next_id, label="unitA"))
        next_id += 1
    for _ in range(g - 2):
        jobs.append(Job(g, 2 * g - 1, 1, id=next_id, label="unitB"))
        next_id += 1

    adversarial_slots = sorted(
        set(range(2, g + 2))            # long job 1 from [1, g+1)
        | set(range(g + 2, 2 * g))      # rigid + unit block [g+1, 2g-1)
        | set(range(2 * g, 3 * g))      # long job 2 from [2g-1, 3g-1)
    )
    return Gadget(
        name="figure3",
        instance=Instance(tuple(jobs)),
        g=g,
        facts={
            "opt_active_time": float(g),
            "adversarial_cost": float(3 * g - 2),
            "ratio_limit": 3.0,
        },
        witness={"adversarial_slots": adversarial_slots},
    )


# ----------------------------------------------------------------------
# Section 3.5: LP integrality gap
# ----------------------------------------------------------------------
def lp_gap(g: int) -> Gadget:
    """The integrality-gap family: ``g`` slot pairs, ``g+1`` unit jobs each.

    Integral OPT opens all ``2g`` slots; the fractional optimum opens each
    pair to ``1 + 1/g``, for LP value ``g + 1``.  The gap ``2g / (g+1)``
    tends to 2.
    """
    if g < 1:
        raise ValueError("lp_gap gadget needs g >= 1")
    jobs: list[Job] = []
    next_id = 0
    for pair in range(g):
        a = 2 * pair
        for _ in range(g + 1):
            jobs.append(Job(a, a + 2, 1, id=next_id))
            next_id += 1
    return Gadget(
        name="lp_gap",
        instance=Instance(tuple(jobs)),
        g=g,
        facts={
            "ip_opt": float(2 * g),
            "lp_opt": float(g + 1),
            "gap_limit": 2.0,
        },
    )


# ----------------------------------------------------------------------
# Figures 6/7: GREEDYTRACKING tightness for the flexible pipeline
# ----------------------------------------------------------------------
def figure6(g: int, eps: float = 0.1) -> Gadget:
    """The factor-3 family for GREEDYTRACKING after the DP conversion.

    ``g`` disjoint blocks, each holding ``g`` unit interval jobs overlapping
    (by ``eps``) another ``g`` unit interval jobs, plus ``2g`` flexible jobs
    of length ``1 - eps/2`` whose windows span all blocks.

    * optimal busy time: ``2g + 2 - eps``;
    * adversarial DP placement (Figure 7): the flexible jobs sit two per
      block, straddling the block's overlap region, driving GREEDYTRACKING
      toward ``(6 - o(eps)) g``.
    """
    if g < 1:
        raise ValueError("figure6 gadget needs g >= 1")
    if not 0 < eps < 0.5:
        raise ValueError("figure6 needs 0 < eps < 0.5")
    spacing = 3.0
    jobs: list[Job] = []
    next_id = 0
    for k in range(g):
        o = k * spacing
        for _ in range(g):
            jobs.append(Job(o, o + 1.0, 1.0, id=next_id, label=f"A{k}"))
            next_id += 1
        for _ in range(g):
            jobs.append(
                Job(o + 1.0 - eps, o + 2.0 - eps, 1.0, id=next_id, label=f"B{k}")
            )
            next_id += 1
    horizon = (g - 1) * spacing + 2.0
    flex_len = 1.0 - eps / 2.0
    flex_ids = []
    for _ in range(2 * g):
        jobs.append(Job(0.0, horizon, flex_len, id=next_id, label="flex"))
        flex_ids.append(next_id)
        next_id += 1

    # Adversarial DP placement: two flexible jobs per block straddling the
    # overlap region [o + 1 - eps, o + 1).
    adversarial_starts = {}
    instance = Instance(tuple(jobs))
    for j in instance.jobs:
        if j.label != "flex":
            adversarial_starts[j.id] = j.release
    for idx, fid in enumerate(flex_ids):
        block = idx // 2
        adversarial_starts[fid] = block * spacing + 0.5

    # The paper's optimal packing: A-sets and B-sets each on one machine,
    # flexible jobs stacked at time 0 on two machines.
    optimal_starts = dict(adversarial_starts)
    for fid in flex_ids:
        optimal_starts[fid] = 0.0

    return Gadget(
        name="figure6",
        instance=instance,
        g=g,
        facts={
            "opt_busy_time": 2.0 * g + 2.0 - eps,
            "adversarial_limit": 6.0 * g,
            "ratio_limit": 3.0,
        },
        witness={
            "adversarial_starts": adversarial_starts,
            "optimal_starts": optimal_starts,
            "flex_ids": flex_ids,
        },
    )


# ----------------------------------------------------------------------
# Figure 8: tightness of the interval 2-approximations
# ----------------------------------------------------------------------
def figure8(eps: float = 0.2, eps_prime: float = 0.1) -> Gadget:
    """The ``g = 2`` family where KR/AB-style runs can pay ``2 + eps``.

    Jobs: two unit intervals ``[0, 1)``; one job of length ``eps`` at
    ``[1, 1+eps)``; one of length ``eps'`` at ``[1, 1+eps')``; one of length
    ``eps - eps'`` at ``[1+eps', 1+eps)``.  The optimum is ``1 + eps``; the
    adversarial bundling (splitting the unit jobs) pays ``2 + eps``.
    """
    if not 0 < eps_prime < eps < 1:
        raise ValueError("figure8 needs 0 < eps' < eps < 1")
    jobs = [
        Job(0.0, 1.0, 1.0, id=0),
        Job(0.0, 1.0, 1.0, id=1),
        Job(1.0, 1.0 + eps, eps, id=2),
        Job(1.0, 1.0 + eps_prime, eps_prime, id=3),
        Job(1.0 + eps_prime, 1.0 + eps, eps - eps_prime, id=4),
    ]
    return Gadget(
        name="figure8",
        instance=Instance(tuple(jobs)),
        g=2,
        facts={
            "opt_busy_time": 1.0 + eps,
            "adversarial_cost": 2.0 + eps,
            "ratio_limit": 2.0,
        },
        witness={"adversarial_bundles": [[0, 2], [1, 3, 4]]},
    )


# ----------------------------------------------------------------------
# Figure 9: the DP's demand profile can double the optimal profile
# ----------------------------------------------------------------------
def figure9(g: int, eps: float = 0.01) -> Gadget:
    """Lemma-7 tightness: DP placement vs optimal placement profiles.

    One unit interval job; ``g - 1`` disjoint sets of ``g`` identical
    interval jobs (set ``i`` has length ``1 + i*eps``); ``g - 1`` flexible
    jobs, the ``i``-th of length ``1 + i*eps`` with a window spanning sets
    ``0..i``.

    * optimal placement: flexible jobs start at 0 → profile
      ``g + O(eps)``;
    * adversarial DP placement: flexible job ``i`` aligned with set ``i`` →
      profile ``2g - 1 + O(eps)``.  Ratio → 2.
    """
    if g < 2:
        raise ValueError("figure9 gadget needs g >= 2")
    if not 0 < eps < 0.2:
        raise ValueError("figure9 needs 0 < eps < 0.2")
    spacing = 4.0
    jobs: list[Job] = [Job(0.0, 1.0, 1.0, id=0, label="unit")]
    next_id = 1
    set_offsets = {}
    for i in range(1, g):
        o = i * spacing
        set_offsets[i] = o
        for _ in range(g):
            jobs.append(
                Job(o, o + 1.0 + i * eps, 1.0 + i * eps, id=next_id, label=f"set{i}")
            )
            next_id += 1
    flex_ids = {}
    for i in range(1, g):
        end = set_offsets[i] + 1.0 + i * eps
        jobs.append(
            Job(0.0, end, 1.0 + i * eps, id=next_id, label=f"flex{i}")
        )
        flex_ids[i] = next_id
        next_id += 1

    instance = Instance(tuple(jobs))
    adversarial_starts = {
        j.id: j.release for j in instance.jobs if not j.label.startswith("flex")
    }
    optimal_starts = dict(adversarial_starts)
    for i in range(1, g):
        adversarial_starts[flex_ids[i]] = set_offsets[i]
        optimal_starts[flex_ids[i]] = 0.0

    eps_terms = sum(i * eps for i in range(1, g))
    return Gadget(
        name="figure9",
        instance=instance,
        g=g,
        facts={
            # profile of the optimal placement:
            #   [0, 1 + (g-1)eps) at demand <= g  +  each set at demand g
            "optimal_profile": (1.0 + (g - 1) * eps)
            + sum(1.0 + i * eps for i in range(1, g)),
            # profile of the DP placement: unit job alone + each set at
            # demand g+1 -> two machines
            "dp_profile": 1.0 + 2.0 * sum(1.0 + i * eps for i in range(1, g)),
            "ratio_limit": 2.0,
        },
        witness={
            "adversarial_starts": adversarial_starts,
            "optimal_starts": optimal_starts,
            "flex_ids": flex_ids,
        },
    )


# ----------------------------------------------------------------------
# Figures 10–12: the flexible 4-approximation tightness family
# ----------------------------------------------------------------------
def figure10(g: int, eps: float = 0.05, eps_prime: float = 0.02) -> Gadget:
    """Theorem-10 family: extending the interval 2-approx to flexible jobs.

    One unit interval job, then ``g - 1`` copies of the Figure-10 gadget
    (``g`` unit intervals + a Figure-8-like cluster of ``2g - 2`` jobs of
    length ``eps``, two of length ``eps'`` and two of length ``eps - eps'``),
    plus ``g - 1`` unit flexible jobs spanning everything.

    * optimal busy time: ``g + O(eps)`` — flexible jobs stack on the first
      unit job;
    * adversarial DP placement puts flexible job ``k`` on gadget ``k``; the
      paper exhibits runs of the extended 2-approximation paying
      ``1 + 4(g-1) + O(eps)``.  Ratio → 4.
    """
    if g < 2:
        raise ValueError("figure10 gadget needs g >= 2")
    if not 0 < eps_prime < eps < 0.5:
        raise ValueError("figure10 needs 0 < eps' < eps < 0.5")
    spacing = 3.0
    jobs: list[Job] = [Job(0.0, 1.0, 1.0, id=0, label="unit0")]
    next_id = 1
    gadget_offsets = {}
    for k in range(1, g):
        o = k * spacing
        gadget_offsets[k] = o
        for _ in range(g):
            jobs.append(Job(o, o + 1.0, 1.0, id=next_id, label=f"block{k}"))
            next_id += 1
        for _ in range(2 * g - 2):
            jobs.append(
                Job(o + 1.0, o + 1.0 + eps, eps, id=next_id, label=f"eps{k}")
            )
            next_id += 1
        for _ in range(2):
            jobs.append(
                Job(
                    o + 1.0,
                    o + 1.0 + eps_prime,
                    eps_prime,
                    id=next_id,
                    label=f"epsp{k}",
                )
            )
            next_id += 1
        for _ in range(2):
            jobs.append(
                Job(
                    o + 1.0 + eps_prime,
                    o + 1.0 + eps,
                    eps - eps_prime,
                    id=next_id,
                    label=f"epsd{k}",
                )
            )
            next_id += 1
    horizon = (g - 1) * spacing + 2.0
    flex_ids = {}
    for k in range(1, g):
        jobs.append(Job(0.0, horizon, 1.0, id=next_id, label=f"flex{k}"))
        flex_ids[k] = next_id
        next_id += 1

    instance = Instance(tuple(jobs))
    adversarial_starts = {
        j.id: j.release for j in instance.jobs if not j.label.startswith("flex")
    }
    optimal_starts = dict(adversarial_starts)
    for k in range(1, g):
        adversarial_starts[flex_ids[k]] = gadget_offsets[k]
        optimal_starts[flex_ids[k]] = 0.0

    return Gadget(
        name="figure10",
        instance=instance,
        g=g,
        facts={
            "opt_busy_time": 1.0 + (g - 1) * (1.0 + 2.0 * eps),
            "adversarial_cost": 1.0 + 4.0 * (g - 1),
            "ratio_limit": 4.0,
        },
        witness={
            "adversarial_starts": adversarial_starts,
            "optimal_starts": optimal_starts,
            "flex_ids": flex_ids,
        },
    )
