"""The demand profile (Definitions 11–13) and dummy-job padding.

For an interval-job instance, the *raw demand* ``|A(t)|`` counts jobs whose
interval covers ``t``; the *demand* is ``D(t) = ceil(|A(t)| / g)``.  Demand is
constant on each interesting interval, so the whole profile is a list of
``(segment, raw_demand)`` pairs — at most ``2n`` of them.

The profile cost ``sum_i D(I_i) * ℓ(I_i)`` lower-bounds the optimal busy time
(Observation 4) and is the quantity the 2-approximation algorithms charge.
Those algorithms additionally assume the raw demand is a multiple of ``g``
everywhere; :func:`pad_to_multiple_of_g` adds dummy jobs spanning individual
segments to establish that property *without changing the profile cost*
(Appendix A.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.intervals import interesting_intervals
from ..core.jobs import Instance, Job
from ..core.validation import require_capacity, require_interval_jobs

__all__ = ["DemandProfile", "compute_demand_profile", "pad_to_multiple_of_g"]

#: Label attached to padding jobs so downstream code can strip them.
DUMMY_LABEL = "__dummy__"


@dataclass(frozen=True)
class DemandProfile:
    """The demand profile of an interval instance for a given capacity.

    Attributes
    ----------
    segments:
        Interesting intervals ``(a, b)`` with positive raw demand, sorted.
    raw:
        ``|A(I_i)|`` per segment.
    g:
        Capacity used to convert raw demand to machine demand.
    """

    segments: tuple[tuple[float, float], ...]
    raw: tuple[int, ...]
    g: int

    def demand(self, i: int) -> int:
        """``D(I_i) = ceil(raw_i / g)``."""
        return -(-self.raw[i] // self.g)

    @property
    def demands(self) -> tuple[int, ...]:
        """Machine demand per segment."""
        return tuple(self.demand(i) for i in range(len(self.segments)))

    @property
    def cost(self) -> float:
        """``sum_i D(I_i) * ℓ(I_i)`` — Observation 4's lower bound."""
        return sum(
            self.demand(i) * (b - a)
            for i, (a, b) in enumerate(self.segments)
        )

    @property
    def max_raw(self) -> int:
        """Peak raw demand over the horizon."""
        return max(self.raw, default=0)

    @property
    def max_demand(self) -> int:
        """Peak machine demand ``D_max``."""
        return max(self.demands, default=0)

    @property
    def span(self) -> float:
        """Total length of demanded segments — equals ``Sp(J)``."""
        return sum(b - a for a, b in self.segments)

    def level_region_span(self, level: int) -> float:
        """Span of ``{t : D(t) >= level}`` (used by the 2-approx charging)."""
        return sum(
            (b - a)
            for i, (a, b) in enumerate(self.segments)
            if self.demand(i) >= level
        )


def compute_demand_profile(instance: Instance, g: int) -> DemandProfile:
    """Compute the demand profile of an interval instance (Definition 13)."""
    require_interval_jobs(instance, "demand profile")
    require_capacity(g)
    segments = interesting_intervals(instance)
    raw = tuple(
        instance.raw_demand_at(0.5 * (a + b)) for a, b in segments
    )
    return DemandProfile(segments=tuple(segments), raw=raw, g=g)


def pad_to_multiple_of_g(
    instance: Instance, g: int
) -> tuple[Instance, list[int]]:
    """Add dummy interval jobs so every segment's raw demand is ``g * D(I)``.

    Returns the padded instance together with the ids of the dummy jobs.
    Per Appendix A.1, if ``c*g < |A(I)| <= (c+1)*g`` then adding
    ``(c+1)*g - |A(I)|`` jobs spanning ``I`` leaves the demand profile (and
    hence the lower bound) unchanged.
    """
    require_interval_jobs(instance, "padding")
    require_capacity(g)
    profile = compute_demand_profile(instance, g)
    next_id = 1 + max((j.id for j in instance.jobs), default=-1)
    dummies: list[Job] = []
    for (a, b), raw in zip(profile.segments, profile.raw):
        target = -(-raw // g) * g
        for _ in range(target - raw):
            dummies.append(
                Job(
                    release=a,
                    deadline=b,
                    length=b - a,
                    id=next_id,
                    label=DUMMY_LABEL,
                )
            )
            next_id += 1
    padded = Instance(instance.jobs + tuple(dummies))
    return padded, [d.id for d in dummies]
