"""E1 — Figure 1: the introductory packing example.

Paper claim: the seven interval jobs with g = 3 pack optimally onto two
machines; our reconstruction has optimal busy time 8.  All four interval
algorithms are run on the instance; the exact MILP confirms the optimum and
the witness bundles from the figure.
"""

import pytest

from repro.busytime import (
    chain_peeling_two_approx,
    exact_busy_time_interval,
    first_fit,
    greedy_tracking,
    kumar_rudra,
)
from repro.instances import figure1

ALGORITHMS = {
    "first_fit": first_fit,
    "greedy_tracking": greedy_tracking,
    "chain_peeling": chain_peeling_two_approx,
    "kumar_rudra": kumar_rudra,
}


def test_fig1_exact_matches_figure(emit):
    gad = figure1()
    opt = exact_busy_time_interval(gad.instance, gad.g)
    rows = [["exact MILP", opt.total_busy_time, opt.num_machines]]
    for name, fn in ALGORITHMS.items():
        s = fn(gad.instance, gad.g)
        s.verify()
        rows.append([name, s.total_busy_time, s.num_machines])
        assert s.total_busy_time >= opt.total_busy_time - 1e-9
    emit(
        "E1 / Figure 1 — 7 interval jobs, g=3 (paper: OPT on 2 machines)",
        ["algorithm", "busy time", "machines"],
        rows,
    )
    assert opt.total_busy_time == pytest.approx(gad.facts["opt_busy_time"])
    assert opt.num_machines >= gad.facts["min_machines"]


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_fig1_algorithm_runtime(benchmark, name):
    gad = figure1()
    fn = ALGORITHMS[name]
    schedule = benchmark(fn, gad.instance, gad.g)
    assert schedule.is_valid()
