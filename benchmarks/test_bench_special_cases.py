"""E21 (extension) — structured instance classes (footnote 1 regimes).

Measured behaviour of the special-case algorithms against the general ones
and the exact optimum: proper greedy and clique greedy vs their 2x bounds,
and the proper-clique DP recovering the optimum exactly.
"""

import numpy as np
import pytest

from repro.busytime import (
    clique_greedy,
    exact_busy_time_interval,
    greedy_tracking,
    proper_clique_exact,
    proper_greedy,
)
from repro.core import Instance, Job
from repro.instances import random_clique_instance, random_proper_instance


def make_proper_clique(rng, n):
    lefts = np.sort(rng.uniform(0, 4, n))
    rights = np.sort(rng.uniform(5, 9, n))
    return Instance(
        tuple(
            Job(float(a) + i * 1e-6, float(b) + i * 1e-6,
                float(b) - float(a), id=i)
            for i, (a, b) in enumerate(zip(lefts, rights))
        )
    )


def test_structured_classes(rng, emit):
    rows = []
    for g in (2, 3):
        worst_p = worst_c = 0.0
        dp_exact = 0
        for _ in range(8):
            proper = random_proper_instance(8, 14.0, rng=rng)
            opt_p = exact_busy_time_interval(proper, g).total_busy_time
            worst_p = max(
                worst_p, proper_greedy(proper, g).total_busy_time / opt_p
            )

            clique = random_clique_instance(8, 14.0, rng=rng)
            opt_c = exact_busy_time_interval(clique, g).total_busy_time
            worst_c = max(
                worst_c, clique_greedy(clique, g).total_busy_time / opt_c
            )

            pc = make_proper_clique(rng, int(rng.integers(3, 8)))
            dp = proper_clique_exact(pc, g).total_busy_time
            milp = exact_busy_time_interval(pc, g).total_busy_time
            if abs(dp - milp) < 1e-6:
                dp_exact += 1
        rows.append([g, worst_p, worst_c, f"{dp_exact}/8"])
        assert worst_p <= 2.0 + 1e-9
        assert worst_c <= 2.0 + 1e-9
        assert dp_exact == 8
    emit(
        "E21 — structured classes: ratios vs exact OPT "
        "(bounds: proper 2x, clique 2x, proper-clique DP exact)",
        ["g", "proper greedy (max)", "clique greedy (max)",
         "DP == MILP"],
        rows,
    )


def test_special_vs_general(rng, emit):
    """Do the specialized algorithms beat GREEDYTRACKING on their classes?"""
    rows = []
    for label, make, special in [
        ("proper", lambda: random_proper_instance(10, 16.0, rng=rng),
         proper_greedy),
        ("clique", lambda: random_clique_instance(10, 16.0, rng=rng),
         clique_greedy),
    ]:
        wins = losses = ties = 0
        for _ in range(10):
            inst = make()
            s = special(inst, 3).total_busy_time
            gt = greedy_tracking(inst, 3).total_busy_time
            if s < gt - 1e-9:
                wins += 1
            elif s > gt + 1e-9:
                losses += 1
            else:
                ties += 1
        rows.append([label, wins, losses, ties])
    emit(
        "E21 — specialized vs GREEDYTRACKING on structured classes",
        ["class", "special wins", "GT wins", "ties"],
        rows,
    )


@pytest.mark.parametrize("n", [10, 30])
def test_proper_clique_dp_runtime(benchmark, rng, n):
    inst = make_proper_clique(rng, n)
    s = benchmark(proper_clique_exact, inst, 3)
    assert s.total_busy_time > 0
