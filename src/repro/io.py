"""Instance and schedule serialization (JSON and CSV).

The CLI and downstream users need to move instances in and out of the
library.  Two formats:

* **JSON** — lossless: jobs with ids and labels, plus optional metadata;
* **CSV** — three or four columns (``release,deadline,length[,id]``) with an
  optional header row, for spreadsheet-sourced traces.
"""

from __future__ import annotations

import csv
import io as _io
import json
from pathlib import Path
from typing import Any, Iterable

from .core.jobs import Instance, Job

__all__ = [
    "FORMAT_MARKER",
    "instance_to_payload",
    "instance_from_payload",
    "instance_to_json",
    "instance_from_json",
    "save_instance",
    "load_instance",
    "load_instances",
    "instance_to_csv",
    "instance_from_csv",
    "instances_to_jsonl",
    "instances_from_jsonl",
]

#: Format marker stamped into every serialized instance payload.
FORMAT_MARKER = "repro-instance-v1"


def instance_to_payload(instance: Instance, **metadata: Any) -> dict[str, Any]:
    """An instance (and optional metadata) as a JSON-ready dict.

    The dict form is the wire format shared by files (:func:`
    instance_to_json`), JSONL workloads and the HTTP serving layer.
    """
    return {
        "format": FORMAT_MARKER,
        "metadata": metadata,
        "jobs": [
            {
                "id": j.id,
                "release": j.release,
                "deadline": j.deadline,
                "length": j.length,
                **({"label": j.label} if j.label else {}),
            }
            for j in instance.jobs
        ],
    }


def instance_from_payload(payload: Any) -> Instance:
    """Inverse of :func:`instance_to_payload`, with lenient hand-written input.

    The ``format`` marker is required in files but optional in payloads
    assembled by hand (e.g. a curl request body); job ``id`` defaults to
    the job's position.  A present-but-wrong marker is still an error.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"instance payload must be an object, got {type(payload).__name__}"
        )
    if "format" in payload and payload["format"] != FORMAT_MARKER:
        raise ValueError(
            f"unrecognized format marker {payload.get('format')!r}"
        )
    jobs_field = payload.get("jobs")
    if not isinstance(jobs_field, list):
        raise ValueError("instance payload needs a 'jobs' array")
    jobs = []
    for pos, rec in enumerate(jobs_field):
        if not isinstance(rec, dict):
            raise ValueError(f"job {pos} must be an object, got {rec!r}")
        for field in ("release", "deadline", "length"):
            if field not in rec:
                raise ValueError(
                    f"job {pos} is missing required field {field!r} "
                    "(need release, deadline, length)"
                )
            value = rec[field]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"job {pos} field {field!r} must be a number, "
                    f"got {value!r}"
                )
        jid = rec.get("id", pos)
        if isinstance(jid, bool) or not isinstance(jid, int):
            raise ValueError(
                f"job {pos} field 'id' must be an integer, got {jid!r}"
            )
        jobs.append(
            Job(
                release=rec["release"],
                deadline=rec["deadline"],
                length=rec["length"],
                id=jid,
                label=str(rec.get("label", "")),
            )
        )
    return Instance(tuple(jobs))


def instance_to_json(instance: Instance, **metadata: Any) -> str:
    """Serialize an instance (and optional metadata) to a JSON string."""
    return json.dumps(instance_to_payload(instance, **metadata), indent=2)


def instance_from_json(text: str) -> Instance:
    """Parse an instance from :func:`instance_to_json` output."""
    payload = json.loads(text)
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_MARKER:
        marker = payload.get("format") if isinstance(payload, dict) else None
        raise ValueError(f"unrecognized format marker {marker!r}")
    return instance_from_payload(payload)


def save_instance(instance: Instance, path: str | Path, **metadata: Any) -> None:
    """Write an instance to a ``.json`` or ``.csv`` file (by extension)."""
    p = Path(path)
    if p.suffix == ".json":
        p.write_text(instance_to_json(instance, **metadata))
    elif p.suffix == ".csv":
        p.write_text(instance_to_csv(instance))
    else:
        raise ValueError(f"unsupported extension {p.suffix!r} (json/csv)")


def load_instance(path: str | Path) -> Instance:
    """Read an instance from a ``.json`` or ``.csv`` file (by extension)."""
    p = Path(path)
    if p.suffix == ".json":
        return instance_from_json(p.read_text())
    if p.suffix == ".csv":
        return instance_from_csv(p.read_text())
    raise ValueError(f"unsupported extension {p.suffix!r} (json/csv)")


def instance_to_csv(instance: Instance) -> str:
    """Serialize to CSV with a header row."""
    buf = _io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["release", "deadline", "length", "id"])
    for j in instance.jobs:
        writer.writerow([j.release, j.deadline, j.length, j.id])
    return buf.getvalue()


def instance_from_csv(text: str) -> Instance:
    """Parse CSV rows ``release,deadline,length[,id]`` (header optional)."""
    jobs: list[Job] = []
    next_id = 0
    for row_num, row in enumerate(csv.reader(_io.StringIO(text))):
        if not row or not "".join(row).strip():
            continue
        try:
            values = [float(cell) for cell in row[:4]]
        except ValueError:
            if row_num == 0:
                continue  # header
            raise ValueError(f"malformed CSV row {row_num + 1}: {row}")
        if len(values) < 3:
            raise ValueError(f"CSV row {row_num + 1} needs >= 3 columns")
        jid = int(values[3]) if len(values) >= 4 else next_id
        jobs.append(
            Job(release=values[0], deadline=values[1], length=values[2], id=jid)
        )
        next_id = max(next_id, jid) + 1
    return Instance(tuple(jobs))


def instances_to_jsonl(instances: Iterable[Instance]) -> str:
    """Serialize many instances, one compact JSON object per line.

    The batch engine's natural input format: a single ``.jsonl`` file
    can carry a whole workload.
    """
    lines = []
    for instance in instances:
        payload = json.loads(instance_to_json(instance))
        lines.append(json.dumps(payload, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def instances_from_jsonl(text: str) -> list[Instance]:
    """Parse the output of :func:`instances_to_jsonl`."""
    return [
        instance_from_json(line)
        for line in text.splitlines()
        if line.strip()
    ]


def load_instances(path: str | Path) -> list[Instance]:
    """Read one or many instances from a file.

    ``.jsonl`` files yield every instance they contain; ``.json`` and
    ``.csv`` files yield a single-element list.
    """
    p = Path(path)
    if p.suffix == ".jsonl":
        return instances_from_jsonl(p.read_text())
    return [load_instance(p)]
