"""Tests for the experiment registry (repro.analysis.experiments)."""

import pytest

from repro.analysis import EXPERIMENTS, run_all, run_experiment


class TestRegistry:
    def test_keys_present(self):
        assert {"E2", "E4", "E7", "E8", "E9", "E11"} <= set(EXPERIMENTS)

    def test_each_has_title_and_runner(self):
        for exp in EXPERIMENTS.values():
            assert exp.title
            assert callable(exp.runner)

    @pytest.mark.parametrize("key", sorted(EXPERIMENTS))
    def test_each_runs_and_formats(self, key):
        out = run_experiment(key)
        assert key in out
        assert "\n" in out  # a table, not a one-liner

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_run_all_concatenates(self):
        out = run_all()
        for key in EXPERIMENTS:
            assert key in out


class TestCliIntegration:
    def test_experiments_command(self, capsys):
        from repro.cli import main

        assert main(["experiments", "E4"]) == 0
        out = capsys.readouterr().out
        assert "integrality gap" in out

    def test_experiments_all(self, capsys):
        from repro.cli import main

        assert main(["experiments", "E2", "E9"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out and "E9" in out
