"""`repro.serve` — dependency-free HTTP/JSONL serving over the batch engine.

* :mod:`~repro.serve.server` — the :class:`ThreadingHTTPServer` front
  end (``GET /algos``, ``GET /healthz``, ``POST /solve``,
  ``POST /batch``) over one shared runner + result cache.
* :mod:`~repro.serve.client` — a urllib client speaking the same wire
  format, for sweeps that target a remote server.

Start a server with ``repro serve`` or :func:`create_server`.
"""

from .client import ServeClient, ServeClientError, task_request
from .server import (
    DEFAULT_PORT,
    ReproHTTPServer,
    RequestError,
    ServeApp,
    create_server,
    parse_task_request,
)

__all__ = [
    "DEFAULT_PORT",
    "ReproHTTPServer",
    "RequestError",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "create_server",
    "parse_task_request",
    "task_request",
]
