"""Preemptive busy time: the exact greedy (Theorem 6) and 2-approx (Theorem 7).

In the preemptive variant a job may be split into pieces — processed on any
machines at any times within its window — subject to at most one machine
working on it at each instant and at most ``g`` jobs per machine.

* **Theorem 6** (``g`` unbounded): the greedy that repeatedly opens the
  interval ``[d_1 - l_max, d_1)`` — where ``d_1`` is the earliest remaining
  deadline and ``l_max`` the longest remaining length among deadline-``d_1``
  jobs — schedules every window-intersecting job as much as possible there,
  contracts the opened interval out of the timeline and recurses, is *exact*.
  We implement the contraction implicitly: the "opened set" ``O`` grows as a
  union of original-time intervals and all measure computations exclude it.

* **Theorem 7** (bounded ``g``): run the unbounded greedy, chop its busy
  period into interesting intervals, and within each interval pack the
  active jobs onto ``ceil(count / g)`` machines, at most one of which is
  non-full.  Busy time is at most ``OPT_inf + ℓ(J)/g <= 2 OPT``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.intervals import merge_intervals, span, subtract
from ..core.jobs import TIME_EPS, Instance, Job
from ..core.validation import require_capacity

__all__ = [
    "PreemptivePiece",
    "PreemptiveSchedule",
    "greedy_unbounded_preemptive",
    "preemptive_bounded",
]


@dataclass(frozen=True)
class PreemptivePiece:
    """One contiguous piece of a job's processing."""

    job_id: int
    machine: int
    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start

    @property
    def interval(self) -> tuple[float, float]:
        return (self.start, self.end)


@dataclass(frozen=True)
class PreemptiveSchedule:
    """A preemptive busy-time solution as a set of pieces."""

    instance: Instance
    g: int
    pieces: tuple[PreemptivePiece, ...]

    @property
    def machines(self) -> list[int]:
        """Machine ids in use."""
        return sorted({p.machine for p in self.pieces})

    def busy_intervals_of(self, machine: int) -> list[tuple[float, float]]:
        """Busy periods of one machine."""
        return merge_intervals(
            p.interval for p in self.pieces if p.machine == machine
        )

    @property
    def total_busy_time(self) -> float:
        """Cumulative busy time over all machines."""
        return sum(
            span(p.interval for p in self.pieces if p.machine == m)
            for m in self.machines
        )

    def verify(self) -> None:
        """Check the preemptive model constraints (raises ``AssertionError``).

        * each job's pieces lie inside its window and total ``p_j``;
        * no two pieces of the same job overlap in time (single-processor
          jobs, even across machines);
        * at most ``g`` jobs run on a machine at any instant.
        """
        by_job: dict[int, list[PreemptivePiece]] = {}
        for p in self.pieces:
            if p.length <= TIME_EPS:
                raise AssertionError(f"degenerate piece for job {p.job_id}")
            by_job.setdefault(p.job_id, []).append(p)
        for job in self.instance.jobs:
            pieces = by_job.get(job.id, [])
            total = sum(p.length for p in pieces)
            if abs(total - job.length) > 1e-6:
                raise AssertionError(
                    f"job {job.id}: pieces total {total}, need {job.length}"
                )
            for p in pieces:
                if p.start < job.release - TIME_EPS or p.end > job.deadline + TIME_EPS:
                    raise AssertionError(
                        f"job {job.id}: piece [{p.start}, {p.end}) outside "
                        f"window [{job.release}, {job.deadline})"
                    )
            spans = sorted(p.interval for p in pieces)
            for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
                if a2 < b1 - TIME_EPS:
                    raise AssertionError(
                        f"job {job.id}: two pieces overlap in time"
                    )
        for m in self.machines:
            events: list[tuple[float, int]] = []
            for p in self.pieces:
                if p.machine == m:
                    events.append((p.start, 1))
                    events.append((p.end, -1))
            events.sort(key=lambda e: (e[0], e[1]))
            depth = 0
            for _, delta in events:
                depth += delta
                if depth > self.g:
                    raise AssertionError(
                        f"machine {m} runs more than g={self.g} jobs at once"
                    )

    def is_valid(self) -> bool:
        """Boolean wrapper around :meth:`verify`."""
        try:
            self.verify()
        except AssertionError:
            return False
        return True


# ----------------------------------------------------------------------
# Theorem 6: exact greedy for unbounded g
# ----------------------------------------------------------------------
def greedy_unbounded_preemptive(instance: Instance) -> PreemptiveSchedule:
    """Exact preemptive busy time for ``g = inf`` (Theorem 6).

    All pieces land on machine 0 (capacity is treated as unlimited by using
    ``g = n``); the optimal busy time is the measure of the opened set.
    """
    n = instance.n
    if n == 0:
        return PreemptiveSchedule(instance, 1, tuple())

    remaining = {j.id: j.length for j in instance.jobs}
    opened: list[tuple[float, float]] = []  # disjoint, kept merged
    pieces: list[PreemptivePiece] = []

    def available(window: tuple[float, float]) -> list[tuple[float, float]]:
        """Parts of ``window`` not yet opened."""
        return subtract(window, opened)

    while any(rem > TIME_EPS for rem in remaining.values()):
        pending = [j for j in instance.jobs if remaining[j.id] > TIME_EPS]
        d1 = min(j.deadline for j in pending)
        front = [j for j in pending if abs(j.deadline - d1) <= TIME_EPS]
        l_max = max(remaining[j.id] for j in front)

        # W = the rightmost l_max units of unopened measure before d1.
        unopened = subtract((min(j.release for j in pending), d1), opened)
        w: list[tuple[float, float]] = []
        need = l_max
        for a, b in reversed(unopened):
            if need <= TIME_EPS:
                break
            take = min(need, b - a)
            w.append((b - take, b))
            need -= take
        if need > TIME_EPS:  # pragma: no cover - excluded by feasibility
            raise RuntimeError(
                "insufficient unopened measure before the earliest deadline"
            )
        w.sort()

        # schedule every pending job as much as possible inside W ∩ window
        for job in pending:
            rem = remaining[job.id]
            for a, b in w:
                if rem <= TIME_EPS:
                    break
                lo = max(a, job.release)
                hi = min(b, job.deadline)
                if hi - lo <= TIME_EPS:
                    continue
                take = min(rem, hi - lo)
                pieces.append(
                    PreemptivePiece(
                        job_id=job.id, machine=0, start=lo, end=lo + take
                    )
                )
                rem -= take
            remaining[job.id] = rem

        opened = merge_intervals(opened + w)

    return PreemptiveSchedule(instance=instance, g=n, pieces=tuple(pieces))


# ----------------------------------------------------------------------
# Theorem 7: 2-approximation for bounded g
# ----------------------------------------------------------------------
def preemptive_bounded(instance: Instance, g: int) -> PreemptiveSchedule:
    """Preemptive busy time with bounded ``g`` — at most twice optimal.

    Runs the Theorem-6 greedy, then redistributes: within each interesting
    interval of the unbounded solution the active jobs are packed onto
    machines greedily (group ``q`` of the interval goes to machine ``q``),
    so at most one machine per interval is non-full.
    """
    require_capacity(g)
    s_inf = greedy_unbounded_preemptive(instance)
    if not s_inf.pieces:
        return PreemptiveSchedule(instance, g, tuple())

    points = sorted(
        {p.start for p in s_inf.pieces} | {p.end for p in s_inf.pieces}
    )
    pieces: list[PreemptivePiece] = []
    for a, b in zip(points, points[1:]):
        if b - a <= TIME_EPS:
            continue
        active = sorted(
            {
                p.job_id
                for p in s_inf.pieces
                if p.start <= a + TIME_EPS and p.end >= b - TIME_EPS
            }
        )
        if not active:
            continue
        for q in range(0, len(active), g):
            for jid in active[q : q + g]:
                pieces.append(
                    PreemptivePiece(
                        job_id=jid, machine=q // g, start=a, end=b
                    )
                )

    # merge back-to-back pieces of the same job on the same machine so the
    # schedule object stays small
    merged: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for p in pieces:
        merged.setdefault((p.job_id, p.machine), []).append(p.interval)
    out: list[PreemptivePiece] = []
    for (jid, m), ivs in merged.items():
        for a, b in merge_intervals(ivs):
            out.append(PreemptivePiece(job_id=jid, machine=m, start=a, end=b))
    return PreemptiveSchedule(instance=instance, g=g, pieces=tuple(out))
