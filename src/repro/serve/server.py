"""Stdlib-only HTTP/JSONL serving front end over the batch engine.

The ROADMAP's async-serving item, made concrete: a
:class:`~http.server.ThreadingHTTPServer` exposing the solver registry
over three endpoints, backed by one shared
:class:`~repro.engine.runner.BatchRunner` and
:class:`~repro.engine.cache.ResultCache` so repeated and duplicate
requests are deduped server-side.

Endpoints
---------
``GET /algos``
    Registry listing: every solver spec plus every LP/MILP backend with
    its capabilities and availability (the same rows ``repro algos``
    prints).
``GET /healthz``
    Liveness plus cache statistics.
``GET /metrics``
    The process metrics registry in Prometheus text-exposition format
    (task latency and queue-wait histograms, cache counters, warm-start
    gauges, in-flight stream gauge — see the README's metrics catalog).
``GET /stats``
    The same registry digested to JSON for humans and dashboards that
    do not speak Prometheus: queue depth, in-flight streams, per-backend
    latency quantiles, cache and HiGHS re-solve statistics.
``POST /solve``
    One task as a JSON object (``instance``/``problem``/``algorithm``/
    ``g``/``params``/``backend``/``timeout``/``meta``); answers the
    :class:`~repro.engine.workers.TaskResult` record as JSON.
``POST /batch``
    A JSONL stream of task objects (one per line); answers chunked
    JSONL, one result record per line **in task order**.  Results are
    streamed incrementally through
    :meth:`~repro.engine.runner.BatchRunner.run_stream`: each line is
    written the moment its result (and every earlier one) is done, so
    one slow task never holds back finished predecessors.

Validation goes through the same error-menu helpers the CLI uses
(:func:`repro.engine.registry.backend_task_params`,
``REGISTRY.get``), so a typo'd algorithm or backend name answers 400
with the full menu instead of a bare error.

Everything here is standard library only — no framework to install on
the serving host.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator, Sequence
from urllib.parse import urlsplit

from ..engine import BatchRunner, ResultCache, backend_task_params, make_task
from ..engine.registry import PROBLEMS, REGISTRY
from ..engine.workers import Task, TaskResult
from ..io import instance_from_payload
from ..obs import REGISTRY as OBS
from ..obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE, render_prometheus
from ..solvers import backend_names, backend_status, resolve_backend
from ..solvers.registry import get_backend

__all__ = [
    "DEFAULT_PORT",
    "RequestError",
    "ServeApp",
    "ReproHTTPServer",
    "create_server",
    "parse_task_request",
]

#: Default TCP port for ``repro serve`` (unregistered, above ephemeral floor).
DEFAULT_PORT = 8977

#: Fields a task request may carry; anything else is a typo worth a 400.
_TASK_FIELDS = frozenset(
    {"instance", "problem", "algorithm", "g", "params", "backend",
     "timeout", "meta"}
)

#: Per-problem algorithm used when a request names none (CLI parity).
_DEFAULT_ALGORITHM = {"active": "rounding", "busy": "greedy_tracking"}

#: Refuse request bodies beyond this size (64 MiB) instead of buffering.
_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Give up on a ``/batch`` client that accepts no bytes for this long.
#: The result stream is pull-driven, so a stalled reader would suspend
#: watchdog deadline enforcement for its in-flight tasks indefinitely;
#: treating a long write stall as a disconnect closes the stream, which
#: kills the leased workers and frees their capacity.
_WRITE_STALL_SECONDS = 300.0


class RequestError(ValueError):
    """A client error with the HTTP status it should answer with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _label(index: int | None) -> str:
    return "" if index is None else f"task {index}: "


def parse_task_request(
    payload: Any,
    index: int | None = None,
    *,
    default_backend: str | None = None,
    default_timeout: float | None = None,
) -> Task:
    """Translate one wire-format task object into an engine ``Task``.

    Raises :class:`RequestError` (status 400) with the same menu-style
    messages the CLI prints: unknown algorithms list the registered
    names, unknown backends list the backend menu.

    ``index`` labels multi-task (batch) errors with the task's position;
    it also becomes the task's result-ordering index.
    """
    at = _label(index)
    if not isinstance(payload, dict):
        raise RequestError(
            f"{at}request must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _TASK_FIELDS)
    if unknown:
        raise RequestError(
            f"{at}unknown field(s) {unknown}; "
            f"allowed fields: {sorted(_TASK_FIELDS)}"
        )

    problem = payload.get("problem", "active")
    if problem not in PROBLEMS:
        raise RequestError(
            f"{at}unknown problem {problem!r}; choose from {list(PROBLEMS)}"
        )
    algorithm = payload.get("algorithm") or _DEFAULT_ALGORITHM[problem]
    try:
        REGISTRY.get(problem, algorithm)
    except KeyError as exc:
        raise RequestError(f"{at}{exc.args[0]}") from None

    g = payload.get("g")
    if isinstance(g, bool) or not isinstance(g, int) or g < 1:
        raise RequestError(
            f"{at}'g' must be a positive integer, got {g!r}"
        )

    params = payload.get("params")
    params = {} if params is None else params
    if not isinstance(params, dict):
        raise RequestError(f"{at}'params' must be an object, got {params!r}")
    meta = payload.get("meta")
    meta = {} if meta is None else meta
    if not isinstance(meta, dict):
        raise RequestError(f"{at}'meta' must be an object, got {meta!r}")

    # Backend routing matches the CLI: an explicit request is strict
    # (naming a backend for a combinatorial algorithm is an error), a
    # server-wide default is advisory (combinatorial tasks ignore it).
    explicit = payload.get("backend")
    if explicit is not None and not isinstance(explicit, str):
        raise RequestError(
            f"{at}'backend' must be a string, got {explicit!r}"
        )
    try:
        backend_params = backend_task_params(
            problem,
            algorithm,
            explicit if explicit is not None else default_backend,
            strict=explicit is not None,
        )
    except ValueError as exc:
        raise RequestError(f"{at}{exc}") from None

    if "instance" not in payload:
        raise RequestError(
            f"{at}missing 'instance' "
            "(an object with a 'jobs' array of "
            "{release, deadline, length[, id]})"
        )
    try:
        instance = instance_from_payload(payload["instance"])
    except (ValueError, TypeError) as exc:
        # TypeError guards against payload shapes the io-level validation
        # missed: a malformed instance must answer 400, never tear down
        # the handler thread.
        raise RequestError(f"{at}{exc}") from None

    # An explicit ``"timeout": null`` must NOT bypass the server-wide
    # default: that would let a client disable the protective deadline
    # and wedge a worker on an unbounded exact solve.  Null means "use
    # the server default", exactly like omitting the field.
    timeout = payload.get("timeout")
    if timeout is None:
        timeout = default_timeout
    if timeout is not None and (
        isinstance(timeout, bool)
        or not isinstance(timeout, (int, float))
        or timeout <= 0
    ):
        raise RequestError(
            f"{at}'timeout' must be a positive number of seconds, "
            f"got {timeout!r}"
        )

    return make_task(
        index=index or 0,
        problem=problem,
        algorithm=algorithm,
        g=g,
        instance=instance,
        params={**params, **backend_params},
        meta=meta,
        timeout=float(timeout) if timeout is not None else None,
    )


def _histogram_summaries(
    name: str, key_labels: Sequence[str]
) -> dict[str, dict[str, float]]:
    """Quantile digests per labeled series of one histogram family.

    Series are keyed ``label1/label2`` (``"all"`` for an unlabeled
    histogram); a family not registered yet answers ``{}``.
    """
    family = OBS.get(name)
    if family is None:
        return {}
    return {
        "/".join(labels[k] for k in key_labels) or "all": child.summary()
        for labels, child in family.children()
    }


def _fabric_digest() -> dict[str, dict[str, Any]]:
    """Per-host fabric counters, keyed by host, for ``GET /stats``.

    Populated only in processes that have run a
    :class:`~repro.fabric.RemoteDispatcher` (the families register on
    first use); everywhere else this answers ``{}`` and the ``fabric``
    key reads as "no distributed activity here".
    """
    hosts: dict[str, dict[str, Any]] = {}
    for metric, key in (
        ("repro_fabric_dispatched_total", "dispatched"),
        ("repro_fabric_completed_total", "completed"),
        ("repro_fabric_retried_total", "retried"),
        ("repro_fabric_in_flight", "in_flight"),
        ("repro_fabric_host_up", "up"),
    ):
        family = OBS.get(metric)
        if family is None:
            continue
        for labels, child in family.children():
            hosts.setdefault(labels["host"], {})[key] = child.value
    latency = OBS.get("repro_fabric_task_seconds")
    if latency is not None:
        for labels, child in latency.children():
            hosts.setdefault(labels["host"], {})["task_seconds"] = (
                child.summary()
            )
    return hosts


def _json_safe(value: Any) -> Any:
    """Replace NaN/inf floats with ``None`` so the JSON is standard."""
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_json_safe(v) for v in value]
    if isinstance(value, float) and (
        value != value or value in (float("inf"), float("-inf"))
    ):
        return None
    return value


class ServeApp:
    """Server-side state shared by every request: runner + cache + defaults.

    One *streaming* :class:`BatchRunner` over one :class:`ResultCache`.
    There is no whole-batch lock: every handler thread submits through
    :meth:`BatchRunner.run_stream`, which shares the runner's persistent
    worker pools safely, so a long ``/batch`` no longer head-of-line
    blocks concurrent ``/solve`` requests.  A cache is always present,
    even memory-only: it is what dedupes repeated requests server-side
    (and it is internally locked, so concurrent handlers share it).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ResultCache | None = None,
        default_backend: str | None = None,
        default_timeout: float | None = None,
    ) -> None:
        if default_backend is not None:
            resolve_backend(default_backend)  # typo -> menu, at startup
        self.cache = cache if cache is not None else ResultCache()
        self.runner = BatchRunner(jobs=jobs, cache=self.cache)
        self.default_backend = default_backend
        self.default_timeout = default_timeout
        self._counter_lock = threading.Lock()
        self.batches_served = 0
        self.tasks_served = 0

    def close(self) -> None:
        """Release the runner's persistent worker pools."""
        self.runner.close()

    # ------------------------------------------------------------------
    def algos_payload(self) -> dict[str, Any]:
        """The ``GET /algos`` body: solver registry + backend registry."""
        return {
            "problems": {p: list(REGISTRY.names(p)) for p in PROBLEMS},
            "solvers": [
                {
                    "problem": spec.problem,
                    "name": spec.name,
                    "exact": spec.exact,
                    "guarantee": spec.guarantee,
                    "complexity": spec.complexity,
                    "description": spec.description,
                    "capabilities": sorted(spec.capabilities),
                    "backend_capability": spec.backend_capability,
                }
                for spec in REGISTRY.specs()
            ],
            "backends": [backend_status(name) for name in backend_names()],
            "defaults": {
                "algorithm": dict(_DEFAULT_ALGORITHM),
                "backend": self.default_backend,
                "timeout": self.default_timeout,
                "jobs": self.runner.jobs,
            },
        }

    def health_payload(self) -> dict[str, Any]:
        """The ``GET /healthz`` body: liveness plus a capacity report.

        ``jobs`` (worker processes), ``queue_depth`` (tasks enqueued and
        not yet dispatched) and ``streams_in_flight`` (open result
        streams) are what the fabric dispatcher sizes a host's in-flight
        window from — a loaded host advertises its backlog instead of
        silently queueing everything thrown at it.
        """
        return {
            "ok": True,
            "jobs": self.runner.jobs,
            "queue_depth": OBS.value("repro_queue_depth"),
            "streams_in_flight": OBS.value("repro_streams_in_flight"),
            "batches_served": self.batches_served,
            "tasks_served": self.tasks_served,
            "cache": self.cache.stats,
        }

    def stats_payload(self) -> dict[str, Any]:
        """The ``GET /stats`` body: the metrics registry digested to JSON.

        Everything here is also on ``/metrics`` in Prometheus form; this
        is the human/dashboard view — current queue depth and in-flight
        streams, per-status task counts, latency quantiles per backend,
        cache and HiGHS re-solve statistics.
        """
        tasks: dict[str, float] = {}
        family = OBS.get("repro_tasks_total")
        if family is not None:
            tasks = {
                labels["status"]: child.value
                for labels, child in family.children()
            }
        payload = {
            "ok": True,
            "jobs": self.runner.jobs,
            "batches_served": self.batches_served,
            "tasks_served": self.tasks_served,
            "queue_depth": OBS.value("repro_queue_depth"),
            "streams_in_flight": OBS.value("repro_streams_in_flight"),
            "tasks": tasks,
            "queue_wait_seconds": _histogram_summaries(
                "repro_queue_wait_seconds", ()
            ),
            "task_seconds": _histogram_summaries(
                "repro_task_seconds", ("backend", "algorithm")
            ),
            "backend_solve_seconds": _histogram_summaries(
                "repro_backend_solve_seconds", ("backend", "kind")
            ),
            "cache": self.cache.stats,
            "highs_resolve": get_backend("highs").resolve_stats(),
            "fabric": _fabric_digest(),
        }
        return _json_safe(payload)

    # ------------------------------------------------------------------
    def solve_one(self, task: Task) -> TaskResult:
        """Run one task through the shared runner/cache."""
        result = self.runner.run([task])[0]
        with self._counter_lock:
            self.tasks_served += 1
        return result

    def run_batch(self, tasks: Sequence[Task]) -> Iterator[TaskResult]:
        """Yield results for ``tasks`` in task order, incrementally.

        Streams through :meth:`BatchRunner.run_stream`: each result is
        yielded the moment it (and all its predecessors) is done, in-run
        duplicates are solved once, and every result lands in the shared
        cache — which also dedupes across repeated batches.  The batch
        counter is committed in ``finally`` so an abandoned stream (a
        disconnected client closing this generator) still counts and the
        served-task tally stays consistent with what actually ran.
        """
        stream = self.runner.run_stream(tasks)
        try:
            for result in stream:
                with self._counter_lock:
                    self.tasks_served += 1
                yield result
        finally:
            # Deterministic teardown on abandonment: closing the stream
            # cancels undispatched tasks and settles its gauges.
            stream.close()
            with self._counter_lock:
                self.batches_served += 1


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Route the three endpoints onto the shared :class:`ServeApp`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path == "/algos":
            self._send_json(200, self.app.algos_payload())
        elif path in ("/healthz", "/health"):
            self._send_json(200, self.app.health_payload())
        elif path == "/metrics":
            body = render_prometheus(OBS).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROM_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/stats":
            self._send_json(200, self.app.stats_payload())
        else:
            self._send_error(404, self._unknown_path(path))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        try:
            if path == "/solve":
                self._handle_solve()
            elif path == "/batch":
                self._handle_batch()
            else:
                self._send_error(404, self._unknown_path(path))
        except RequestError as exc:
            self._send_error(exc.status, str(exc))

    @staticmethod
    def _unknown_path(path: str) -> str:
        return (
            f"unknown path {path!r}; endpoints: GET /algos, GET /healthz, "
            "GET /metrics, GET /stats, POST /solve, POST /batch"
        )

    # ------------------------------------------------------------------
    def _handle_solve(self) -> None:
        payload = self._read_json_body()
        task = parse_task_request(
            payload,
            default_backend=self.app.default_backend,
            default_timeout=self.app.default_timeout,
        )
        result = self.app.solve_one(task)
        self._send_json(200, result.to_record())

    def _handle_batch(self) -> None:
        body = self._read_body()
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise RequestError(f"batch body is not UTF-8: {exc}") from None
        tasks: list[Task] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RequestError(
                    f"line {lineno}: malformed JSON ({exc.msg}); "
                    "batch bodies are JSONL, one task object per line"
                ) from None
            try:
                tasks.append(
                    parse_task_request(
                        payload,
                        index=len(tasks),
                        default_backend=self.app.default_backend,
                        default_timeout=self.app.default_timeout,
                    )
                )
            except RequestError as exc:
                # Validate the whole stream before solving anything: a
                # typo on line 40 must not waste 39 solves.
                raise RequestError(f"line {lineno}: {exc}") from None

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        # A reader that stalls outright must not pin leased workers (and
        # suspend their deadline enforcement) forever.
        self.connection.settimeout(_WRITE_STALL_SECONDS)
        results = self.app.run_batch(tasks)
        try:
            for result in results:
                line = json.dumps(result.to_record(), sort_keys=True) + "\n"
                self._write_chunk(line.encode("utf-8"))
            self._end_chunked()
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            # The client went away mid-stream (or stalled past the write
            # budget).  Not a server error: stop solving (closing the
            # generator cancels undispatched tasks, kills leased workers
            # and commits the batch counters), drop the connection
            # quietly instead of tracebacking in the handler thread.
            self.close_connection = True
        finally:
            results.close()

    # ------------------------------------------------------------------
    # Body / response plumbing
    # ------------------------------------------------------------------
    def _read_body(self) -> bytes:
        # Erroring *before* draining the body must also close the
        # connection: on HTTP/1.1 keep-alive the unread body bytes would
        # otherwise be parsed as the next request line, corrupting every
        # later request on the connection.
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self.close_connection = True
            raise RequestError(
                "missing or malformed Content-Length header", status=411
            ) from None
        if length < 0 or length > _MAX_BODY_BYTES:
            self.close_connection = True
            raise RequestError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit",
                status=413,
            )
        return self.rfile.read(length)

    def _read_json_body(self) -> Any:
        body = self._read_body()
        try:
            return json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RequestError(f"request body is not valid JSON: {exc}") \
                from None

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message, "status": status})

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()  # the whole point of streaming: deliver now

    def _end_chunked(self) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()


class ReproHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying the shared :class:`ServeApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        app: ServeApp,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ReproRequestHandler)
        self.app = app
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def server_close(self) -> None:
        super().server_close()
        # Release the app's persistent worker pools with the sockets, so
        # short-lived servers (tests, smoke scripts) leave no processes.
        self.app.close()


def create_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    default_backend: str | None = None,
    default_timeout: float | None = None,
    verbose: bool = False,
) -> ReproHTTPServer:
    """Build a ready-to-run server (``port=0`` picks an ephemeral port)."""
    app = ServeApp(
        jobs=jobs,
        cache=cache,
        default_backend=default_backend,
        default_timeout=default_timeout,
    )
    return ReproHTTPServer((host, port), app, verbose=verbose)
