"""Thread-safe metric families with labels, behind a process registry.

The shape mirrors the Prometheus client-library data model — counter,
gauge, histogram families; each family keyed by a tuple of label values
into *children* that hold the actual numbers — without the dependency.
Everything is standard library.

Concurrency: one lock per family guards its children map and their
values.  Recording operations (``inc``/``set``/``observe``) are a dict
lookup plus a locked float update — microseconds against solve paths
measured in milliseconds; the overhead benchmark pins the total under
3% of the hot path.

Disabling: ``registry.disable()`` flips one flag every recording call
checks first, so a registry-disabled run measures the true cost of the
instrumentation (the benchmark baseline) and embedders can opt out
wholesale.  Collection-time gauge callbacks (:meth:`Gauge.set_function`)
still evaluate when the registry is disabled only if rendered
explicitly — recording is what the flag gates.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets, sized for solver latencies (seconds):
#: sub-millisecond combinatorial solves up to minute-scale MILPs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class _Child:
    """One labeled time series inside a family."""

    __slots__ = ("_family",)

    def __init__(self, family: "_MetricFamily") -> None:
        self._family = family

    @property
    def _enabled(self) -> bool:
        return self._family.registry.enabled

    @property
    def _lock(self) -> threading.Lock:
        return self._family.lock


class _CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, family: "_MetricFamily") -> None:
        super().__init__(family)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild(_Child):
    __slots__ = ("_value", "_fn")

    def __init__(self, family: "_MetricFamily") -> None:
        super().__init__(family)
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at collection time instead of storing a value.

        For mirroring state owned elsewhere (resident-model counts,
        pool sizes) without a write on every change.  Exceptions from
        ``fn`` surface at render time — keep callbacks trivial.
        """
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
        if fn is not None:
            return float(fn())
        with self._lock:
            return self._value


class _HistogramChild(_Child):
    __slots__ = ("_counts", "_sum", "_count")

    def __init__(self, family: "_MetricFamily") -> None:
        super().__init__(family)
        # One slot per finite bucket plus the +Inf overflow slot.
        self._counts = [0] * (len(family.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._enabled:
            return
        value = float(value)
        slot = bisect_left(self._family.buckets, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> tuple[list[int], float, int]:
        """``(per-bucket counts, sum, count)`` under the lock."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Returns the upper edge of the bucket containing the quantile
        (the same resolution a Prometheus ``histogram_quantile`` has);
        observations in the +Inf bucket answer the largest finite edge.
        ``nan`` with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts, _, total = self.snapshot()
        if total == 0:
            return math.nan
        rank = q * total
        seen = 0
        buckets = self._family.buckets
        for slot, n in enumerate(counts):
            seen += n
            if seen >= rank and n:
                if slot < len(buckets):
                    return buckets[slot]
                return buckets[-1] if buckets else math.inf
        return buckets[-1] if buckets else math.inf

    def summary(self) -> dict[str, float]:
        """Count/mean/quantile digest for JSON surfaces (``/stats``)."""
        _, total_sum, count = self.snapshot()
        return {
            "count": count,
            "mean": (total_sum / count) if count else math.nan,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


_CHILD_TYPES = {
    "counter": _CounterChild,
    "gauge": _GaugeChild,
    "histogram": _HistogramChild,
}


class _MetricFamily:
    """Shared machinery: a named, typed, labeled set of children.

    The family itself proxies the recording API onto its *unlabeled*
    child, so ``registry.counter("x", "...")`` usable directly and
    ``registry.counter("x", "...", ("who",)).labels("me")`` both work.
    """

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(
                    f"invalid label name {label!r} for metric {name!r}"
                )
        if self.kind == "histogram":
            bucket_list = tuple(
                float(b) for b in (buckets or DEFAULT_BUCKETS)
            )
            if list(bucket_list) != sorted(set(bucket_list)):
                raise ValueError(
                    f"histogram buckets must be strictly increasing, "
                    f"got {bucket_list}"
                )
            if "le" in labelnames:
                raise ValueError(
                    "'le' is reserved for histogram buckets"
                )
            self.buckets = bucket_list
        else:
            self.buckets: tuple[float, ...] = ()
        self.registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child] = {}

    # ------------------------------------------------------------------
    def labels(self, *values: Any, **kwargs: Any) -> Any:
        """The child for one label-value combination (created on first use)."""
        if kwargs:
            if values:
                raise ValueError(
                    "pass label values positionally or by name, not both"
                )
            try:
                values = tuple(kwargs[n] for n in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"metric {self.name!r} has labels "
                    f"{list(self.labelnames)}, got {sorted(kwargs)}"
                ) from exc
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.labelnames)} "
                f"label value(s) {list(self.labelnames)}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        with self.lock:
            child = self._children.get(key)
            if child is None:
                child = _CHILD_TYPES[self.kind](self)
                self._children[key] = child
        return child

    def children(self) -> Iterator[tuple[dict[str, str], Any]]:
        """``(labels-dict, child)`` per live series, label-sorted."""
        with self.lock:
            items = sorted(self._children.items())
        for key, child in items:
            yield dict(zip(self.labelnames, key)), child

    # Unlabeled convenience surface --------------------------------------
    def _solo(self) -> Any:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels "
                f"{list(self.labelnames)}; use .labels(...)"
            )
        return self.labels()

    def signature(self) -> tuple:
        return (self.kind, self.labelnames, self.buckets)


class Counter(_MetricFamily):
    """Monotonically increasing count (name them ``*_total``)."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    @property
    def value(self) -> float:
        return self._solo().value


class Gauge(_MetricFamily):
    """A value that can go up and down (or be computed at collect time)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._solo().set_function(fn)

    @property
    def value(self) -> float:
        return self._solo().value


class Histogram(_MetricFamily):
    """Bucketed distribution of observations (latencies, sizes)."""

    kind = "histogram"

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def quantile(self, q: float) -> float:
        return self._solo().quantile(q)

    def summary(self) -> dict[str, float]:
        return self._solo().summary()

    @property
    def count(self) -> int:
        return self._solo().count

    @property
    def sum(self) -> float:
        return self._solo().sum


_FAMILY_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Process-wide home for metric families.

    Families are get-or-create: a second registration of the same name
    returns the existing family when kind/labels/buckets agree and
    raises otherwise, so independent modules can safely share a series.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _MetricFamily] = {}
        self.enabled = enabled

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Turn every recording call on this registry into a no-op."""
        self.enabled = False

    # ------------------------------------------------------------------
    def _register(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> Any:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                candidate = _FAMILY_TYPES[kind](
                    self, name, help, labelnames, buckets
                )
                if existing.signature() != candidate.signature():
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            family = _FAMILY_TYPES[kind](self, name, help, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register("counter", name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register("gauge", name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        return self._register("histogram", name, help, labelnames, buckets)

    # ------------------------------------------------------------------
    def get(self, name: str) -> _MetricFamily | None:
        """The family registered under ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def collect(self) -> list[_MetricFamily]:
        """Every family, name-sorted (the renderer's input)."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def value(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> float:
        """Shorthand: current value of one counter/gauge series.

        Missing families or label combinations answer ``0.0`` so
        readers (``/stats``) never race registration order.
        """
        family = self.get(name)
        if family is None:
            return 0.0
        try:
            child = family.labels(**dict(labels or {}))
        except ValueError:
            return 0.0
        return float(child.value)


#: The default process-wide registry all built-in instrumentation uses.
REGISTRY = MetricsRegistry()
