"""Unit tests for the work-stealing fabric dispatcher (fake clients).

Every host here is an in-memory :class:`FakeServer` injected through the
dispatcher's ``client_factory`` hook, so steal/retry/dedupe/probe logic
runs deterministically with no sockets or subprocesses involved.
"""

import threading
import time

import pytest

from repro.core import Instance
from repro.engine.workers import TaskResult, make_task
from repro.fabric import RemoteDispatcher, normalize_hosts, task_payload
from repro.serve.client import ServeClientError

URL_A = "http://hosta:8977"
URL_B = "http://hostb:8977"


class FakeServer:
    """In-memory stand-in for one ``repro serve`` host.

    ``solve_errors`` maps a task key (``meta["k"]``) to a list of
    :class:`ServeClientError` statuses to raise, one per call, before
    succeeding; ``down=True`` fails every call with a transport error.
    """

    def __init__(self, jobs=2, delay=0.0):
        self.jobs = jobs
        self.delay = delay
        self.down = False
        self.health_failures = 0
        self.health_calls = 0
        self.solve_errors = {}
        self.solved = []  # task keys, in completion order
        self.lock = threading.Lock()

    def health(self):
        with self.lock:
            self.health_calls += 1
            if self.down or self.health_failures > 0:
                if not self.down:
                    self.health_failures -= 1
                raise ServeClientError("cannot reach host", status=0)
            return {"ok": True, "jobs": self.jobs}

    def solve_payload(self, payload):
        key = payload["meta"]["k"]
        with self.lock:
            if self.down:
                raise ServeClientError("cannot reach host", status=0)
            pending = self.solve_errors.get(key)
            if pending:
                raise ServeClientError("injected", status=pending.pop(0))
        if self.delay:
            time.sleep(self.delay)
        with self.lock:
            self.solved.append(key)
        return TaskResult(
            index=0,
            digest="server-side",
            problem=payload["problem"],
            algorithm=payload["algorithm"],
            g=payload["g"],
            n=len(payload["instance"]["jobs"]),
            ok=True,
            objective=float(key),
            meta=dict(payload.get("meta", {})),
        )


class FakeClient:
    def __init__(self, server):
        self.server = server

    def health(self):
        return self.server.health()

    def solve_payload(self, payload):
        return self.server.solve_payload(payload)


def make_dispatcher(servers, **kwargs):
    """Dispatcher over ``{url: FakeServer}`` with test-friendly timing."""
    kwargs.setdefault("probe_base", 0.01)
    kwargs.setdefault("probe_cap", 0.05)
    return RemoteDispatcher(
        list(servers),
        client_factory=lambda url, **_: FakeClient(servers[url]),
        **kwargs,
    )


def make_tasks(count, *, g=2, start=0):
    """``count`` distinct-digest tasks, keyed by ``meta["k"]``."""
    tasks = []
    for i in range(count):
        k = start + i
        inst = Instance.from_tuples([(0, 4 + k, 2), (1, 5 + k, 3)])
        tasks.append(
            make_task(
                index=i,
                problem="busy",
                algorithm="first_fit",
                g=g,
                instance=inst,
                meta={"k": k},
            )
        )
    return tasks


class TestNormalizeHosts:
    def test_bare_host_port_gets_scheme(self):
        assert normalize_hosts("h1:8977,h2:9000") == [
            "http://h1:8977",
            "http://h2:9000",
        ]

    def test_bare_host_gets_default_port(self):
        from repro.serve.server import DEFAULT_PORT

        assert normalize_hosts("somewhere") == [
            f"http://somewhere:{DEFAULT_PORT}"
        ]

    def test_sequence_and_trailing_slash(self):
        assert normalize_hosts(["http://h:1/", " h2:2 "]) == [
            "http://h:1",
            "http://h2:2",
        ]

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            normalize_hosts("h:1,h:1")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no fabric hosts"):
            normalize_hosts(" , ")


class TestTaskPayload:
    def test_backend_param_moves_to_wire_field(self):
        inst = Instance.from_tuples([(0, 4, 2)])
        task = make_task(
            index=0,
            problem="active",
            algorithm="rounding",
            g=2,
            instance=inst,
            params={"backend": "reference"},
            meta={"k": 0},
        )
        payload = task_payload(task)
        assert payload["backend"] == "reference"
        assert "params" not in payload  # only held the backend pin

    def test_timeout_and_meta_ride_along(self):
        inst = Instance.from_tuples([(0, 4, 2)])
        task = make_task(
            index=3,
            problem="busy",
            algorithm="first_fit",
            g=2,
            instance=inst,
            meta={"k": 3},
            timeout=1.5,
        )
        payload = task_payload(task)
        assert payload["timeout"] == 1.5
        assert payload["meta"] == {"k": 3}


class TestDispatch:
    def test_all_results_in_task_order(self):
        # A small solve delay keeps the queue from being drained by the
        # first host's threads before the second host's even start.
        servers = {
            URL_A: FakeServer(jobs=2, delay=0.01),
            URL_B: FakeServer(jobs=2, delay=0.01),
        }
        tasks = make_tasks(12)
        results = make_dispatcher(servers).run(tasks)
        assert [r.index for r in results] == list(range(12))
        assert all(r.ok for r in results)
        assert [r.objective for r in results] == [float(i) for i in range(12)]
        # Both hosts contributed and nothing was solved twice.
        assert servers[URL_A].solved and servers[URL_B].solved
        assert sorted(servers[URL_A].solved + servers[URL_B].solved) == list(
            range(12)
        )

    def test_results_carry_fabric_host_meta(self):
        servers = {URL_A: FakeServer()}
        results = make_dispatcher(servers).run(make_tasks(2))
        assert all(r.meta["fabric_host"] == "hosta:8977" for r in results)

    def test_window_sized_from_healthz_jobs(self):
        servers = {URL_A: FakeServer(jobs=3), URL_B: FakeServer(jobs=1)}
        dispatcher = make_dispatcher(servers)
        dispatcher.run(make_tasks(4))
        stats = dispatcher.last_stats
        assert stats.hosts["hosta:8977"].window == 3
        assert stats.hosts["hostb:8977"].window == 1

    def test_window_clamped_to_max_window(self):
        servers = {URL_A: FakeServer(jobs=64)}
        dispatcher = make_dispatcher(servers, max_window=4)
        dispatcher.run(make_tasks(2))
        assert dispatcher.last_stats.hosts["hosta:8977"].window == 4

    def test_explicit_window_skips_probe(self):
        servers = {URL_A: FakeServer(jobs=8)}
        dispatcher = make_dispatcher(servers, window=2)
        dispatcher.run(make_tasks(2))
        assert dispatcher.last_stats.hosts["hosta:8977"].window == 2

    def test_fast_host_steals_more_work(self):
        # One window slot each; host B is 20x slower, so A must pull the
        # bulk of the queue — the point of stealing from a global deque.
        servers = {
            URL_A: FakeServer(jobs=1, delay=0.005),
            URL_B: FakeServer(jobs=1, delay=0.1),
        }
        dispatcher = make_dispatcher(servers)
        results = dispatcher.run(make_tasks(16))
        assert all(r.ok for r in results)
        assert len(servers[URL_A].solved) > len(servers[URL_B].solved)

    def test_empty_task_list(self):
        servers = {URL_A: FakeServer()}
        assert make_dispatcher(servers).run([]) == []

    def test_streaming_is_incremental(self):
        # The first result must be observable while later tasks are
        # still queued behind a single window slot.
        servers = {URL_A: FakeServer(jobs=1, delay=0.05)}
        stream = make_dispatcher(servers).run_stream(make_tasks(6))
        first = next(iter(stream))
        assert first.index == 0
        assert stream.stats.completed < 6
        assert list(stream)  # drain cleanly
        stream.close()


class TestDedupe:
    def test_duplicate_digests_solved_once(self):
        servers = {URL_A: FakeServer(jobs=2)}
        tasks = make_tasks(4)
        dup = make_task(
            index=4,
            problem="busy",
            algorithm="first_fit",
            g=2,
            instance=tasks[1].instance,
            meta={"k": 99},  # meta differs, digest matches tasks[1]
        )
        assert dup.digest == tasks[1].digest
        dispatcher = make_dispatcher(servers)
        results = dispatcher.run(tasks + [dup])
        assert [r.index for r in results] == list(range(5))
        assert all(r.ok for r in results)
        # The duplicate never reached a host; its result is the fan-out.
        assert sorted(servers[URL_A].solved) == list(range(4))
        assert results[4].cached is True
        assert results[4].objective == results[1].objective
        assert results[4].meta["k"] == 99  # local meta preserved
        assert dispatcher.last_stats.dedup_hits == 1

    def test_failed_first_occurrence_requeues_duplicate(self):
        servers = {URL_A: FakeServer(jobs=1)}
        tasks = make_tasks(2)
        dup = make_task(
            index=2,
            problem="busy",
            algorithm="first_fit",
            g=2,
            instance=tasks[0].instance,
            meta={"k": 50},
        )
        # First attempt at k=0 is rejected outright (4xx, no retry);
        # the duplicate must then be dispatched on its own, and its key
        # (k=50) succeeds.
        servers[URL_A].solve_errors[0] = [400]
        results = make_dispatcher(servers).run(tasks + [dup])
        assert results[0].ok is False
        assert "rejected" in results[0].error
        assert results[2].ok is True
        assert results[2].cached is False


class TestFailureHandling:
    def test_transient_errors_redispatch_to_surviving_host(self):
        servers = {URL_A: FakeServer(jobs=2), URL_B: FakeServer(jobs=2)}
        servers[URL_B].down = True
        dispatcher = make_dispatcher(servers)
        results = dispatcher.run(make_tasks(8))
        assert all(r.ok for r in results)
        assert sorted(servers[URL_A].solved) == list(range(8))
        stats = dispatcher.last_stats
        assert stats.hosts["hostb:8977"].up is False
        # B was probed but never recovered; all its pulls were retried
        # on A. (B may have been detected down at planning time, in
        # which case no task ever reached it.)
        assert stats.hosts["hostb:8977"].completed == 0

    def test_mid_run_failure_increments_retried(self):
        # A is slowed down so B is guaranteed to pull work — and every
        # solve B pulls dies in transport, forcing a re-dispatch to A.
        servers = {
            URL_A: FakeServer(jobs=1, delay=0.01),
            URL_B: FakeServer(jobs=1),
        }
        servers[URL_B].solve_errors = {k: [0] for k in range(8)}
        dispatcher = make_dispatcher(servers)
        results = dispatcher.run(make_tasks(8))
        assert all(r.ok for r in results)
        stats = dispatcher.last_stats
        assert stats.retried > 0
        assert stats.hosts["hostb:8977"].retried > 0

    def test_bounced_host_rejoins_after_probe(self):
        servers = {URL_A: FakeServer(jobs=1, delay=0.02)}
        server = servers[URL_A]
        # Fail the first solve (marks the host down), then two health
        # probes, then recover fully.
        server.solve_errors[0] = [0]
        server.health_failures = 2
        dispatcher = make_dispatcher(servers)
        results = dispatcher.run(make_tasks(4))
        assert all(r.ok for r in results)
        stats = dispatcher.last_stats
        assert stats.hosts["hosta:8977"].probes >= 2
        assert stats.hosts["hosta:8977"].up is True
        assert stats.retried == 1

    def test_4xx_fails_immediately_without_retry(self):
        servers = {URL_A: FakeServer(jobs=1)}
        servers[URL_A].solve_errors[1] = [422]
        dispatcher = make_dispatcher(servers)
        results = dispatcher.run(make_tasks(3))
        assert [r.ok for r in results] == [True, False, True]
        assert "HTTP 422" in results[1].error
        assert dispatcher.last_stats.retried == 0
        # k=1 was dispatched once and never solved.
        assert sorted(servers[URL_A].solved) == [0, 2]

    def test_attempts_exhausted_gives_up(self):
        servers = {URL_A: FakeServer(jobs=1)}
        # Health always answers (the host keeps "recovering") but every
        # solve dies in transport — the per-task attempt budget must
        # end the run with failure results, not a hang.
        servers[URL_A].solve_errors = {k: [0] * 10 for k in range(3)}
        dispatcher = make_dispatcher(servers, max_task_attempts=2)
        results = dispatcher.run(make_tasks(3))
        assert all(not r.ok for r in results)
        assert all("gave up after 2" in r.error for r in results)
        assert dispatcher.last_stats.gave_up == 3

    def test_all_hosts_dark_past_grace_fails_queue(self):
        servers = {URL_A: FakeServer()}
        servers[URL_A].down = True
        dispatcher = make_dispatcher(servers, all_down_grace=0.3)
        start = time.perf_counter()
        results = dispatcher.run(make_tasks(4))
        elapsed = time.perf_counter() - start
        assert all(not r.ok for r in results)
        assert all("unreachable" in r.error for r in results)
        assert elapsed < 10.0

    def test_host_down_at_start_joins_via_probe(self):
        servers = {URL_A: FakeServer(jobs=2)}
        # The capacity probe fails, so the host enters the run down
        # with a window of 1 — then the re-probe loop brings it up.
        servers[URL_A].health_failures = 1
        dispatcher = make_dispatcher(servers)
        results = dispatcher.run(make_tasks(3))
        assert all(r.ok for r in results)
        stats = dispatcher.last_stats
        assert stats.hosts["hosta:8977"].window == 1
        assert stats.hosts["hosta:8977"].up is True


class TestValidation:
    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            RemoteDispatcher("h:1", window=0)

    def test_bad_attempts_rejected(self):
        with pytest.raises(ValueError, match="max_task_attempts"):
            RemoteDispatcher("h:1", max_task_attempts=0)


class TestObservability:
    def test_per_host_counters_reach_metrics_and_stats(self):
        servers = {URL_A: FakeServer(jobs=1, delay=0.005)}
        make_dispatcher(servers).run(make_tasks(3))

        from repro.obs import REGISTRY as OBS
        from repro.obs.prom import render_prometheus
        from repro.serve.server import _fabric_digest

        text = render_prometheus(OBS)
        assert 'repro_fabric_dispatched_total{host="hosta:8977"}' in text
        assert 'repro_fabric_completed_total{host="hosta:8977"}' in text
        assert 'repro_fabric_host_up{host="hosta:8977"} 1' in text
        assert 'repro_fabric_task_seconds_bucket{host="hosta:8977"' in text

        # The same families feed the "fabric" section of GET /stats.
        digest = _fabric_digest()
        assert digest["hosta:8977"]["dispatched"] >= 3
        assert digest["hosta:8977"]["up"] == 1.0
        assert digest["hosta:8977"]["task_seconds"]["count"] >= 3
