"""E20 (extension) — throughput maximization under a busy-time budget.

The dual problem of Mertzios et al. (Section 1.3): how many jobs fit within
a busy-time budget?  We sweep the budget from zero to the full-schedule cost
and report the admission curve (exact MILP vs density greedy).
"""

import pytest

from repro.busytime import (
    exact_busy_time_interval,
    greedy_throughput,
    maximize_throughput_exact,
)
from repro.instances import random_interval_instance


def test_admission_curve(rng, emit):
    inst = random_interval_instance(10, 15.0, rng=rng)
    g = 2
    full = exact_busy_time_interval(inst, g).total_busy_time
    rows = []
    prev_exact = -1
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        budget = frac * full
        exact = maximize_throughput_exact(inst, g, budget)
        greedy = greedy_throughput(inst, g, budget)
        rows.append(
            [f"{frac:.2f} x OPT", round(budget, 3), exact.instance.n,
             greedy.instance.n]
        )
        assert greedy.instance.n <= exact.instance.n
        assert exact.instance.n >= prev_exact
        prev_exact = exact.instance.n
    assert prev_exact == inst.n  # full budget admits everything
    emit(
        "E20 — admission curve: jobs admitted vs busy-time budget",
        ["budget", "value", "exact MILP", "density greedy"],
        rows,
    )


def test_greedy_gap(rng, emit):
    worst = 1.0
    for _ in range(8):
        inst = random_interval_instance(8, 12.0, rng=rng)
        g = int(rng.integers(1, 3))
        full = exact_busy_time_interval(inst, g).total_busy_time
        budget = 0.5 * full
        exact_n = maximize_throughput_exact(inst, g, budget).instance.n
        greedy_n = greedy_throughput(inst, g, budget).instance.n
        if greedy_n > 0:
            worst = max(worst, exact_n / greedy_n)
    emit(
        "E20 — worst exact/greedy admission ratio at half budget",
        ["worst ratio"],
        [[worst]],
    )


@pytest.mark.parametrize("n", [8, 12])
def test_maximization_runtime(benchmark, rng, n):
    inst = random_interval_instance(n, 1.5 * n, rng=rng)
    s = benchmark(maximize_throughput_exact, inst, 2, float(n) / 2)
    assert s.total_busy_time <= n / 2 + 1e-6


@pytest.mark.parametrize("n", [10, 25])
def test_greedy_runtime(benchmark, rng, n):
    inst = random_interval_instance(n, 1.5 * n, rng=rng)
    s = benchmark(greedy_throughput, inst, 2, float(n) / 2)
    assert s.total_busy_time <= n / 2 + 1e-6
