"""Busy-time schedules: bundles of interval jobs, one machine per bundle.

Section 4: a feasible busy-time solution partitions the jobs into *bundles*
(groups); each bundle runs on its own machine, at most ``g`` of its jobs may
overlap at any instant, and the machine's busy time is the span of the union
of its jobs' intervals.  The objective is the cumulative busy time
``sum_k Sp(B_k)``.

For flexible jobs the schedule additionally records each job's chosen start
time; the bundle then holds the *pinned* interval jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.intervals import coverage_counts, merge_intervals, span
from ..core.jobs import TIME_EPS, Instance, Job

__all__ = ["Bundle", "BusyTimeSchedule", "BusyVerificationError"]


class BusyVerificationError(AssertionError):
    """Raised when a busy-time schedule violates a model constraint."""


@dataclass(frozen=True)
class Bundle:
    """A group of pinned (interval) jobs sharing one machine."""

    jobs: tuple[Job, ...]

    @property
    def busy_intervals(self) -> list[tuple[float, float]]:
        """The machine's busy periods: union of the jobs' intervals."""
        return merge_intervals(j.window for j in self.jobs)

    @property
    def busy_time(self) -> float:
        """``busy(M) = Sp(bundle)`` — the machine's contribution to the objective."""
        return span(j.window for j in self.jobs)

    @property
    def mass(self) -> float:
        """Total processing length ``ℓ(B)`` of the bundle."""
        return sum(j.length for j in self.jobs)

    def max_overlap(self) -> int:
        """Largest number of jobs simultaneously active on this machine."""
        cov = coverage_counts([j.window for j in self.jobs])
        return max((c for _, c in cov), default=0)

    def job_ids(self) -> list[int]:
        """Sorted ids of the member jobs."""
        return sorted(j.id for j in self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)


@dataclass(frozen=True)
class BusyTimeSchedule:
    """A complete busy-time solution.

    Attributes
    ----------
    instance:
        The *original* instance (possibly flexible).
    g:
        Per-machine parallelism bound.
    bundles:
        One bundle per machine; bundle jobs are pinned interval jobs whose
        ids refer back to ``instance``.
    starts:
        Chosen start time per job id (for interval jobs this equals the
        release time).
    """

    instance: Instance
    g: int
    bundles: tuple[Bundle, ...]
    starts: Mapping[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def total_busy_time(self) -> float:
        """The objective: cumulative busy time over all machines."""
        return sum(b.busy_time for b in self.bundles)

    @property
    def num_machines(self) -> int:
        """Number of (used) machines."""
        return len(self.bundles)

    def machine_of(self, job_id: int) -> int:
        """Index of the bundle containing ``job_id``."""
        for k, b in enumerate(self.bundles):
            if any(j.id == job_id for j in b.jobs):
                return k
        raise KeyError(f"job {job_id} not scheduled")

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Check all busy-time constraints; raises :class:`BusyVerificationError`.

        * every job of the instance appears in exactly one bundle;
        * each pinned copy has the original length and lies inside the
          original window (release/deadline respected, non-preemptive);
        * at most ``g`` jobs overlap at any instant within a bundle.
        """
        seen: dict[int, int] = {}
        for k, bundle in enumerate(self.bundles):
            for pinned in bundle.jobs:
                if pinned.id in seen:
                    raise BusyVerificationError(
                        f"job {pinned.id} appears in bundles "
                        f"{seen[pinned.id]} and {k}"
                    )
                seen[pinned.id] = k
                original = self.instance.job_by_id(pinned.id)
                if abs(pinned.length - original.length) > TIME_EPS:
                    raise BusyVerificationError(
                        f"job {pinned.id}: pinned length {pinned.length} != "
                        f"original {original.length}"
                    )
                if not pinned.is_interval:
                    raise BusyVerificationError(
                        f"job {pinned.id} in bundle {k} is not pinned to an "
                        "interval"
                    )
                if pinned.release < original.release - TIME_EPS or (
                    pinned.deadline > original.deadline + TIME_EPS
                ):
                    raise BusyVerificationError(
                        f"job {pinned.id}: interval [{pinned.release}, "
                        f"{pinned.deadline}) outside window "
                        f"[{original.release}, {original.deadline})"
                    )
            if bundle.max_overlap() > self.g:
                raise BusyVerificationError(
                    f"bundle {k} has {bundle.max_overlap()} simultaneous "
                    f"jobs, capacity is {self.g}"
                )
        missing = {j.id for j in self.instance.jobs} - set(seen)
        if missing:
            raise BusyVerificationError(
                f"jobs never scheduled: {sorted(missing)}"
            )

    def is_valid(self) -> bool:
        """Boolean wrapper around :meth:`verify`."""
        try:
            self.verify()
        except BusyVerificationError:
            return False
        return True

    # ------------------------------------------------------------------
    @classmethod
    def from_bundle_jobs(
        cls,
        instance: Instance,
        g: int,
        groups: Sequence[Sequence[Job]],
        *,
        starts: Mapping[int, float] | None = None,
    ) -> "BusyTimeSchedule":
        """Build a schedule from groups of already-pinned jobs."""
        bundles = tuple(Bundle(tuple(group)) for group in groups if group)
        if starts is None:
            starts = {j.id: j.release for b in bundles for j in b.jobs}
        return cls(instance=instance, g=g, bundles=bundles, starts=dict(starts))
