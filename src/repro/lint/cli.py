"""Command-line front end: ``repro lint`` and ``python -m repro.lint``.

Exit status: 0 clean, 1 findings, 2 usage errors (unknown rule, missing
path).  Output is ``path:line: REP### message`` per finding, or one
JSON document with ``--json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .base import RULES
from .report import render_json, render_rule_list, render_text
from .runner import lint_paths

__all__ = ["build_parser", "main"]

#: What ``repro lint`` scans when no paths are given (repo convention).
DEFAULT_PATHS = ("src", "tools", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Project-specific static analysis: concurrency, fork-safety, "
            "metrics-contract and determinism rules (REP001-REP006). "
            "Waive a finding in place with a `lint: waive[REP###] reason` "
            "comment on its line."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=(
            "files or directories to scan (default: "
            + " ".join(DEFAULT_PATHS) + ", those that exist)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of text findings",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--root", metavar="DIR", default=None,
        help=(
            "project root for relative paths and the README metrics "
            "catalog (default: current directory)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog (id, title, documentation) and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip().upper() for r in args.rules.split(",")
                    if r.strip()]
    paths = [Path(p) for p in args.paths]
    if not paths:
        paths = [Path(p) for p in DEFAULT_PATHS if Path(p).is_dir()]
        if not paths:
            print(
                "repro lint: no paths given and none of "
                f"{'/'.join(DEFAULT_PATHS)} exist here",
                file=sys.stderr,
            )
            return 2

    try:
        report = lint_paths(paths, rule_ids=rule_ids, root=args.root)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(
            f"repro lint: {exc}\nregistered rules: {', '.join(sorted(RULES))}",
            file=sys.stderr,
        )
        return 2

    print(render_json(report) if args.json else render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
