"""Per-line waiver comments for ``repro.lint`` findings.

The canonical spelling names the rule(s) being waived and gives a
reason — a waiver without a reason is itself a finding (``REP000``),
so suppressions stay auditable::

    time.sleep(0)   # lint: waive[REP001] yields the GIL; never blocks

Multiple rules can share one waiver: ``# lint: waive[REP002,REP005]``.

The legacy ``# blocking-ok`` spelling from ``tools/check_async_blocking``
is absorbed as a waiver of exactly ``REP001`` (the rule that check
became); it is deprecated but still honored so existing muscle memory
keeps working — it too must carry a reason.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

__all__ = ["Waiver", "parse_waivers"]

_WAIVE_RE = re.compile(
    r"#\s*lint:\s*waive\[(?P<ids>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)
_BLOCKING_OK_RE = re.compile(r"#\s*blocking-ok\b\s*(?P<reason>.*?)\s*$")
_ID_RE = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class Waiver:
    """One waiver comment: which rules it silences on its line, and why."""

    line: int  #: 1-based line the waiver (and the waived code) sits on
    ids: FrozenSet[str]
    reason: str
    legacy: bool = False  #: came from the deprecated ``# blocking-ok``
    malformed: List[str] = field(default_factory=list)

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.ids


def parse_waivers(lines: List[str]) -> Dict[int, Waiver]:
    """Extract waivers from source lines, keyed by 1-based line number.

    Malformed rule IDs inside ``waive[...]`` are recorded on the
    waiver's ``malformed`` list instead of being dropped silently; the
    runner turns them (and empty reasons) into ``REP000`` findings.
    """
    waivers: Dict[int, Waiver] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _WAIVE_RE.search(text)
        if match:
            raw_ids = [
                part.strip()
                for part in match.group("ids").split(",")
                if part.strip()
            ]
            good = frozenset(i for i in raw_ids if _ID_RE.match(i))
            bad = [i for i in raw_ids if not _ID_RE.match(i)]
            if not raw_ids:
                bad = ["<empty>"]
            waivers[lineno] = Waiver(
                line=lineno,
                ids=good,
                reason=match.group("reason"),
                malformed=bad,
            )
            continue
        match = _BLOCKING_OK_RE.search(text)
        if match:
            waivers[lineno] = Waiver(
                line=lineno,
                ids=frozenset({"REP001"}),
                reason=match.group("reason"),
                legacy=True,
            )
    return waivers
