"""Charging ledger for the LP-rounding proof (dependents, trios, fillers).

Sections 3.2–3.4 account for every slot the rounding opens integrally by
charging fractional LP mass:

* a *fully open* slot (``y = 1``) charges itself — factor 1;
* a *half open* slot (``y >= 1/2``) opened integrally charges itself — factor
  at most 2;
* a *barely open* slot (``y < 1/2``) that must be opened charges, in priority
  order,

  1. the earliest fully open slot without a **dependent** (pair mass
     ``>= 3/2`` charged for 2 opened slots),
  2. the earliest fully open slot whose dependent ``d`` satisfies
     ``y_d + y >= 1/2``, forming a **trio** (mass ``>= 3/2`` for 3 slots),
  3. the earliest half open slot without a **filler** whose mass plus ``y``
     is at least 1 (mass ``>= 1`` for 2 slots).

Lemma 6 proves one of these always succeeds.  The ledger mirrors that
machinery so the 2-approximation certificate can be *checked* at runtime: the
sum of charged masses, doubled, bounds the number of integrally open slots.

The ledger is diagnostics — the rounding algorithm's output is feasible
regardless — but the test-suite runs it in strict mode on thousands of
instances as an executable proof-check of Lemma 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ChargingError", "ChargeRecord", "ChargingLedger"]


class ChargingError(RuntimeError):
    """No admissible charge target exists — would contradict Lemma 6."""


@dataclass(frozen=True)
class ChargeRecord:
    """How one barely-open slot paid for being opened."""

    slot: int
    value: float
    kind: str  # "dependent" | "trio" | "filler"
    target: int  # the charged (fully or half open) slot


@dataclass
class _FullSlot:
    slot: int
    dependent: tuple[int, float] | None = None
    in_trio: bool = False


@dataclass
class _HalfSlot:
    slot: int
    y: float
    filler: tuple[int, float] | None = None


@dataclass
class ChargingLedger:
    """Tracks charge assignments during one run of the rounding algorithm."""

    fulls: list[_FullSlot] = field(default_factory=list)
    halves: list[_HalfSlot] = field(default_factory=list)
    records: list[ChargeRecord] = field(default_factory=list)
    proxied_mass: float = 0.0

    # ------------------------------------------------------------------
    def register_full(self, slot: int) -> None:
        """A slot fully open in the (merged) right-shifted solution opens."""
        self.fulls.append(_FullSlot(slot=slot))
        self.fulls.sort(key=lambda f: f.slot)

    def register_half(self, slot: int, y: float) -> None:
        """A half-open slot opens integrally, charging itself (factor <= 2)."""
        self.halves.append(_HalfSlot(slot=slot, y=y))
        self.halves.sort(key=lambda h: h.slot)

    def charge_barely(self, slot: int, y: float) -> ChargeRecord:
        """Charge an opened barely-open slot per the paper's priority order.

        Raises :class:`ChargingError` when no target is admissible (per
        Lemma 6 this should be impossible; the rounding algorithm surfaces it
        as a loud diagnostic rather than producing an unaccounted slot).
        """
        # Targets may sit to either side of the barely slot: at iteration i
        # every registered slot has already been processed (it lies at or
        # before the current deadline), which is the paper's actual
        # requirement — a barely slot left of its own block charges the
        # block's fully open slots to its right (Section 3.3, Case 2).
        # 1. earliest fully open slot with no dependent (and not in a trio)
        for f in self.fulls:
            if f.dependent is None and not f.in_trio:
                f.dependent = (slot, y)
                rec = ChargeRecord(slot, y, "dependent", f.slot)
                self.records.append(rec)
                return rec
        # 2. earliest fully open slot whose dependent can complete a trio
        for f in self.fulls:
            if f.dependent is not None and not f.in_trio:
                dep_slot, dep_y = f.dependent
                if dep_y + y >= 0.5 - 1e-9:
                    f.in_trio = True
                    rec = ChargeRecord(slot, y, "trio", f.slot)
                    self.records.append(rec)
                    return rec
        # 3. earliest half open slot without a filler, masses summing to >= 1
        for h in self.halves:
            if h.filler is None and h.y + y >= 1.0 - 1e-9:
                h.filler = (slot, y)
                rec = ChargeRecord(slot, y, "filler", h.slot)
                self.records.append(rec)
                return rec
        raise ChargingError(
            f"no charge target for barely open slot {slot} (y={y:.4f}); "
            "this would contradict Lemma 6"
        )

    # ------------------------------------------------------------------
    # Certificate
    # ------------------------------------------------------------------
    def opened_count(self) -> int:
        """Number of integrally opened slots the ledger accounts for."""
        opened = len(self.fulls) + len(self.halves)
        for f in self.fulls:
            if f.dependent is not None:
                opened += 1
            if f.in_trio:
                opened += 1
        for h in self.halves:
            if h.filler is not None:
                opened += 1
        return opened

    def charged_mass(self) -> float:
        """Fractional LP mass the opened slots charge."""
        mass = 0.0
        for f in self.fulls:
            mass += 1.0
            if f.dependent is not None:
                mass += f.dependent[1]
            if f.in_trio:
                # the trio's second barely slot
                rec = next(
                    r
                    for r in self.records
                    if r.kind == "trio" and r.target == f.slot
                )
                mass += rec.value
        for h in self.halves:
            mass += h.y
            if h.filler is not None:
                mass += h.filler[1]
        return mass

    def certificate_ratio(self) -> float:
        """``opened / charged`` — at most 2 when the charging is sound."""
        mass = self.charged_mass()
        if mass <= 0:
            return 0.0
        return self.opened_count() / mass

    def verify(self) -> None:
        """Assert the local charging invariants the proof relies on."""
        ratio = self.certificate_ratio()
        if ratio > 2.0 + 1e-6:
            raise ChargingError(
                f"charging certificate ratio {ratio:.4f} exceeds 2"
            )
        for f in self.fulls:
            if f.in_trio and f.dependent is None:
                raise ChargingError(
                    f"full slot {f.slot} marked trio without dependent"
                )
        for h in self.halves:
            if h.y < 0.5 - 1e-9:
                raise ChargingError(
                    f"half-open slot {h.slot} registered with y={h.y} < 1/2"
                )
