"""REP004 — metrics hygiene: naming, uniqueness and catalog parity.

The observability layer (PR 7) exposes every registered family on
``GET /metrics``; dashboards and the fabric window-sizing logic key on
those names, so a typo'd, duplicated or undocumented metric is a silent
contract break (the PR 8 digest-drift bug was exactly a name that
existed in code but not in the contract).  For every registration call
``OBS.counter/gauge/histogram(...)`` in the scanned tree:

* the metric name must be a **string literal** (a computed name cannot
  be audited statically or documented);
* the name must match ``repro_[a-z0-9_]+`` (Prometheus snake_case with
  the project prefix);
* the name must be **unique** across the tree — two registration sites
  sharing a name will silently merge series (get-or-create) or raise at
  import, depending on signatures;
* the name must appear in the README's *Metrics catalog* table, and —
  when the scan covers the metrics core (``repro/obs/metrics.py``), so
  we know the scan is the real tree — every catalog row must
  correspond to a registered name (parity both directions).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Tuple

from ..base import Finding, Rule, TreeContext, register

_KINDS = {"counter", "gauge", "histogram"}
_REGISTRY_NAMES = {"OBS"}
_NAME_RE = re.compile(r"^repro_[a-z0-9]+(_[a-z0-9]+)*$")

_CATALOG_MARKER = "Metrics catalog"
_CATALOG_ROW_RE = re.compile(r"^\|\s*`([A-Za-z0-9_]+)`")


def _registrations(tree: TreeContext) -> List[Tuple[str, ast.Call, object]]:
    """Every ``OBS.<kind>(...)`` call: (kind, call node, module)."""
    sites = []
    for module in tree.modules:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _KINDS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in _REGISTRY_NAMES
            ):
                sites.append((node.func.attr, node, module))
    return sites


def read_catalog(tree: TreeContext) -> Dict[str, int]:
    """Metric names in the README catalog table → line number.

    Rows may omit the shared ``repro_`` prefix (the catalog header says
    "all names prefixed ``repro_``"); names are normalized here.
    """
    readme = tree.root / "README.md"
    if not readme.is_file():
        return {}
    names: Dict[str, int] = {}
    in_catalog = False
    for lineno, line in enumerate(
        readme.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CATALOG_MARKER in line:
            in_catalog = True
            continue
        if in_catalog and line.startswith("#"):
            break  # next section heading ends the catalog
        if not in_catalog:
            continue
        match = _CATALOG_ROW_RE.match(line)
        if not match:
            continue
        name = match.group(1)
        if name in ("metric",):  # table header row
            continue
        if not name.startswith("repro_"):
            name = f"repro_{name}"
        names.setdefault(name, lineno)
    return names


@register
class MetricsHygieneRule(Rule):
    __doc__ = __doc__

    id = "REP004"
    title = "metric registration: bad name, duplicate, or catalog drift"

    def check_tree(self, tree: TreeContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        seen: Dict[str, Tuple[str, int]] = {}
        registered: Dict[str, Tuple[object, ast.Call]] = {}
        for kind, call, module in _registrations(tree):
            if not call.args or not (
                isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                findings.append(module.finding(
                    "REP004", call,
                    f"OBS.{kind}(...) name must be a string literal so it "
                    "can be audited and cataloged",
                ))
                continue
            name = call.args[0].value
            if not _NAME_RE.match(name):
                findings.append(module.finding(
                    "REP004", call,
                    f"metric name {name!r} must match repro_* snake_case "
                    "(lowercase, underscore-separated, repro_ prefix)",
                ))
            first = seen.get(name)
            if first is not None:
                findings.append(module.finding(
                    "REP004", call,
                    f"metric name {name!r} already registered at "
                    f"{first[0]}:{first[1]}; names must be unique "
                    "tree-wide",
                ))
            else:
                seen[name] = (module.rel, call.lineno)
                registered[name] = (module, call)

        catalog = read_catalog(tree)
        full_tree_scan = any(
            mod.rel.replace("\\", "/").endswith("repro/obs/metrics.py")
            for mod in tree.modules
        )
        if catalog or full_tree_scan:
            for name, (module, call) in sorted(registered.items()):
                if name not in catalog:
                    findings.append(module.finding(
                        "REP004", call,
                        f"metric {name!r} is not in the README metrics "
                        "catalog; document it (the catalog is the wire "
                        "contract)",
                    ))
        if full_tree_scan:
            for name, lineno in sorted(catalog.items()):
                if name not in registered:
                    findings.append(Finding(
                        path="README.md", line=lineno, rule="REP004",
                        message=(
                            f"catalog row {name!r} has no registration in "
                            "the scanned tree; drop the row or register "
                            "the metric"
                        ),
                    ))
        return iter(findings)
